//===- isa/Encoding.cpp - Silver instruction binary encoding --------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "isa/Encoding.h"

#include <cassert>

using namespace silver;
using namespace silver::isa;

static Word encodeOperand(Operand Op) {
  Word Field = Op.Value & 0x3f;
  if (Op.IsImm)
    Field |= 1u << 6;
  return Field;
}

static Operand decodeOperand(Word Field) {
  Operand Op;
  Op.IsImm = (Field >> 6) & 1;
  Op.Value = static_cast<uint8_t>(Field & 0x3f);
  return Op;
}

Word silver::isa::encode(const Instruction &I) {
  Word W = 0;
  W = insertBits(W, static_cast<Word>(I.Op), 31, 28);
  switch (I.Op) {
  case Opcode::Normal:
    W = insertBits(W, static_cast<Word>(I.F), 27, 24);
    W = insertBits(W, I.WReg, 23, 18);
    W = insertBits(W, encodeOperand(I.A), 17, 11);
    W = insertBits(W, encodeOperand(I.B), 10, 4);
    break;
  case Opcode::Shift:
    W = insertBits(W, static_cast<Word>(I.Sh), 25, 24);
    W = insertBits(W, I.WReg, 23, 18);
    W = insertBits(W, encodeOperand(I.A), 17, 11);
    W = insertBits(W, encodeOperand(I.B), 10, 4);
    break;
  case Opcode::LoadMEM:
  case Opcode::LoadMEMByte:
    W = insertBits(W, I.WReg, 23, 18);
    W = insertBits(W, encodeOperand(I.A), 17, 11);
    break;
  case Opcode::StoreMEM:
  case Opcode::StoreMEMByte:
    W = insertBits(W, encodeOperand(I.A), 17, 11);
    W = insertBits(W, encodeOperand(I.B), 10, 4);
    break;
  case Opcode::LoadConstant:
    assert(I.Imm <= 0x1fffff && "LoadConstant immediate exceeds 21 bits");
    W = insertBits(W, I.WReg, 27, 22);
    W = insertBits(W, I.Negate ? 1 : 0, 21, 21);
    W = insertBits(W, I.Imm, 20, 0);
    break;
  case Opcode::LoadUpperConstant:
    assert(I.Imm <= 0x7ff && "LoadUpperConstant immediate exceeds 11 bits");
    W = insertBits(W, I.WReg, 27, 22);
    W = insertBits(W, I.Imm, 10, 0);
    break;
  case Opcode::Jump:
    W = insertBits(W, static_cast<Word>(I.F), 27, 24);
    W = insertBits(W, I.WReg, 23, 18);
    W = insertBits(W, encodeOperand(I.A), 17, 11);
    break;
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNotZero: {
    assert(fitsSigned(I.Offset, 10) && "branch offset exceeds 10 bits");
    Word Off = static_cast<Word>(I.Offset) & 0x3ff;
    W = insertBits(W, static_cast<Word>(I.F), 27, 24);
    W = insertBits(W, Off >> 4, 23, 18);
    W = insertBits(W, encodeOperand(I.A), 17, 11);
    W = insertBits(W, encodeOperand(I.B), 10, 4);
    W = insertBits(W, Off & 0xf, 3, 0);
    break;
  }
  case Opcode::Interrupt:
    break;
  case Opcode::In:
    W = insertBits(W, I.WReg, 23, 18);
    break;
  case Opcode::Out:
    W = insertBits(W, encodeOperand(I.A), 17, 11);
    break;
  }
  return W;
}

Result<Instruction> silver::isa::decode(Word Encoded) {
  Word Opc = bits(Encoded, 31, 28);
  if (Opc >= NumOpcodes)
    return Error("illegal instruction: reserved opcode " +
                 std::to_string(Opc));

  Instruction I;
  I.Op = static_cast<Opcode>(Opc);
  switch (I.Op) {
  case Opcode::Normal:
    I.F = static_cast<Func>(bits(Encoded, 27, 24));
    I.WReg = static_cast<uint8_t>(bits(Encoded, 23, 18));
    I.A = decodeOperand(bits(Encoded, 17, 11));
    I.B = decodeOperand(bits(Encoded, 10, 4));
    break;
  case Opcode::Shift:
    I.Sh = static_cast<ShiftKind>(bits(Encoded, 25, 24));
    I.WReg = static_cast<uint8_t>(bits(Encoded, 23, 18));
    I.A = decodeOperand(bits(Encoded, 17, 11));
    I.B = decodeOperand(bits(Encoded, 10, 4));
    break;
  case Opcode::LoadMEM:
  case Opcode::LoadMEMByte:
    I.WReg = static_cast<uint8_t>(bits(Encoded, 23, 18));
    I.A = decodeOperand(bits(Encoded, 17, 11));
    break;
  case Opcode::StoreMEM:
  case Opcode::StoreMEMByte:
    I.A = decodeOperand(bits(Encoded, 17, 11));
    I.B = decodeOperand(bits(Encoded, 10, 4));
    break;
  case Opcode::LoadConstant:
    I.WReg = static_cast<uint8_t>(bits(Encoded, 27, 22));
    I.Negate = bits(Encoded, 21, 21) != 0;
    I.Imm = bits(Encoded, 20, 0);
    break;
  case Opcode::LoadUpperConstant:
    I.WReg = static_cast<uint8_t>(bits(Encoded, 27, 22));
    I.Imm = bits(Encoded, 10, 0);
    break;
  case Opcode::Jump:
    I.F = static_cast<Func>(bits(Encoded, 27, 24));
    I.WReg = static_cast<uint8_t>(bits(Encoded, 23, 18));
    I.A = decodeOperand(bits(Encoded, 17, 11));
    break;
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNotZero: {
    I.F = static_cast<Func>(bits(Encoded, 27, 24));
    I.A = decodeOperand(bits(Encoded, 17, 11));
    I.B = decodeOperand(bits(Encoded, 10, 4));
    Word Off = (bits(Encoded, 23, 18) << 4) | bits(Encoded, 3, 0);
    I.Offset = static_cast<int32_t>(signExtend(Off, 10));
    break;
  }
  case Opcode::Interrupt:
    break;
  case Opcode::In:
    I.WReg = static_cast<uint8_t>(bits(Encoded, 23, 18));
    break;
  case Opcode::Out:
    I.A = decodeOperand(bits(Encoded, 17, 11));
    break;
  }
  return I;
}

bool Instruction::operator==(const Instruction &I) const {
  if (Op != I.Op)
    return false;
  switch (Op) {
  case Opcode::Normal:
    return F == I.F && WReg == I.WReg && A == I.A && B == I.B;
  case Opcode::Shift:
    return Sh == I.Sh && WReg == I.WReg && A == I.A && B == I.B;
  case Opcode::LoadMEM:
  case Opcode::LoadMEMByte:
  case Opcode::In:
    return WReg == I.WReg && (Op == Opcode::In || A == I.A);
  case Opcode::StoreMEM:
  case Opcode::StoreMEMByte:
    return A == I.A && B == I.B;
  case Opcode::LoadConstant:
    return WReg == I.WReg && Negate == I.Negate && Imm == I.Imm;
  case Opcode::LoadUpperConstant:
    return WReg == I.WReg && Imm == I.Imm;
  case Opcode::Jump:
    return F == I.F && WReg == I.WReg && A == I.A;
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNotZero:
    return F == I.F && A == I.A && B == I.B && Offset == I.Offset;
  case Opcode::Interrupt:
    return true;
  case Opcode::Out:
    return A == I.A;
  }
  return false;
}
