//===- isa/jit/CodeArena.cpp - W^X executable code arena ------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "isa/jit/CodeArena.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define SILVER_JIT_HAVE_MMAP 1
#else
#define SILVER_JIT_HAVE_MMAP 0
#endif

using namespace silver::isa::jit;

CodeArena::CodeArena(size_t Bytes) {
#if SILVER_JIT_HAVE_MMAP
  if (Bytes == 0)
    return;
  long Page = sysconf(_SC_PAGESIZE);
  size_t PageSize = Page > 0 ? static_cast<size_t>(Page) : 4096;
  size_t Rounded = (Bytes + PageSize - 1) & ~(PageSize - 1);
  void *P = mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return;
  Base = static_cast<uint8_t *>(P);
  Cap = Rounded;
#else
  (void)Bytes;
#endif
}

CodeArena::~CodeArena() {
#if SILVER_JIT_HAVE_MMAP
  if (Base)
    munmap(Base, Cap);
#endif
}

void CodeArena::beginWrite() {
#if SILVER_JIT_HAVE_MMAP
  if (Base)
    mprotect(Base, Cap, PROT_READ | PROT_WRITE);
#endif
}

void CodeArena::endWrite() {
#if SILVER_JIT_HAVE_MMAP
  if (Base)
    mprotect(Base, Cap, PROT_READ | PROT_EXEC);
#endif
}
