//===- isa/jit/JitCompiler.cpp - Silver basic-block compiler --------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The copy-and-patch block compiler: one emission template per Silver
/// opcode, each mirroring isa/Interp.cpp's execImpl case for that opcode
/// bit for bit.  A block is a straight-line run of instructions ending
/// at the first terminator (Jump / JumpIfZero / JumpIfNotZero) or just
/// before anything the JIT never translates — illegal words, the halt
/// self-jump, I/O instructions (In/Out/Interrupt mutate the IO-event
/// trace and call into the environment), the active runUntilPc stop PC,
/// or the edge of memory.
///
/// The flag templates lean on x86 having the same ALU flag semantics as
/// Silver: for 32-bit add, CF equals Silver's Add/AddCarry carry-out
/// and OF equals the paper's signed-overflow formula
/// ((~(A^B)) & (A^R)) >> 31 (including adc's carry-in); for sub,
/// Silver's "no borrow" carry is !CF and OF matches
/// ((A^B) & (A^R)) >> 31.  Shift counts are masked to 5 bits by both
/// ISAs.  The SILVER_FAULT_INJECTION carry inversion is a frame byte
/// XORed into Add's carry at run time, so the fuzzing self-check's
/// mutation reaches translated code.
///
//===----------------------------------------------------------------------===//

#include "isa/Encoding.h"
#include "isa/jit/JitInternal.h"

#include <utility>

using namespace silver;
using namespace silver::isa;
using namespace silver::isa::jit;

const char *silver::isa::jit::refuseReasonId(RefuseReason R) {
  switch (R) {
  case RefuseReason::None:
    return "none";
  case RefuseReason::BlockTooLong:
    return "block-too-long";
  case RefuseReason::EmptyBlock:
    return "empty-block";
  case RefuseReason::StopPcGuard:
    return "stop-pc-guard";
  case RefuseReason::HostUnsupported:
    return "host-unsupported";
  }
  return "none";
}

namespace {

bool isTerminator(const Instruction &I) {
  return I.Op == Opcode::Jump || I.Op == Opcode::JumpIfZero ||
         I.Op == Opcode::JumpIfNotZero;
}

/// Instructions the JIT never includes in a block: they reach outside
/// the register-file/memory/flags state the templates model.
bool interpreterOnly(const Instruction &I) {
  return I.Op == Opcode::Interrupt || I.Op == Opcode::In ||
         I.Op == Opcode::Out;
}

struct Scan {
  std::vector<std::pair<Word, Instruction>> Insns;
  bool EndsWithTerminator = false;
  RefuseReason Refused = RefuseReason::None;

  bool ok() const { return Refused == RefuseReason::None && !Insns.empty(); }
};

/// Walks the block entered at \p Entry.  Shared by probeBlock and
/// compileBlock so the static jit-bailout diagnostic and the runtime
/// compiler can never disagree about a block's fate.
Scan scanBlock(const MachineState &State, Word Entry, bool HasGuard,
               Word GuardPc) {
  Scan S;
  Word Pc = Entry;
  while (S.Insns.size() < MaxBlockInstrs) {
    if (HasGuard && Pc == GuardPc) {
      if (Pc == Entry)
        S.Refused = RefuseReason::StopPcGuard;
      return S; // never compile at or across the stop PC
    }
    if (!State.inRange(Pc, 4) || !isAligned(Pc, 4))
      break;
    Result<Instruction> D = decode(State.readWord(Pc));
    if (!D)
      break;
    if (D->isSelfJump() || interpreterOnly(*D))
      break;
    S.Insns.emplace_back(Pc, *D);
    if (isTerminator(*D)) {
      S.EndsWithTerminator = true;
      return S;
    }
    Pc += 4;
  }
  if (S.Insns.empty())
    S.Refused = RefuseReason::EmptyBlock;
  else if (!S.EndsWithTerminator && S.Insns.size() >= MaxBlockInstrs)
    // A straight-line run with no terminator in sight is refused, not
    // split: the entry budget check retires a whole block up front, and
    // splitting would trade that exactness for open-ended block chains.
    S.Refused = RefuseReason::BlockTooLong;
  return S;
}

} // namespace

BlockProbe silver::isa::jit::probeBlock(const MachineState &State,
                                        Word Entry) {
  Scan S = scanBlock(State, Entry, /*HasGuard=*/false, 0);
  BlockProbe P;
  P.Compilable = S.ok();
  P.Refused = S.Refused;
  P.Instrs = static_cast<unsigned>(S.Insns.size());
  return P;
}

void silver::isa::jit::emitRuntimeThunks(Emitter &Em, size_t &EnterOff,
                                         size_t &ExitOff) {
  EnterOff = Em.size();
  Em.pushR(RBX);
  Em.pushR(RBP);
  Em.pushR(R12);
  Em.pushR(R13);
  Em.pushR(R14);
  Em.pushR(R15);
  Em.movRR64(R15, RDI);
  Em.loadRM64(R13, R15, FrameRegs);
  Em.loadRM64(R14, R15, FrameMem);
  Em.loadRM64(R12, R15, FrameGuard);
  Em.loadRM64(RBX, R15, FrameSteps);
  Em.jmpR(RSI);

  ExitOff = Em.size();
  Em.storeMR(R15, FramePc, RAX);
  Em.storeMR64(R15, FrameSteps, RBX);
  Em.popR(R15);
  Em.popR(R14);
  Em.popR(R13);
  Em.popR(R12);
  Em.popR(RBP);
  Em.popR(RBX);
  Em.ret();
}

bool silver::isa::jit::compileBlock(const MachineState &State, Word Entry,
                                    bool HasGuardPc, Word GuardPc,
                                    CompiledCode &Out, RefuseReason &Why) {
  if (State.Memory.size() > 0xffffffffull) {
    // The range-check templates fold memory size into an imm32; Silver
    // itself cannot address more anyway.
    Why = RefuseReason::HostUnsupported;
    return false;
  }
  Scan S = scanBlock(State, Entry, HasGuardPc, GuardPc);
  if (!S.ok()) {
    Why = S.Refused;
    return false;
  }

  const Word MemSize = static_cast<Word>(State.Memory.size());
  const unsigned Len = static_cast<unsigned>(S.Insns.size());
  Emitter Em;

  // Block entry: charge the whole block against the budget, or bail to
  // the budget stub.  The compare's imm32 form is deliberate — it keeps
  // the entry 7 bytes wide, so the 5-byte invalidation jump always fits.
  Em.cmpRI64(RBX, Len);
  size_t BudgetJcc = Em.jcc32(CondB);
  Em.subRI64(RBX, Len);

  // Side exits that deoptimize before instruction K commits anything.
  std::vector<std::vector<size_t>> DeoptJccs(Len);
  // Chain slots awaiting their in-block bounce stub.
  struct PendingSlot {
    size_t SlotOff;  ///< offset of the E9 byte
    size_t JmpField; ///< offset of its rel32
    Word Target;
  };
  std::vector<PendingSlot> Slots;

  auto loadOp = [&](const Operand &Op, HostReg Dst) {
    if (Op.IsImm)
      Em.movRI(Dst, Op.immValue());
    else
      Em.loadRM(Dst, R13, static_cast<int32_t>(4u * Op.Value));
  };
  auto storeReg = [&](unsigned W, HostReg Src) {
    Em.storeMR(R13, static_cast<int32_t>(4u * W), Src);
  };
  auto storeFlagsDlCl = [&]() {
    Em.storeMR8(R15, FrameCarry, RDX);
    Em.storeMR8(R15, FrameOvf, RCX);
  };

  // The ALU with A in eax and B in ecx: leaves the result in eax and
  // commits Silver flag updates to the frame, exactly as evalAlu.
  auto emitAluOp = [&](Func F) {
    switch (F) {
    case Func::Add:
      Em.addRR(RAX, RCX);
      Em.setcc(CondB, RDX); // carry-out
      Em.setcc(CondO, RCX); // signed overflow
      Em.xorR8M(RDX, R15, FrameInvert); // fault-injection inversion
      storeFlagsDlCl();
      break;
    case Func::AddCarry:
      Em.loadZxM8(RDX, R15, FrameCarry);
      Em.btRI(RDX, 0); // CF := current Silver carry
      Em.adcRR(RAX, RCX);
      Em.setcc(CondB, RDX); // AddCarry's carry is not inverted
      Em.setcc(CondO, RCX);
      storeFlagsDlCl();
      break;
    case Func::Sub:
      Em.subRR(RAX, RCX);
      Em.setcc(CondAE, RDX); // Silver carry = "no borrow" = !CF
      Em.setcc(CondO, RCX);
      storeFlagsDlCl();
      break;
    case Func::Carry:
      Em.loadZxM8(RAX, R15, FrameCarry);
      break;
    case Func::Overflow:
      Em.loadZxM8(RAX, R15, FrameOvf);
      break;
    case Func::Inc:
      Em.addRI(RAX, 1); // host flags not stored: Silver flags unchanged
      break;
    case Func::Dec:
      Em.subRI(RAX, 1);
      break;
    case Func::Mul:
      Em.imulRR(RAX, RCX); // low 32 bits: signed == unsigned
      break;
    case Func::MulHigh:
      Em.mulR(RCX); // unsigned edx:eax = eax * ecx
      Em.movRR(RAX, RDX);
      break;
    case Func::And:
      Em.andRR(RAX, RCX);
      break;
    case Func::Or:
      Em.orRR(RAX, RCX);
      break;
    case Func::Xor:
      Em.xorRR(RAX, RCX);
      break;
    case Func::Equal:
      Em.cmpRR(RAX, RCX);
      Em.setcc(CondE, RAX);
      Em.movzxR8(RAX, RAX);
      break;
    case Func::Less:
      Em.cmpRR(RAX, RCX);
      Em.setcc(CondL, RAX);
      Em.movzxR8(RAX, RAX);
      break;
    case Func::Lower:
      Em.cmpRR(RAX, RCX);
      Em.setcc(CondB, RAX);
      Em.movzxR8(RAX, RAX);
      break;
    case Func::Snd:
      Em.movRR(RAX, RCX);
      break;
    }
  };
  // Loads only the operands \p F consumes (reads have no side effects,
  // but Carry/Overflow must produce their result with eax untouched by
  // a pointless operand load).
  auto loadAluOperands = [&](Func F, const Operand &A, const Operand &B) {
    switch (F) {
    case Func::Carry:
    case Func::Overflow:
      return;
    case Func::Inc:
    case Func::Dec:
      loadOp(A, RAX);
      return;
    case Func::Snd:
      loadOp(B, RCX);
      return;
    default:
      loadOp(A, RAX);
      loadOp(B, RCX);
      return;
    }
  };
  // Exit to the dispatcher with \p Kind; eax already holds the next PC.
  auto emitExit = [&](uint32_t Kind) {
    Em.storeMI(R15, FrameExit, Kind);
    Out.ExitFixups.push_back(Em.jmp32());
  };
  auto canChain = [&](Word T) {
    return isAligned(T, 4) && State.inRange(T, 4) &&
           !(HasGuardPc && T == GuardPc);
  };
  // A terminator edge: a patchable chain slot when the constant target
  // can ever be a block entry, a plain ExitChain otherwise.
  auto emitEdge = [&](Word T) {
    if (canChain(T)) {
      size_t SlotOff = Em.size();
      size_t Field = Em.jmp32();
      Slots.push_back({SlotOff, Field, T});
    } else {
      Em.movRI(RAX, T);
      emitExit(ExitChain);
    }
  };

  for (unsigned K = 0; K != Len; ++K) {
    const Word P = S.Insns[K].first;
    const Instruction &I = S.Insns[K].second;
    auto deoptIf = [&](Cond C) { DeoptJccs[K].push_back(Em.jcc32(C)); };
    // Guard check for a store to the page holding the address in ecx:
    // code-bearing pages deopt so the interpreted store invalidates
    // decoded slots and compiled blocks (the DecodeCache contract).
    auto guardCheck = [&]() {
      Em.movRR(RDX, RCX);
      Em.shrRI(RDX, GuardPageShift);
      Em.cmpX8I(R12, RDX, 0);
      deoptIf(CondNE);
    };

    switch (I.Op) {
    case Opcode::Normal:
      loadAluOperands(I.F, I.A, I.B);
      emitAluOp(I.F);
      storeReg(I.WReg, RAX);
      break;
    case Opcode::Shift: {
      loadOp(I.A, RAX);
      loadOp(I.B, RCX);
      uint8_t Ext = 0;
      switch (I.Sh) {
      case ShiftKind::LogicalLeft:
        Ext = 4; // shl
        break;
      case ShiftKind::LogicalRight:
        Ext = 5; // shr
        break;
      case ShiftKind::ArithRight:
        Ext = 7; // sar
        break;
      case ShiftKind::RotateRight:
        Ext = 1; // ror
        break;
      }
      Em.shiftRCl(Ext, RAX); // cl masked to 5 bits, matching B & 31
      storeReg(I.WReg, RAX);
      break;
    }
    case Opcode::LoadMEM:
      loadOp(I.A, RCX);
      Em.testR8I(RCX, 3);
      deoptIf(CondNE); // MemMisaligned via the interpreter
      Em.cmpRI(RCX, MemSize - 4);
      deoptIf(CondA); // MemOutOfRange via the interpreter
      Em.loadRX(RAX, R14, RCX);
      storeReg(I.WReg, RAX);
      break;
    case Opcode::LoadMEMByte:
      loadOp(I.A, RCX);
      Em.cmpRI(RCX, MemSize - 1);
      deoptIf(CondA);
      Em.loadZxX8(RAX, R14, RCX);
      storeReg(I.WReg, RAX);
      break;
    case Opcode::StoreMEM:
      loadOp(I.B, RCX);
      Em.testR8I(RCX, 3);
      deoptIf(CondNE);
      Em.cmpRI(RCX, MemSize - 4);
      deoptIf(CondA);
      guardCheck(); // aligned word store: one page
      loadOp(I.A, RAX);
      Em.storeXR(R14, RCX, RAX);
      break;
    case Opcode::StoreMEMByte:
      loadOp(I.B, RCX);
      Em.cmpRI(RCX, MemSize - 1);
      deoptIf(CondA);
      guardCheck();
      loadOp(I.A, RAX);
      Em.storeXR8(R14, RCX, RAX);
      break;
    case Opcode::LoadConstant:
      Em.storeMI(R13, static_cast<int32_t>(4u * I.WReg),
                 I.Negate ? (0u - I.Imm) : I.Imm);
      break;
    case Opcode::LoadUpperConstant:
      Em.loadRM(RAX, R13, static_cast<int32_t>(4u * I.WReg));
      Em.andRI(RAX, 0x1fffff);
      Em.orRI(RAX, I.Imm << 21);
      storeReg(I.WReg, RAX);
      break;
    case Opcode::Jump: {
      // Target = alu(F, PC, a) with its flag updates, then the link
      // write — in that order, so `jump add r5, r5` links correctly.
      if (I.F == Func::Add && I.A.IsImm) {
        // Direct jump: target and flags are compile-time constants,
        // except Add's carry inversion which stays a run-time XOR.
        const Word ImmW = I.A.immValue();
        const Word T = P + ImmW;
        const uint8_t Carry0 =
            (uint64_t(P) + uint64_t(ImmW) > 0xffffffffull) ? 1 : 0;
        const uint8_t Ovf0 = (((~(P ^ ImmW)) & (P ^ T)) >> 31) & 1;
        Em.movR8I(RDX, Carry0);
        Em.xorR8M(RDX, R15, FrameInvert);
        Em.storeMR8(R15, FrameCarry, RDX);
        Em.storeMI8(R15, FrameOvf, Ovf0);
        Em.storeMI(R13, static_cast<int32_t>(4u * I.WReg), P + 4);
        emitEdge(T);
      } else {
        Em.movRI(RAX, P); // the ALU's A operand is the current PC
        loadOp(I.A, RCX);
        emitAluOp(I.F);
        Em.storeMI(R13, static_cast<int32_t>(4u * I.WReg), P + 4);
        emitExit(ExitChain); // computed target: dispatcher resolves
      }
      break;
    }
    case Opcode::JumpIfZero:
    case Opcode::JumpIfNotZero: {
      loadAluOperands(I.F, I.A, I.B);
      emitAluOp(I.F); // flag updates happen whether or not we branch
      Em.testRR(RAX, RAX);
      size_t TakenJcc =
          Em.jcc32(I.Op == Opcode::JumpIfZero ? CondE : CondNE);
      emitEdge(P + 4); // fall-through edge
      Em.patchRel32(TakenJcc, Em.size());
      emitEdge(P + static_cast<Word>(I.Offset) * 4); // taken edge
      break;
    }
    case Opcode::Interrupt:
    case Opcode::In:
    case Opcode::Out:
      break; // unreachable: the scan stops before these
    }
  }

  if (!S.EndsWithTerminator) {
    // The block ended just before something the JIT never translates;
    // hand the dispatcher the next PC.
    Em.movRI(RAX, S.Insns.back().first + 4);
    emitExit(ExitChain);
  }

  // Deopt stubs: refund the uncommitted tail of the entry charge and
  // report the exact PC to resume interpretation at.
  for (unsigned K = 0; K != Len; ++K) {
    if (DeoptJccs[K].empty())
      continue;
    size_t StubAt = Em.size();
    for (size_t F : DeoptJccs[K])
      Em.patchRel32(F, StubAt);
    Em.movRI(RAX, S.Insns[K].first);
    Em.addRI64(RBX, Len - K);
    Em.storeMI(R15, FrameExit, ExitDeopt);
    Out.ExitFixups.push_back(Em.jmp32());
  }

  // Chain-slot bounce stubs: until the backend patches a slot to its
  // target block, the edge exits to the dispatcher.
  for (const PendingSlot &PS : Slots) {
    Em.patchRel32(PS.JmpField, Em.size());
    Em.movRI(RAX, PS.Target);
    Em.storeMI(R15, FrameExit, ExitChain);
    Out.ExitFixups.push_back(Em.jmp32());
    Out.Chains.push_back({PS.SlotOff, PS.Target});
  }

  // Budget stub: a chained entry found too little budget left; nothing
  // was charged (the sub is skipped), so just report where we stand.
  Em.patchRel32(BudgetJcc, Em.size());
  Em.movRI(RAX, Entry);
  Em.storeMI(R15, FrameExit, ExitBudget);
  Out.ExitFixups.push_back(Em.jmp32());

  // Invalidation stub: the patched-over entry of a dropped block lands
  // here, bouncing stale incoming chains back to the dispatcher.
  Out.InvalidStubOff = Em.size();
  Em.movRI(RAX, Entry);
  Em.storeMI(R15, FrameExit, ExitChain);
  Out.ExitFixups.push_back(Em.jmp32());

  Out.Bytes = std::move(Em.Code);
  Out.Instrs = Len;
  Out.FirstByte = Entry;
  Out.LastByte = S.Insns.back().first + 3;
  Why = RefuseReason::None;
  return true;
}
