//===- isa/jit/Emitter.h - Minimal x86-64 instruction emitter --*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny x86-64 emitter covering exactly the instruction forms the
/// block templates need (isa/jit/JitCompiler.cpp).  Bytes accumulate in
/// a plain vector; the compiler copies the finished block into the W^X
/// code arena and resolves the recorded patch sites.
///
/// Internal to the JIT; not part of the isa public API.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_JIT_EMITTER_H
#define SILVER_ISA_JIT_EMITTER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace silver {
namespace isa {
namespace jit {

/// Host register numbers (the hardware encoding).
enum HostReg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// x86 condition codes (the low nibble of the 0F 8x / 0F 9x opcodes).
enum Cond : uint8_t {
  CondO = 0x0,  ///< overflow
  CondB = 0x2,  ///< below (CF=1)
  CondAE = 0x3, ///< above-or-equal (CF=0)
  CondE = 0x4,  ///< equal / zero
  CondNE = 0x5, ///< not equal / not zero
  CondA = 0x7,  ///< above (unsigned >)
  CondL = 0xc,  ///< less (signed)
};

class Emitter {
public:
  std::vector<uint8_t> Code;

  size_t size() const { return Code.size(); }

  void byte(uint8_t B) { Code.push_back(B); }
  void u32(uint32_t V) {
    byte(static_cast<uint8_t>(V));
    byte(static_cast<uint8_t>(V >> 8));
    byte(static_cast<uint8_t>(V >> 16));
    byte(static_cast<uint8_t>(V >> 24));
  }

  // --- register-register ALU (32-bit): op r/m=dst, r=src -------------
  // Opcodes are the /r "r/m, r" forms: 01 add, 11 adc, 29 sub, 21 and,
  // 09 or, 31 xor, 39 cmp, 85 test, 89 mov.
  void opRR(uint8_t Opcode, HostReg Dst, HostReg Src) {
    rex(false, Src, Dst);
    byte(Opcode);
    modRM(3, Src & 7, Dst & 7);
  }
  void addRR(HostReg Dst, HostReg Src) { opRR(0x01, Dst, Src); }
  void adcRR(HostReg Dst, HostReg Src) { opRR(0x11, Dst, Src); }
  void subRR(HostReg Dst, HostReg Src) { opRR(0x29, Dst, Src); }
  void andRR(HostReg Dst, HostReg Src) { opRR(0x21, Dst, Src); }
  void orRR(HostReg Dst, HostReg Src) { opRR(0x09, Dst, Src); }
  void xorRR(HostReg Dst, HostReg Src) { opRR(0x31, Dst, Src); }
  void cmpRR(HostReg Dst, HostReg Src) { opRR(0x39, Dst, Src); }
  void testRR(HostReg Dst, HostReg Src) { opRR(0x85, Dst, Src); }
  void movRR(HostReg Dst, HostReg Src) { opRR(0x89, Dst, Src); }

  /// imul dst32, src32 (0F AF /r; dst is the *reg* field here).
  void imulRR(HostReg Dst, HostReg Src) {
    rex(false, Dst, Src);
    byte(0x0f);
    byte(0xaf);
    modRM(3, Dst & 7, Src & 7);
  }

  /// mul r/m32: edx:eax = eax * src (F7 /4).
  void mulR(HostReg Src) {
    rex(false, RAX, Src); // reg field is the /4 extension, no REX.R
    byte(0xf7);
    modRM(3, 4, Src & 7);
  }

  /// mov r64, r64 (REX.W 89 /r).
  void movRR64(HostReg Dst, HostReg Src) {
    rexW(Src, Dst);
    byte(0x89);
    modRM(3, Src & 7, Dst & 7);
  }

  /// movzx r32, r8 (0F B6 /r register form; Src must be al/cl/dl/bl).
  void movzxR8(HostReg Dst, HostReg Src) {
    rex(false, Dst, Src);
    byte(0x0f);
    byte(0xb6);
    modRM(3, Dst & 7, Src & 7);
  }

  /// mov r8, imm8 (B0+rd ib; Dst must be al/cl/dl/bl).
  void movR8I(HostReg Dst, uint8_t Imm) {
    byte(static_cast<uint8_t>(0xb0 + (Dst & 7)));
    byte(Imm);
  }

  /// mov r32, imm32 (B8+rd id).
  void movRI(HostReg Dst, uint32_t Imm) {
    if (Dst >= R8)
      byte(0x41);
    byte(static_cast<uint8_t>(0xb8 + (Dst & 7)));
    u32(Imm);
  }

  /// Group-1 ALU with imm32 against r32 (81 /ext id): ext 0 add, 4 and,
  /// 1 or, 5 sub, 6 xor, 7 cmp.
  void aluRI(uint8_t Ext, HostReg Dst, uint32_t Imm) {
    rex(false, RAX, Dst);
    byte(0x81);
    modRM(3, Ext, Dst & 7);
    u32(Imm);
  }
  void addRI(HostReg Dst, uint32_t Imm) { aluRI(0, Dst, Imm); }
  void andRI(HostReg Dst, uint32_t Imm) { aluRI(4, Dst, Imm); }
  void orRI(HostReg Dst, uint32_t Imm) { aluRI(1, Dst, Imm); }
  void subRI(HostReg Dst, uint32_t Imm) { aluRI(5, Dst, Imm); }
  void cmpRI(HostReg Dst, uint32_t Imm) { aluRI(7, Dst, Imm); }

  // --- 64-bit budget arithmetic on a register (REX.W 81 /ext id; the
  // imm32 is sign-extended, so callers pass values < 2^31) ------------
  void aluRI64(uint8_t Ext, HostReg Dst, uint32_t Imm) {
    byte(static_cast<uint8_t>(0x48 | (Dst >= R8 ? 1 : 0)));
    byte(0x81);
    modRM(3, Ext, Dst & 7);
    u32(Imm);
  }
  void addRI64(HostReg Dst, uint32_t Imm) { aluRI64(0, Dst, Imm); }
  void subRI64(HostReg Dst, uint32_t Imm) { aluRI64(5, Dst, Imm); }
  void cmpRI64(HostReg Dst, uint32_t Imm) { aluRI64(7, Dst, Imm); }

  // --- [base + disp] forms (base is any host register but RSP) -------

  /// mov r32, [base+disp] (8B /r).
  void loadRM(HostReg Dst, HostReg Base, int32_t Disp) {
    rex(false, Dst, Base);
    byte(0x8b);
    memOperand(Dst, Base, Disp);
  }
  /// mov [base+disp], r32 (89 /r).
  void storeMR(HostReg Base, int32_t Disp, HostReg Src) {
    rex(false, Src, Base);
    byte(0x89);
    memOperand(Src, Base, Disp);
  }
  /// mov dword [base+disp], imm32 (C7 /0 id).
  void storeMI(HostReg Base, int32_t Disp, uint32_t Imm) {
    rex(false, RAX, Base);
    byte(0xc7);
    memOperand(RAX, Base, Disp);
    u32(Imm);
  }
  /// mov byte [base+disp], imm8 (C6 /0 ib).
  void storeMI8(HostReg Base, int32_t Disp, uint8_t Imm) {
    rex(false, RAX, Base);
    byte(0xc6);
    memOperand(RAX, Base, Disp);
    byte(Imm);
  }
  /// mov byte [base+disp], r8 (88 /r; Src must be al/cl/dl/bl).
  void storeMR8(HostReg Base, int32_t Disp, HostReg Src) {
    rex(false, Src, Base);
    byte(0x88);
    memOperand(Src, Base, Disp);
  }
  /// movzx r32, byte [base+disp] (0F B6 /r).
  void loadZxM8(HostReg Dst, HostReg Base, int32_t Disp) {
    rex(false, Dst, Base);
    byte(0x0f);
    byte(0xb6);
    memOperand(Dst, Base, Disp);
  }
  /// xor r8, byte [base+disp] (32 /r; Dst must be al/cl/dl/bl).
  void xorR8M(HostReg Dst, HostReg Base, int32_t Disp) {
    rex(false, Dst, Base);
    byte(0x32);
    memOperand(Dst, Base, Disp);
  }
  /// mov r64, [base+disp] (REX.W 8B /r).
  void loadRM64(HostReg Dst, HostReg Base, int32_t Disp) {
    rexW(Dst, Base);
    byte(0x8b);
    memOperand(Dst, Base, Disp);
  }
  /// mov [base+disp], r64 (REX.W 89 /r).
  void storeMR64(HostReg Base, int32_t Disp, HostReg Src) {
    rexW(Src, Base);
    byte(0x89);
    memOperand(Src, Base, Disp);
  }

  // --- [base + index] forms (scale 1; for Silver memory access) ------

  /// mov r32, [base+index] (8B /r with SIB).
  void loadRX(HostReg Dst, HostReg Base, HostReg Index) {
    rexX(false, Dst, Index, Base);
    byte(0x8b);
    sibOperand(Dst, Base, Index);
  }
  /// mov [base+index], r32 (89 /r with SIB).
  void storeXR(HostReg Base, HostReg Index, HostReg Src) {
    rexX(false, Src, Index, Base);
    byte(0x89);
    sibOperand(Src, Base, Index);
  }
  /// movzx r32, byte [base+index].
  void loadZxX8(HostReg Dst, HostReg Base, HostReg Index) {
    rexX(false, Dst, Index, Base);
    byte(0x0f);
    byte(0xb6);
    sibOperand(Dst, Base, Index);
  }
  /// mov byte [base+index], r8 (88 /r; Src must be al/cl/dl/bl).
  void storeXR8(HostReg Base, HostReg Index, HostReg Src) {
    rexX(false, Src, Index, Base);
    byte(0x88);
    sibOperand(Src, Base, Index);
  }
  /// cmp byte [base+index], imm8 (80 /7 ib).
  void cmpX8I(HostReg Base, HostReg Index, uint8_t Imm) {
    rexX(false, RAX, Index, Base);
    byte(0x80);
    sibOperand(static_cast<HostReg>(7), Base, Index);
    byte(Imm);
  }

  // --- flags, shifts, tests ------------------------------------------

  /// setcc r8 (0F 9x /0; Dst must be al/cl/dl/bl).
  void setcc(Cond C, HostReg Dst) {
    byte(0x0f);
    byte(static_cast<uint8_t>(0x90 | C));
    modRM(3, 0, Dst & 7);
  }
  /// test r8, imm8 (F6 /0 ib; Dst must be al/cl/dl/bl).
  void testR8I(HostReg Dst, uint8_t Imm) {
    byte(0xf6);
    modRM(3, 0, Dst & 7);
    byte(Imm);
  }
  /// bt r32, imm8 (0F BA /4 ib) — loads bit \p Bit of Dst into CF.
  void btRI(HostReg Dst, uint8_t Bit) {
    rex(false, RAX, Dst);
    byte(0x0f);
    byte(0xba);
    modRM(3, 4, Dst & 7);
    byte(Bit);
  }
  /// Shift group D3 /ext by cl: ext 4 shl, 5 shr, 7 sar, 1 ror.
  void shiftRCl(uint8_t Ext, HostReg Dst) {
    rex(false, RAX, Dst);
    byte(0xd3);
    modRM(3, Ext, Dst & 7);
  }

  // --- control flow ---------------------------------------------------

  /// jcc rel32 (0F 8x cd); returns the offset of the rel32 field.
  size_t jcc32(Cond C) {
    byte(0x0f);
    byte(static_cast<uint8_t>(0x80 | C));
    size_t At = Code.size();
    u32(0);
    return At;
  }
  /// jmp rel32 (E9 cd); returns the offset of the rel32 field.
  size_t jmp32() {
    byte(0xe9);
    size_t At = Code.size();
    u32(0);
    return At;
  }
  /// Resolves a rel32 recorded by jcc32/jmp32 to jump to \p Target
  /// (an offset within this buffer).
  void patchRel32(size_t FieldAt, size_t Target) {
    int32_t Rel =
        static_cast<int32_t>(Target) - static_cast<int32_t>(FieldAt + 4);
    Code[FieldAt] = static_cast<uint8_t>(Rel);
    Code[FieldAt + 1] = static_cast<uint8_t>(Rel >> 8);
    Code[FieldAt + 2] = static_cast<uint8_t>(Rel >> 16);
    Code[FieldAt + 3] = static_cast<uint8_t>(Rel >> 24);
  }

  void pushR(HostReg R) {
    if (R >= R8)
      byte(0x41);
    byte(static_cast<uint8_t>(0x50 + (R & 7)));
  }
  void popR(HostReg R) {
    if (R >= R8)
      byte(0x41);
    byte(static_cast<uint8_t>(0x58 + (R & 7)));
  }
  void ret() { byte(0xc3); }
  /// jmp r64 (FF /4).
  void jmpR(HostReg R) {
    if (R >= R8)
      byte(0x41);
    byte(0xff);
    modRM(3, 4, R & 7);
  }
  /// shr r32, imm8 (C1 /5 ib).
  void shrRI(HostReg Dst, uint8_t Imm) {
    rex(false, RAX, Dst);
    byte(0xc1);
    modRM(3, 5, Dst & 7);
    byte(Imm);
  }

private:
  void modRM(unsigned Mod, unsigned Reg, unsigned Rm) {
    byte(static_cast<uint8_t>((Mod << 6) | ((Reg & 7) << 3) | (Rm & 7)));
  }
  /// REX for reg/rm forms; emitted only when an extended register needs
  /// it (32-bit operand size).
  void rex(bool W, HostReg Reg, HostReg Rm) {
    uint8_t B = 0x40;
    if (W)
      B |= 8;
    if (Reg >= R8)
      B |= 4;
    if (Rm >= R8)
      B |= 1;
    if (B != 0x40)
      byte(B);
  }
  void rexW(HostReg Reg, HostReg Rm) { rex(true, Reg, Rm); }
  /// REX for SIB forms with an index register.
  void rexX(bool W, HostReg Reg, HostReg Index, HostReg Base) {
    uint8_t B = 0x40;
    if (W)
      B |= 8;
    if (Reg >= R8)
      B |= 4;
    if (Index >= R8)
      B |= 2;
    if (Base >= R8)
      B |= 1;
    if (B != 0x40)
      byte(B);
  }

  /// [Base + Disp] operand.  Always uses an explicit disp (mod 01/10),
  /// sidestepping the mod=00 rm=101 RIP-relative special case for
  /// r13/rbp bases.  Base must not be RSP/R12 (no SIB path here) —
  /// which holds for the bases the templates use (r13/r14/r15).
  void memOperand(HostReg Reg, HostReg Base, int32_t Disp) {
    if (Disp >= -128 && Disp <= 127) {
      modRM(1, Reg & 7, Base & 7);
      byte(static_cast<uint8_t>(Disp));
    } else {
      modRM(2, Reg & 7, Base & 7);
      u32(static_cast<uint32_t>(Disp));
    }
  }

  /// [Base + Index*1] operand via SIB, disp8=0 form (valid for every
  /// base including r13).
  void sibOperand(HostReg Reg, HostReg Base, HostReg Index) {
    modRM(1, Reg & 7, 4); // rm=100: SIB follows, mod=01: disp8
    byte(static_cast<uint8_t>(((Index & 7) << 3) | (Base & 7)));
    byte(0);
  }
};

} // namespace jit
} // namespace isa
} // namespace silver

#endif // SILVER_ISA_JIT_EMITTER_H
