//===- isa/jit/JitInternal.h - Shared JIT internals ------------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structures shared between the block compiler (JitCompiler.cpp) and
/// the dispatcher/backend (JitBackend.cpp).  Internal to the JIT.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_JIT_JITINTERNAL_H
#define SILVER_ISA_JIT_JITINTERNAL_H

#include "isa/DecodeCache.h"
#include "isa/MachineState.h"
#include "isa/jit/Emitter.h"
#include "isa/jit/Jit.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace silver {
namespace isa {
namespace jit {

/// The register convention of translated code.  The Silver register file
/// and flags live in memory (in-order commit: fully updated between
/// instructions), so every side exit is interpreter-resumable:
///
///   r15  JitFrame*          r13  Silver register file base (Word*)
///   r14  Silver memory base r12  store-guard map base (one byte/page)
///   rbx  steps-left budget  rax/rcx/rdx  scratch
///
/// The frame is the only calling convention between the dispatcher and
/// translated code; all fields are read/written by emitted instructions
/// at fixed offsets (static_asserts below pin the layout).
struct JitFrame {
  Word *Regs = nullptr;
  uint8_t *Mem = nullptr;
  uint8_t *GuardMap = nullptr;
  uint64_t StepsLeft = 0;
  uint32_t Pc = 0;
  uint32_t ExitKind = 0;
  uint8_t Carry = 0;
  uint8_t Overflow = 0;
  /// Snapshot of fault::InvertAddCarry, re-read on every native entry so
  /// the fuzzing self-check's injected mutation reaches translated Add.
  uint8_t InvertAddCarry = 0;
};

inline constexpr int32_t FrameRegs = 0;
inline constexpr int32_t FrameMem = 8;
inline constexpr int32_t FrameGuard = 16;
inline constexpr int32_t FrameSteps = 24;
inline constexpr int32_t FramePc = 32;
inline constexpr int32_t FrameExit = 36;
inline constexpr int32_t FrameCarry = 40;
inline constexpr int32_t FrameOvf = 41;
inline constexpr int32_t FrameInvert = 42;

static_assert(offsetof(JitFrame, Regs) == FrameRegs, "frame layout");
static_assert(offsetof(JitFrame, Mem) == FrameMem, "frame layout");
static_assert(offsetof(JitFrame, GuardMap) == FrameGuard, "frame layout");
static_assert(offsetof(JitFrame, StepsLeft) == FrameSteps, "frame layout");
static_assert(offsetof(JitFrame, Pc) == FramePc, "frame layout");
static_assert(offsetof(JitFrame, ExitKind) == FrameExit, "frame layout");
static_assert(offsetof(JitFrame, Carry) == FrameCarry, "frame layout");
static_assert(offsetof(JitFrame, Overflow) == FrameOvf, "frame layout");
static_assert(offsetof(JitFrame, InvertAddCarry) == FrameInvert,
              "frame layout");

/// How translated code returned to the dispatcher (JitFrame::ExitKind).
enum : uint32_t {
  /// Frame.Pc is the committed next PC; dispatch from there (block end,
  /// unresolved chain target, invalidated block bounce).
  ExitChain = 0,
  /// Interpret at least one step at Frame.Pc: the next instruction may
  /// fault or writes a guarded (code-bearing) page.  No effect of that
  /// instruction has happened; its budget charge was refunded.
  ExitDeopt = 1,
  /// A chained block entry found StepsLeft smaller than the block.
  ExitBudget = 2,
};

/// Code pages share the decode cache's 4 KiB granularity; the guard map
/// has one byte per page.
inline constexpr unsigned GuardPageShift = DecodeCache::PageShift;

/// A compiled block as emitted (position independent except for the
/// recorded fixups, which the backend resolves against arena addresses).
struct CompiledCode {
  std::vector<uint8_t> Bytes;
  /// Offsets of rel32 fields that must resolve to the common exit stub.
  std::vector<size_t> ExitFixups;
  /// Block-to-block chain slots: a 5-byte `jmp rel32` at Off, initially
  /// bouncing through an in-block stub that exits with ExitChain; the
  /// backend re-patches it to TargetPc's entry once that block exists.
  struct ChainSlot {
    size_t Off;
    Word TargetPc;
  };
  std::vector<ChainSlot> Chains;
  /// Offset of the invalidation stub.  To invalidate an installed block
  /// the backend overwrites its entry with `jmp rel32` to this stub
  /// (the entry's 7-byte budget compare guarantees room), so stale
  /// incoming chains bounce back to the dispatcher.
  size_t InvalidStubOff = 0;
  unsigned Instrs = 0;
  /// Source bytes covered: [FirstByte, LastByte], inclusive.
  Word FirstByte = 0;
  Word LastByte = 0;
};

/// Compiles the block entered at \p Entry.  Returns false with \p Why
/// set when the block is refused.  \p HasGuardPc/\p GuardPc carry the
/// active runUntilPc stop PC: no block is compiled at it, none crosses
/// it, and no chain slot targets it, so the dispatcher always observes
/// the boundary.  The caller guarantees Entry holds a decodable,
/// non-self-jump instruction and that memory is word-addressable.
bool compileBlock(const MachineState &State, Word Entry, bool HasGuardPc,
                  Word GuardPc, CompiledCode &Out, RefuseReason &Why);

/// Emits the two runtime thunks into \p Em:
///  - enter (at \p EnterOff), C-callable as void(JitFrame*, const void*):
///    saves callee-saved registers, loads the convention from the frame,
///    and jumps to the block code in the second argument;
///  - common exit (at \p ExitOff): stores eax as Frame.Pc and rbx as
///    Frame.StepsLeft, restores registers, and returns.
void emitRuntimeThunks(Emitter &Em, size_t &EnterOff, size_t &ExitOff);

} // namespace jit
} // namespace isa
} // namespace silver

#endif // SILVER_ISA_JIT_JITINTERNAL_H
