//===- isa/jit/CodeArena.h - W^X executable code arena ---------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump allocator over one mmap'd region holding all translated code
/// of a JIT backend.  The mapping follows a W^X discipline: it is
/// read-write only inside a beginWrite()/endWrite() bracket (compiling,
/// patching chains, invalidating entries) and read-execute otherwise —
/// never writable and executable at once.  Exhaustion is handled by the
/// backend flushing every block and starting over (resetTo), so the
/// arena never grows.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_JIT_CODEARENA_H
#define SILVER_ISA_JIT_CODEARENA_H

#include <cstddef>
#include <cstdint>

namespace silver {
namespace isa {
namespace jit {

class CodeArena {
public:
  /// Maps \p Bytes of read-write memory (rounded up to the page size);
  /// valid() reports failure.  Pass 0 for a deliberately empty arena
  /// (backend in interpreter-degrade mode).
  explicit CodeArena(size_t Bytes);
  ~CodeArena();

  CodeArena(const CodeArena &) = delete;
  CodeArena &operator=(const CodeArena &) = delete;

  bool valid() const { return Base != nullptr; }
  uint8_t *base() { return Base; }
  size_t capacity() const { return Cap; }
  size_t used() const { return Used; }

  /// Bump-allocates \p N bytes; null when the arena is exhausted.
  uint8_t *alloc(size_t N) {
    if (N > Cap - Used)
      return nullptr;
    uint8_t *P = Base + Used;
    Used += N;
    return P;
  }

  /// Drops every allocation after the first \p KeepBytes (the runtime
  /// thunks survive a block flush).
  void resetTo(size_t KeepBytes) { Used = KeepBytes; }

  /// Makes the whole mapping read-write for emission or patching.
  void beginWrite();
  /// Seals the mapping read-execute.
  void endWrite();

private:
  uint8_t *Base = nullptr;
  size_t Cap = 0;
  size_t Used = 0;
};

} // namespace jit
} // namespace isa
} // namespace silver

#endif // SILVER_ISA_JIT_CODEARENA_H
