//===- isa/jit/JitBackend.cpp - JIT execution backend ---------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT ExecBackend: a dispatcher structured exactly like the
/// predecoded interpreter loops of isa/Interp.cpp (budget first, then
/// the stop PC, PC validity, illegal, the halt self-jump), which runs
/// hot compiled blocks natively and interprets everything else one step
/// at a time.  Keeping the loop shape identical to isa::run/runUntilPc
/// is what makes the backend's step counts, faults, and halt decisions
/// bit-identical to the interpreter's.
///
//===----------------------------------------------------------------------===//

#include "isa/jit/Jit.h"

#include "isa/Interp.h"
#include "isa/jit/CodeArena.h"
#include "isa/jit/JitInternal.h"

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define SILVER_JIT_HAVE_MMAP 1
#else
#define SILVER_JIT_HAVE_MMAP 0
#endif

using namespace silver;
using namespace silver::isa;
using namespace silver::isa::jit;

bool silver::isa::jit::hostSupported() {
#if (defined(__x86_64__) || defined(_M_X64)) && SILVER_JIT_HAVE_MMAP
  // The templates are x86-64; beyond the architecture, executable
  // memory must actually be mappable (hardened environments may refuse).
  static const bool Ok = [] {
    void *P = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (P == MAP_FAILED)
      return false;
    bool Good = mprotect(P, 4096, PROT_READ | PROT_EXEC) == 0;
    munmap(P, 4096);
    return Good;
  }();
  return Ok;
#else
  return false;
#endif
}

namespace {

class JitBackend final : public ExecBackend {
public:
  explicit JitBackend(const JitOptions &O)
      : Opts(O), NativeOk(hostSupported()),
        Arena(NativeOk ? O.CodeBytes : 0) {
    if (!Arena.valid())
      NativeOk = false;
    if (!NativeOk)
      return;
    Emitter Em;
    size_t EnterOff = 0, ExitOff = 0;
    emitRuntimeThunks(Em, EnterOff, ExitOff);
    uint8_t *P = Arena.alloc(Em.size());
    if (!P) {
      NativeOk = false;
      return;
    }
    std::memcpy(P, Em.Code.data(), Em.size());
    Arena.endWrite();
    Enter = reinterpret_cast<EnterFn>(P + EnterOff);
    CommonExit = P + ExitOff;
    ThunkBytes = Arena.used();
  }

  const char *name() const override { return "jit"; }

  StepResult step(MachineState &State, IsaEnv &Env) override {
    PendingStore PS = pendingStore(State);
    StepResult S = isa::step(State, Env, Cache);
    CacheDirty = true;
    if (S.ok())
      commitPendingStore(PS);
    return S;
  }

  HaltOrStep stepUnlessHalted(MachineState &State, IsaEnv &Env) override {
    PendingStore PS = pendingStore(State);
    HaltOrStep H = isa::stepUnlessHalted(State, Env, Cache);
    CacheDirty = true;
    if (!H.Halted && H.S.ok())
      commitPendingStore(PS);
    return H;
  }

  HaltOrStep stepUnlessHalted(MachineState &State, IsaEnv &Env,
                              obs::Observer &Obs,
                              uint64_t RetireIndex) override {
    PendingStore PS = pendingStore(State);
    HaltOrStep H =
        isa::stepUnlessHalted(State, Env, Obs, RetireIndex, Cache);
    CacheDirty = true;
    if (!H.Halted && H.S.ok())
      commitPendingStore(PS);
    return H;
  }

  bool isHalted(const MachineState &State) override {
    CacheDirty = true;
    return isa::isHalted(State, Cache);
  }

  RunResult run(MachineState &State, IsaEnv &Env,
                uint64_t MaxSteps) override {
    if (!NativeOk) {
      CacheDirty = true;
      return isa::run(State, Env, MaxSteps, Cache);
    }
    DispatchOut O = dispatch(State, Env, MaxSteps, /*HasStop=*/false, 0);
    RunResult R;
    R.Steps = O.Steps;
    R.Halted = O.Halted;
    R.Fault = O.Fault;
    return R;
  }

  RunResult run(MachineState &State, IsaEnv &Env, uint64_t MaxSteps,
                ObsHooks &Hooks) override {
    if (!Hooks.Obs)
      return run(State, Env, MaxSteps);
    // Observed runs are interpreter-exact by definition; the delegated
    // run's stores bypass block invalidation and its decodes land on
    // pages the guard map has never seen, so drop every block and
    // re-derive the guard set before the next native burst.
    RunResult R = isa::run(State, Env, MaxSteps, Hooks, Cache);
    CacheDirty = true;
    if (NativeOk)
      flushBlocks();
    return R;
  }

  RunStopResult runUntilPc(MachineState &State, IsaEnv &Env,
                           uint64_t MaxSteps, Word StopPc) override {
    if (!NativeOk) {
      CacheDirty = true;
      return isa::runUntilPc(State, Env, MaxSteps, StopPc, Cache);
    }
    DispatchOut O =
        dispatch(State, Env, MaxSteps, /*HasStop=*/true, StopPc);
    RunStopResult R;
    R.Steps = O.Steps;
    R.AtStopPc = O.AtStopPc;
    R.Halted = O.Halted;
    R.Fault = O.Fault;
    return R;
  }

  void invalidate(Word Addr, Word Size) override {
    Cache.invalidate(Addr, Size);
    invalidateBlocksOverlap(Addr, Size);
  }

  void invalidateAll() override {
    Cache.invalidateAll();
    if (NativeOk)
      flushBlocks();
  }

  const DecodeCache::Stats &decodeStats() const override {
    return Cache.stats();
  }

  const JitStats &stats() const { return Stats; }

private:
  using EnterFn = void (*)(JitFrame *, const void *);

  enum BlockState : uint8_t { StCold = 0, StCompiled = 1, StRefused = 2 };

  struct BlockEntry {
    uint8_t *Code = nullptr;
    uint32_t Len = 0;
    uint32_t Counter = 0;
    uint8_t St = StCold;
  };
  struct BlockPage {
    std::array<BlockEntry, DecodeCache::PageSlots> Slots{};
  };
  /// One installed block, for invalidation by source byte range.
  struct BlockRecord {
    Word Entry = 0;
    Word First = 0;
    Word Last = 0; ///< inclusive
    uint8_t *Code = nullptr;
    uint8_t *InvalidStub = nullptr;
    bool Live = false;
  };
  struct DispatchOut {
    uint64_t Steps = 0;
    bool AtStopPc = false;
    bool Halted = false;
    StepFault Fault = StepFault::None;
  };
  struct PendingStore {
    Word Addr = 0;
    Word Size = 0;
  };

  JitOptions Opts;
  DecodeCache Cache;
  bool NativeOk = false;
  CodeArena Arena;
  EnterFn Enter = nullptr;
  uint8_t *CommonExit = nullptr;
  size_t ThunkBytes = 0;
  JitFrame Frame;
  JitStats Stats;

  std::vector<std::unique_ptr<BlockPage>> BlockPages;
  std::vector<BlockRecord> Records;
  /// Chain slots (address of their E9 byte) waiting for a target PC to
  /// be compiled.
  std::unordered_multimap<Word, uint8_t *> PendingChains;

  /// One byte per 4 KiB page: nonzero when the page ever carried code
  /// (a compiled block's source bytes, or a decoded cache slot).
  /// Translated stores into guarded pages deoptimize; bits are only
  /// cleared when the map is rebuilt wholesale.
  std::vector<uint8_t> GuardMap;

  /// The runUntilPc stop PC the current block population was compiled
  /// under; changing it flushes (blocks never straddle the stop PC).
  bool HasStamp = false;
  bool StampHasStop = false;
  Word StampStopPc = 0;

  /// Identity of the memory the blocks were compiled from.
  const uint8_t *MemData = nullptr;
  size_t MemSize = 0;

  /// Decode-cache entries were created outside the dispatcher (step
  /// delegation, isHalted, observed runs); re-derive guard pages before
  /// the next native burst.
  bool CacheDirty = false;

  void markGuardPage(Word Addr) { GuardMap[Addr >> GuardPageShift] = 1; }

  bool guardedRange(Word Addr, Word Size) const {
    return GuardMap[Addr >> GuardPageShift] ||
           GuardMap[(Addr + (Size - 1)) >> GuardPageShift];
  }

  BlockEntry &blockEntry(Word Pc) {
    size_t PageIdx = Pc >> GuardPageShift;
    if (PageIdx >= BlockPages.size())
      BlockPages.resize(PageIdx + 1);
    if (!BlockPages[PageIdx])
      BlockPages[PageIdx] = std::make_unique<BlockPage>();
    return BlockPages[PageIdx]
        ->Slots[(Pc & DecodeCache::PageMask) >> 2];
  }

  const BlockEntry *findBlock(Word Pc) const {
    size_t PageIdx = Pc >> GuardPageShift;
    if (PageIdx >= BlockPages.size() || !BlockPages[PageIdx])
      return nullptr;
    return &BlockPages[PageIdx]
                ->Slots[(Pc & DecodeCache::PageMask) >> 2];
  }

  static void patchRel32At(uint8_t *Field, const uint8_t *Target) {
    int64_t Rel = Target - (Field + 4);
    uint32_t V = static_cast<uint32_t>(static_cast<int32_t>(Rel));
    Field[0] = static_cast<uint8_t>(V);
    Field[1] = static_cast<uint8_t>(V >> 8);
    Field[2] = static_cast<uint8_t>(V >> 16);
    Field[3] = static_cast<uint8_t>(V >> 24);
  }

  /// Drops every compiled block (arena pressure, stop-PC change, memory
  /// identity change, observed-run delegation).  The thunks survive.
  void flushBlocks() {
    for (std::unique_ptr<BlockPage> &P : BlockPages)
      if (P)
        for (BlockEntry &E : P->Slots)
          E = BlockEntry{};
    Records.clear();
    PendingChains.clear();
    Arena.resetTo(ThunkBytes);
  }

  /// Invalidates installed blocks whose source bytes overlap
  /// [Addr, Addr+Size): the block's entry is patched into a jump to its
  /// invalidation stub, so stale incoming chains bounce out safely.
  void invalidateBlocksOverlap(Word Addr, Word Size) {
    if (Size == 0 || Records.empty())
      return;
    Word First = Addr;
    Word Last = Addr + (Size - 1);
    bool Writing = false;
    for (BlockRecord &R : Records) {
      if (!R.Live || R.Last < First || R.First > Last)
        continue;
      if (!Writing) {
        Arena.beginWrite();
        Writing = true;
      }
      R.Code[0] = 0xe9;
      patchRel32At(R.Code + 1, R.InvalidStub);
      R.Live = false;
      BlockEntry &E = blockEntry(R.Entry);
      E = BlockEntry{};
      ++Stats.BlockInvalidations;
    }
    if (Writing)
      Arena.endWrite();
  }

  /// Pre-decodes the store the next delegated step would perform, so
  /// its block invalidation can be applied after the step commits.
  PendingStore pendingStore(MachineState &State) {
    PendingStore P;
    if (Records.empty())
      return P;
    if (!State.inRange(State.PC, 4) || !isAligned(State.PC, 4))
      return P;
    const DecodedInsn &D = Cache.lookup(State, State.PC);
    if (D.St != DecodedInsn::Decoded)
      return P;
    if (D.I.Op == Opcode::StoreMEM) {
      P.Addr = State.operandValue(D.I.B);
      P.Size = 4;
    } else if (D.I.Op == Opcode::StoreMEMByte) {
      P.Addr = State.operandValue(D.I.B);
      P.Size = 1;
    }
    return P;
  }

  void commitPendingStore(const PendingStore &P) {
    if (P.Size)
      invalidateBlocksOverlap(P.Addr, P.Size);
  }

  void prepareRun(MachineState &State, bool HasStop, Word StopPc) {
    if (State.Memory.size() != MemSize ||
        State.Memory.data() != MemData) {
      // A different (or resized) memory: every derived artifact and the
      // guard set refer to the old one.
      Cache.invalidateAll();
      flushBlocks();
      MemSize = State.Memory.size();
      MemData = State.Memory.data();
      GuardMap.assign((MemSize >> GuardPageShift) + 1, 0);
      CacheDirty = false;
    }
    if (!HasStamp || StampHasStop != HasStop ||
        (HasStop && StampStopPc != StopPc)) {
      if (HasStamp)
        flushBlocks();
      HasStamp = true;
      StampHasStop = HasStop;
      StampStopPc = StopPc;
    }
    if (CacheDirty) {
      // Decodes happened behind the dispatcher's back; every cached
      // page must be guarded before translated stores run again.
      Cache.forEachCachedPage([&](Word Page) { markGuardPage(Page); });
      CacheDirty = false;
    }
  }

  void runNative(MachineState &State, const uint8_t *Code,
                 uint64_t &Remaining) {
    Frame.Regs = State.Regs.data();
    Frame.Mem = State.Memory.data();
    Frame.GuardMap = GuardMap.data();
    Frame.StepsLeft = Remaining;
    Frame.Pc = State.PC;
    Frame.ExitKind = ExitChain;
    Frame.Carry = State.CarryFlag ? 1 : 0;
    Frame.Overflow = State.OverflowFlag ? 1 : 0;
    Frame.InvertAddCarry = fault::InvertAddCarry ? 1 : 0;
    Enter(&Frame, Code);
    State.PC = Frame.Pc;
    State.CarryFlag = Frame.Carry != 0;
    State.OverflowFlag = Frame.Overflow != 0;
    Remaining = Frame.StepsLeft;
  }

  /// One interpreted step at a PC the dispatcher has already validated
  /// (in range, aligned, decodable, not the halt self-jump).  Mirrors
  /// the loop bodies of isa::run/runUntilPc, plus the block-side half
  /// of the store-invalidation contract.
  bool interpretOne(MachineState &State, IsaEnv &Env, uint64_t &Remaining,
                    DispatchOut &R) {
    PendingStore PS = pendingStore(State);
    StepResult S = isa::step(State, Env, Cache);
    if (!S.ok()) {
      R.Fault = S.Fault; // the faulting step is not counted
      return false;
    }
    --Remaining;
    if (PS.Size && guardedRange(PS.Addr, PS.Size))
      invalidateBlocksOverlap(PS.Addr, PS.Size);
    return true;
  }

  void tryCompile(MachineState &State, Word Entry) {
    CompiledCode CC;
    RefuseReason Why = RefuseReason::None;
    if (!compileBlock(State, Entry, StampHasStop, StampStopPc, CC, Why)) {
      blockEntry(Entry).St = StRefused;
      ++Stats.BlocksRefused;
      return;
    }
    uint8_t *P = Arena.alloc(CC.Bytes.size());
    if (!P) {
      flushBlocks();
      ++Stats.ArenaFlushes;
      P = Arena.alloc(CC.Bytes.size());
      if (!P) { // cannot ever fit
        blockEntry(Entry).St = StRefused;
        ++Stats.BlocksRefused;
        return;
      }
    }
    Arena.beginWrite();
    std::memcpy(P, CC.Bytes.data(), CC.Bytes.size());
    for (size_t F : CC.ExitFixups)
      patchRel32At(P + F, CommonExit);
    // Outgoing edges: patch now when the target is already compiled,
    // park in PendingChains otherwise.
    for (const CompiledCode::ChainSlot &CS : CC.Chains) {
      uint8_t *Slot = P + CS.Off;
      const BlockEntry *T = findBlock(CS.TargetPc);
      if (T && T->St == StCompiled)
        patchRel32At(Slot + 1, T->Code);
      else
        PendingChains.emplace(CS.TargetPc, Slot);
    }
    // Incoming edges parked on this entry.
    auto Range = PendingChains.equal_range(Entry);
    for (auto It = Range.first; It != Range.second; ++It)
      patchRel32At(It->second + 1, P);
    PendingChains.erase(Range.first, Range.second);
    Arena.endWrite();

    for (Word Page = CC.FirstByte >> GuardPageShift,
              End = CC.LastByte >> GuardPageShift;
         Page <= End; ++Page)
      GuardMap[Page] = 1;

    BlockRecord Rec;
    Rec.Entry = Entry;
    Rec.First = CC.FirstByte;
    Rec.Last = CC.LastByte;
    Rec.Code = P;
    Rec.InvalidStub = P + CC.InvalidStubOff;
    Rec.Live = true;
    Records.push_back(Rec);

    BlockEntry &E = blockEntry(Entry);
    E.Code = P;
    E.Len = CC.Instrs;
    E.St = StCompiled;
    ++Stats.BlocksCompiled;
  }

  /// The dispatcher.  Structured exactly like isa::run (HasStop=false)
  /// and isa::runUntilPc (HasStop=true): budget, stop PC, PC validity,
  /// illegal word, halt self-jump — then either a native burst through
  /// compiled blocks or one interpreted step.
  DispatchOut dispatch(MachineState &State, IsaEnv &Env, uint64_t MaxSteps,
                       bool HasStop, Word StopPc) {
    prepareRun(State, HasStop, StopPc);
    DispatchOut R;
    uint64_t Remaining = MaxSteps;
    while (Remaining > 0) {
      if (HasStop && State.PC == StopPc) {
        R.AtStopPc = true;
        break;
      }
      if (!State.inRange(State.PC, 4) || !isAligned(State.PC, 4)) {
        // Not a halt; take the reference step to report the exact fault.
        StepResult S = isa::step(State, Env);
        R.Fault = S.Fault;
        break;
      }
      const DecodedInsn &D = Cache.lookup(State, State.PC);
      if (D.St == DecodedInsn::Illegal) {
        R.Fault = StepFault::IllegalInstruction;
        break;
      }
      if (D.SelfJump) {
        R.Halted = true;
        break;
      }
      markGuardPage(State.PC); // this page now carries decoded state
      BlockEntry &B = blockEntry(State.PC);
      if (B.St == StCold && ++B.Counter >= Opts.HotThreshold)
        tryCompile(State, State.PC);
      // tryCompile may have flushed; re-read the entry.
      const BlockEntry &BE = *findBlock(State.PC);
      if (BE.St == StCompiled && Remaining >= BE.Len) {
        runNative(State, BE.Code, Remaining);
        if (Frame.ExitKind == ExitDeopt) {
          ++Stats.Deopts;
          if (!interpretOne(State, Env, Remaining, R))
            break;
        }
        continue;
      }
      if (!interpretOne(State, Env, Remaining, R))
        break;
    }
    R.Steps = MaxSteps - Remaining;
    return R;
  }
};

} // namespace

std::unique_ptr<ExecBackend>
silver::isa::jit::makeJitBackend(const JitOptions &Opts) {
  return std::make_unique<JitBackend>(Opts);
}

const JitStats *silver::isa::jit::backendStats(const ExecBackend &Backend) {
  if (std::strcmp(Backend.name(), "jit") != 0)
    return nullptr;
  return &static_cast<const JitBackend &>(Backend).stats();
}
