//===- isa/jit/Jit.h - Baseline template JIT for Silver code ---*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline JIT execution tier (DESIGN.md §13): hot basic blocks of
/// Silver machine code are compiled, copy-and-patch style, to host
/// x86-64 and executed natively; everything else — cold code, blocks the
/// compiler refuses, FFI/oracle boundaries, faults, budget tails — runs
/// on the reference interpreter.  The trusted artifact stays the
/// interpreter: the JIT is validated differentially (the silver-fuzz
/// Jit-vs-Isa level grinds it against isa::Interp on every campaign),
/// never trusted.
///
/// Correctness invariants the backend maintains:
///
///  - Bit-exactness.  Compiled templates mirror isa/Interp.cpp's
///    execImpl per instruction, including the flag semantics of
///    Add/AddCarry/Sub (and the SILVER_FAULT_INJECTION carry inversion,
///    re-read from the global on every entry) and the exact operand
///    evaluation order of Jump's link write.
///  - In-order commit.  The memory-resident Silver register file is
///    fully updated between instructions, so every side exit lands on an
///    exact interpreter-resumable state; an instruction that may fault
///    (loads, stores) side-exits *before* any effect and the dispatcher
///    takes the fault through the reference step.
///  - Exact step accounting.  A block charges its length against the
///    budget at entry and refunds the unexecuted tail on a side exit;
///    the dispatcher interprets single steps whenever the remaining
///    budget is smaller than a block.  run/runUntilPc therefore report
///    step counts identical to the interpreter's.
///  - Store-guard pages.  Every 4 KiB page that ever held executed code
///    (a compiled block, or a decoded slot of the backend's
///    DecodeCache) is marked in a guard map; a native store into a
///    guarded page side-exits and the offending store is interpreted,
///    which honors the DecodeCache invalidation contract and drops the
///    overlapping compiled blocks — self-modifying code (the corpus's
///    selfmod-0.s) deoptimizes and re-compiles.
///  - External invalidation.  ExecBackend::invalidate (the machine-sem
///    FFI interference oracle, tests, image patching) drops decoded
///    slots and compiled blocks covering the range.
///
/// Blocks chain directly block-to-block: a terminator whose target is a
/// compiled block is patched to jump straight to it (the target's entry
/// re-checks the budget), so hot loops never touch the dispatcher.  In
/// runUntilPc mode the stop PC is a compile-time guard: no block is
/// compiled at or across it and no chain targets it, so the boundary is
/// always observed by the dispatcher.
///
/// Code buffers follow a W^X discipline: pages are writable during
/// emission and patching, executable otherwise, never both.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_JIT_JIT_H
#define SILVER_ISA_JIT_JIT_H

#include "isa/ExecBackend.h"

#include <memory>

namespace silver {
namespace isa {
namespace jit {

/// Whether this host can execute translated Silver code.  False on
/// non-x86-64 architectures and when executable memory cannot be
/// mapped; the backend then degrades to pure interpretation (and the
/// stack layer reports the degradation as a diagnostic, not an error).
bool hostSupported();

/// Upper bound on instructions per compiled block.  A straight-line run
/// that does not reach a terminator within this many instructions is
/// *refused* (reason "block-too-long") rather than split: the entry
/// budget check retires a whole block up front, and an unbounded block
/// would make the worst-case budget overshoot/refund window unbounded
/// too.  Refused blocks stay on the interpreter and are surfaced by the
/// "jit-bailout" diagnostic (analysis/JitReadiness.h).
inline constexpr unsigned MaxBlockInstrs = 64;

/// Why the compiler refused a block (the bailout taxonomy, §13).  The
/// host-independent reasons (BlockTooLong) are also what the static
/// jit-bailout diagnostic reports; StopPcGuard and HostUnsupported
/// depend on the run configuration and host and are runtime-only.
enum class RefuseReason : uint8_t {
  None,            ///< not refused
  BlockTooLong,    ///< no terminator within MaxBlockInstrs
  EmptyBlock,      ///< the entry instruction itself cannot be compiled
  StopPcGuard,     ///< the block starts at the active runUntilPc stop PC
  HostUnsupported, ///< no native execution on this host
};

/// The stable string identifier (e.g. "block-too-long").
const char *refuseReasonId(RefuseReason R);

/// Result of a compile probe: what the compiler would do with the block
/// entered at a given address, without executing anything.
struct BlockProbe {
  bool Compilable = false;
  RefuseReason Refused = RefuseReason::None;
  unsigned Instrs = 0; ///< instructions the block would cover
};

/// Probes the block entered at \p Entry against \p State's memory.
/// Shares the compiler's block-scan code path, so the answer is exactly
/// what JitBackend would decide — this is what the jit-bailout
/// cross-check ctest compares against the committed reports.  The scan
/// is pure C++ and host-independent (it ignores hostSupported()).
BlockProbe probeBlock(const MachineState &State, Word Entry);

struct JitOptions {
  /// Dispatcher visits of a cold block entry before it is compiled.
  uint32_t HotThreshold = 16;
  /// Code arena size; when full, all compiled blocks are flushed and
  /// compilation starts over (bounded memory, self-healing).
  size_t CodeBytes = 4u << 20;
};

struct JitStats {
  uint64_t BlocksCompiled = 0;
  uint64_t BlocksRefused = 0;
  uint64_t BlockInvalidations = 0;
  uint64_t Deopts = 0;      ///< side exits that interpreted a step
  uint64_t ArenaFlushes = 0;
};

/// Creates the JIT backend.  Always succeeds; on hosts without native
/// support the returned backend interprets everything (hostSupported()
/// tells callers whether to surface a degradation diagnostic).
std::unique_ptr<ExecBackend> makeJitBackend(const JitOptions &Opts = {});

/// The statistics of a backend created by makeJitBackend; null for
/// other backends.
const JitStats *backendStats(const ExecBackend &Backend);

} // namespace jit
} // namespace isa
} // namespace silver

#endif // SILVER_ISA_JIT_JIT_H
