//===- isa/Interp.h - The Silver ISA next-state function -------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Silver ISA operational semantics: a fetch-decode-execute next-state
/// function (the paper's `Next`, §4.1), plus the ALU shared between this
/// interpreter, the machine-sem layer, and the RTL core checker.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_INTERP_H
#define SILVER_ISA_INTERP_H

#include "isa/Encoding.h"
#include "isa/MachineState.h"
#include "obs/Observer.h"
#include "support/Result.h"

namespace silver {
namespace isa {

/// The processor-external world as seen by the ISA: the Interrupt
/// notification interface and the In/Out data ports (paper §4.2's
/// is_interrupt_interface, reduced to its ISA-visible effect).
class IsaEnv {
public:
  virtual ~IsaEnv();

  /// Invoked when an Interrupt instruction executes.  The returned bytes
  /// are recorded in the IO-event trace as the observable part of memory
  /// (see IoEvent).  The default returns no bytes.
  virtual std::vector<uint8_t> onInterrupt(MachineState &State);

  /// Value delivered by the In instruction; default 0.
  virtual Word inputWord(MachineState &State);

  /// Invoked when an Out instruction executes; default: no effect beyond
  /// the DataOut register and the trace entry the interpreter records.
  virtual void onOutput(MachineState &State, Word Value);
};

/// A no-op environment (useful for pure-computation tests).
IsaEnv &nullEnv();

/// ALU result: value plus the updated flags.
struct AluResult {
  Word Value = 0;
  bool Carry = false;
  bool Overflow = false;
  bool FlagsUpdated = false;
};

/// The Silver ALU (paper §4.1.1).  \p CarryIn/\p OverflowIn are the
/// current flag values (consumed by AddCarry/Carry/Overflow).
AluResult evalAlu(Func F, Word A, Word B, bool CarryIn, bool OverflowIn);

/// Test-only fault injection for the fuzzing self-check (DESIGN.md §9).
/// With the SILVER_FAULT_INJECTION build option (default ON), setting
/// InvertAddCarry flips the carry flag Add computes at the ISA and
/// machine-sem levels; the RTL core's ALU is an independent circuit and
/// is unaffected, so the differential oracle must surface the mutation
/// as a cross-level divergence.  When the option is OFF the flag is a
/// compile-time false and the check folds away.
namespace fault {
#if SILVER_FAULT_INJECTION
extern bool InvertAddCarry;
#else
inline constexpr bool InvertAddCarry = false;
#endif
} // namespace fault

/// Shift unit.
Word evalShift(ShiftKind K, Word A, Word B);

/// Why a step could not be taken.  These correspond to the Fail behaviour
/// of the paper's machine semantics; compiled programs never trigger them.
enum class StepFault : uint8_t {
  None,
  PcOutOfRange,
  PcMisaligned,
  IllegalInstruction,
  MemOutOfRange,
  MemMisaligned,
};

/// Outcome of one Next step.
struct StepResult {
  StepFault Fault = StepFault::None;
  bool ok() const { return Fault == StepFault::None; }
};

class DecodeCache;

/// One step of the ISA semantics: fetch the word at PC, decode, execute.
StepResult step(MachineState &State, IsaEnv &Env);

/// Predecoded step (isa/DecodeCache.h): semantically identical, but the
/// decode comes from \p Cache and stores invalidate the slots they
/// overwrite, so self-modifying code matches the reference semantics.
StepResult step(MachineState &State, IsaEnv &Env, DecodeCache &Cache);

/// Instrumented step: additionally emits the memory accesses and the
/// retirement (with \p RetireIndex) of this instruction to \p Obs.  Both
/// overloads are compiled from the same template; the uninstrumented one
/// pays nothing for the hooks.
StepResult step(MachineState &State, IsaEnv &Env, obs::Observer &Obs,
                uint64_t RetireIndex);

/// Instrumented predecoded step.
StepResult step(MachineState &State, IsaEnv &Env, obs::Observer &Obs,
                uint64_t RetireIndex, DecodeCache &Cache);

/// Result of a fused halt-check-and-step (see stepUnlessHalted).
struct HaltOrStep {
  bool Halted = false;
  StepResult S;
};

/// The is_halted test and the step the reference loop performs
/// back-to-back, fused over a single cache lookup: if the instruction at
/// PC is the halt self-jump, returns Halted without stepping; otherwise
/// executes it.  machine::MachineSem's per-step loop is built on this.
HaltOrStep stepUnlessHalted(MachineState &State, IsaEnv &Env,
                            DecodeCache &Cache);
HaltOrStep stepUnlessHalted(MachineState &State, IsaEnv &Env,
                            obs::Observer &Obs, uint64_t RetireIndex,
                            DecodeCache &Cache);

/// Outcome of runUntilPc: exactly one of AtStopPc / Halted is set, or
/// Fault is non-None, or the step budget ran out (none set).
struct RunStopResult {
  uint64_t Steps = 0;    ///< instructions executed (none at StopPc)
  bool AtStopPc = false; ///< stopped with PC == StopPc, before executing
  bool Halted = false;   ///< the halt self-jump was reached
  StepFault Fault = StepFault::None;
};

/// Predecoded run that additionally stops — before executing — whenever
/// PC equals \p StopPc.  machine::MachineSem points StopPc at the FFI
/// trampoline so its uninstrumented run is one tight loop with a single
/// extra compare per instruction, instead of a cross-call per step.
RunStopResult runUntilPc(MachineState &State, IsaEnv &Env, uint64_t MaxSteps,
                         Word StopPc, DecodeCache &Cache);

/// Runs until the machine halts (reaches the self-jump fixpoint), a fault
/// occurs, or \p MaxSteps instructions execute.
struct RunResult {
  uint64_t Steps = 0;
  bool Halted = false;
  StepFault Fault = StepFault::None;
};
RunResult run(MachineState &State, IsaEnv &Env, uint64_t MaxSteps);

/// Predecoded run loop: one cache lookup per instruction replaces the
/// fetch-decode pair the reference loop performs (isHalted + step), with
/// the halt test reduced to the entry's self-jump flag.
RunResult run(MachineState &State, IsaEnv &Env, uint64_t MaxSteps,
              DecodeCache &Cache);

/// Observation hooks for an instrumented run.  All fields are optional;
/// a default-constructed ObsHooks makes run() behave exactly like the
/// plain overload.
struct ObsHooks {
  obs::Observer *Obs = nullptr;
  /// Retirement index of the first instruction this run executes (lets a
  /// resumed run continue the event stream where it paused).
  uint64_t RetireIndexBase = 0;
  /// FFI-span detection: entering \p FfiEntryPc opens a span for the call
  /// index in register abi::FfiIndexReg; leaving [FfiRegionBegin,
  /// FfiRegionEnd) closes it.  All-zero disables detection.
  Word FfiEntryPc = 0;
  Word FfiRegionBegin = 0;
  Word FfiRegionEnd = 0;
  /// True when an FFI span is open (carried across paused runs).
  bool InFfi = false;
  unsigned FfiIndex = 0;
};

/// Instrumented run: emits retire/memory/FFI events to Hooks.Obs.  With a
/// null observer this is exactly the plain run().  \p Hooks is updated so
/// a subsequent call resumes the event stream (paper-faithful pause /
/// step-N execution for the stack::Executor API).
RunResult run(MachineState &State, IsaEnv &Env, uint64_t MaxSteps,
              ObsHooks &Hooks);

/// Instrumented predecoded run: the Hooks overload above with a caller-
/// owned cache (a session that pauses and resumes keeps its predecode
/// work across calls).
RunResult run(MachineState &State, IsaEnv &Env, uint64_t MaxSteps,
              ObsHooks &Hooks, DecodeCache &Cache);

/// The paper's is_halted predicate: the instruction at PC is an
/// unconditional self-jump, so every further step leaves the ISA-visible
/// state unchanged (after the link register stabilises).
bool isHalted(const MachineState &State);

/// Predecoded is_halted: the self-jump test is the cached flag.
bool isHalted(const MachineState &State, DecodeCache &Cache);

} // namespace isa
} // namespace silver

#endif // SILVER_ISA_INTERP_H
