//===- isa/Effects.h - Static per-instruction effect metadata --*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static effect metadata of one decoded Silver instruction: which
/// registers it can write and read, whether it updates or consumes the
/// ALU flags, its memory-access shape, and whether it interacts with the
/// processor-external environment.  This is the single decoder-side
/// source of truth the static analyses build on: the def/use dataflow
/// summaries (analysis/Dataflow.h), the symbolic block summaries
/// (analysis/BlockSummary.h), and the fuzzer's summary-containment check
/// (fuzz/Containment.h) all derive their per-instruction footprints from
/// effectsOf, so an ISA extension has exactly one place to declare what
/// an instruction touches.
///
/// The metadata is an over-approximation of execImpl (isa/Interp.cpp) by
/// construction: every architectural write the interpreter can perform
/// for an instruction is covered by the masks here (the containment fuzz
/// level holds the two in agreement dynamically).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_EFFECTS_H
#define SILVER_ISA_EFFECTS_H

#include "isa/Instruction.h"

namespace silver {
namespace isa {

/// Memory-access shape of an instruction.
enum class MemAccessKind : uint8_t {
  None,  ///< no data-memory access
  Read,  ///< LoadMEM / LoadMEMByte
  Write, ///< StoreMEM / StoreMEMByte
};

/// Static effects of one instruction.  Register sets are 64-bit masks
/// (bit r = register r), matching analysis::RegSummary.
struct EffectInfo {
  uint64_t RegWrites = 0; ///< registers the instruction can write
  uint64_t RegReads = 0;  ///< registers the instruction can read
  bool WritesFlags = false; ///< runs an Add/AddCarry/Sub ALU operation
  bool ReadsFlags = false;  ///< runs AddCarry/Carry/Overflow
  MemAccessKind Mem = MemAccessKind::None;
  uint8_t MemSize = 0;      ///< access bytes: 1 or 4 (0 when Mem is None)
  bool IsIo = false;        ///< Interrupt/In/Out: environment interaction
  bool IsControl = false;   ///< Jump/JumpIfZero/JumpIfNotZero

  bool writes(unsigned Reg) const { return (RegWrites >> Reg) & 1; }
  bool reads(unsigned Reg) const { return (RegReads >> Reg) & 1; }
};

/// Whether ALU function \p F updates the carry/overflow flags.
bool funcWritesFlags(Func F);

/// Whether ALU function \p F consumes the current flag values.
bool funcReadsFlags(Func F);

/// Computes the static effects of \p I.  Pure function of the
/// instruction (address-independent).
EffectInfo effectsOf(const Instruction &I);

} // namespace isa
} // namespace silver

#endif // SILVER_ISA_EFFECTS_H
