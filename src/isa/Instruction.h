//===- isa/Instruction.h - Silver (ag32) instruction set -------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Silver instruction set (paper §4.1).  Silver is a 32-bit
/// general-purpose RISC ISA with 64 registers, fixed 32-bit instructions,
/// byte-addressable little-endian memory, and carry/overflow flags.  The
/// instruction list follows the paper: ALU operations, shifts/rotations,
/// word/byte loads and stores, constant loads, PC-relative and absolute
/// jumps (conditional and computed), an Interrupt instruction for
/// notifying external hardware, and In/Out port instructions.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_INSTRUCTION_H
#define SILVER_ISA_INSTRUCTION_H

#include "support/Bits.h"

#include <cstdint>
#include <string>

namespace silver {
namespace isa {

/// Number of general-purpose registers.
inline constexpr unsigned NumRegs = 64;

/// ALU functions (paper §4.1.1).  Add, AddCarry and Sub update the carry
/// and overflow flags; every other function leaves them unchanged.
/// Mul/MulHigh together give the paper's "multiplication (with 64-bit
/// output)".  Snd returns the second operand; Carry/Overflow read the
/// current flag values.
enum class Func : uint8_t {
  Add,
  AddCarry,
  Sub,
  Carry,
  Overflow,
  Inc,
  Dec,
  Mul,
  MulHigh,
  And,
  Or,
  Xor,
  Equal,
  Less,  ///< signed less-than
  Lower, ///< unsigned less-than
  Snd,
};
inline constexpr unsigned NumFuncs = 16;

/// Shift and rotation kinds (paper: "bit-shift and bit-rotation
/// instructions, in both signed and unsigned variants").
enum class ShiftKind : uint8_t {
  LogicalLeft,
  LogicalRight,
  ArithRight,
  RotateRight,
};
inline constexpr unsigned NumShiftKinds = 4;

/// A register-or-immediate operand.  Immediates are 6-bit sign-extended
/// (-32..31); register indices address the 64-entry register file.
struct Operand {
  bool IsImm = false;
  uint8_t Value = 0; ///< register index, or raw 6-bit immediate field

  static Operand reg(unsigned R) {
    Operand Op;
    Op.IsImm = false;
    Op.Value = static_cast<uint8_t>(R);
    return Op;
  }
  static Operand imm(int32_t V) {
    assert(fitsSigned(V, 6) && "operand immediate exceeds 6 bits");
    Operand Op;
    Op.IsImm = true;
    Op.Value = static_cast<uint8_t>(V & 0x3f);
    return Op;
  }

  /// Immediate operand value as a sign-extended word (valid when IsImm).
  Word immValue() const { return signExtend(Value, 6); }

  bool operator==(const Operand &O) const {
    return IsImm == O.IsImm && Value == O.Value;
  }
};

/// Instruction kinds, in encoding-opcode order (see Encoding.h).
enum class Opcode : uint8_t {
  Normal,            ///< R[w] = alu(func, a, b)
  Shift,             ///< R[w] = shift(kind, a, b)
  LoadMEM,           ///< R[w] = mem32[a]
  LoadMEMByte,       ///< R[w] = zero-extend mem8[a]
  StoreMEM,          ///< mem32[b] = a
  StoreMEMByte,      ///< mem8[b] = low byte of a
  LoadConstant,      ///< R[w] = ±imm21
  LoadUpperConstant, ///< R[w] = imm11 << 21 | R[w][20:0]
  Jump,              ///< R[w] = PC+4; PC = alu(func, PC, a)
  JumpIfZero,        ///< if alu(func,a,b)==0 then PC += 4*off10
  JumpIfNotZero,     ///< if alu(func,a,b)!=0 then PC += 4*off10
  Interrupt,         ///< notify external hardware; record an IO event
  In,                ///< R[w] = environment input port
  Out,               ///< output port = a; record an IO event
};

/// A decoded Silver instruction.  A single struct (rather than a class
/// hierarchy) keeps encode/decode, equality, and random generation simple;
/// which fields are meaningful depends on Op.
struct Instruction {
  Opcode Op = Opcode::Interrupt;
  Func F = Func::Add;           ///< Normal, Jump, JumpIfZero, JumpIfNotZero
  ShiftKind Sh = ShiftKind::LogicalLeft; ///< Shift
  uint8_t WReg = 0;             ///< destination / link register
  Operand A;                    ///< first operand
  Operand B;                    ///< second operand
  bool Negate = false;          ///< LoadConstant
  uint32_t Imm = 0;             ///< LoadConstant (21 bits) / Upper (11 bits)
  int32_t Offset = 0;           ///< JumpIf*: signed word offset (10 bits)

  bool operator==(const Instruction &I) const;

  // --- Convenience constructors (used by the assembler, the code
  // generator, and the hand-written system-call routines). ---

  static Instruction normal(Func F, unsigned W, Operand A, Operand B) {
    Instruction I;
    I.Op = Opcode::Normal;
    I.F = F;
    I.WReg = static_cast<uint8_t>(W);
    I.A = A;
    I.B = B;
    return I;
  }
  static Instruction shift(ShiftKind K, unsigned W, Operand A, Operand B) {
    Instruction I;
    I.Op = Opcode::Shift;
    I.Sh = K;
    I.WReg = static_cast<uint8_t>(W);
    I.A = A;
    I.B = B;
    return I;
  }
  static Instruction loadMem(unsigned W, Operand Addr) {
    Instruction I;
    I.Op = Opcode::LoadMEM;
    I.WReg = static_cast<uint8_t>(W);
    I.A = Addr;
    return I;
  }
  static Instruction loadMemByte(unsigned W, Operand Addr) {
    Instruction I;
    I.Op = Opcode::LoadMEMByte;
    I.WReg = static_cast<uint8_t>(W);
    I.A = Addr;
    return I;
  }
  static Instruction storeMem(Operand Value, Operand Addr) {
    Instruction I;
    I.Op = Opcode::StoreMEM;
    I.A = Value;
    I.B = Addr;
    return I;
  }
  static Instruction storeMemByte(Operand Value, Operand Addr) {
    Instruction I;
    I.Op = Opcode::StoreMEMByte;
    I.A = Value;
    I.B = Addr;
    return I;
  }
  static Instruction loadConstant(unsigned W, bool Negate, uint32_t Imm21) {
    Instruction I;
    I.Op = Opcode::LoadConstant;
    I.WReg = static_cast<uint8_t>(W);
    I.Negate = Negate;
    I.Imm = Imm21 & 0x1fffff;
    return I;
  }
  static Instruction loadUpperConstant(unsigned W, uint32_t Imm11) {
    Instruction I;
    I.Op = Opcode::LoadUpperConstant;
    I.WReg = static_cast<uint8_t>(W);
    I.Imm = Imm11 & 0x7ff;
    return I;
  }
  static Instruction jump(Func F, unsigned Link, Operand A) {
    Instruction I;
    I.Op = Opcode::Jump;
    I.F = F;
    I.WReg = static_cast<uint8_t>(Link);
    I.A = A;
    return I;
  }
  static Instruction jumpIfZero(Func F, Operand A, Operand B, int32_t Off) {
    Instruction I;
    I.Op = Opcode::JumpIfZero;
    I.F = F;
    I.A = A;
    I.B = B;
    I.Offset = Off;
    return I;
  }
  static Instruction jumpIfNotZero(Func F, Operand A, Operand B,
                                   int32_t Off) {
    Instruction I;
    I.Op = Opcode::JumpIfNotZero;
    I.F = F;
    I.A = A;
    I.B = B;
    I.Offset = Off;
    return I;
  }
  static Instruction interrupt() {
    Instruction I;
    I.Op = Opcode::Interrupt;
    return I;
  }
  static Instruction in(unsigned W) {
    Instruction I;
    I.Op = Opcode::In;
    I.WReg = static_cast<uint8_t>(W);
    return I;
  }
  static Instruction out(Operand A) {
    Instruction I;
    I.Op = Opcode::Out;
    I.A = A;
    return I;
  }

  /// The canonical halt instruction: a PC-relative jump with offset 0,
  /// i.e. an unconditional self-loop.  The paper's is_halted predicate is
  /// "the machine remains at a program-specific location for any further
  /// steps"; with this instruction the ISA state is a fixpoint of Next
  /// modulo the link register (which stabilises after one step).
  static Instruction halt(unsigned Link = NumRegs - 1) {
    return jump(Func::Add, Link, Operand::imm(0));
  }

  /// True when executing this instruction at any PC leaves the PC
  /// unchanged (the self-loop recognised by is_halted).
  bool isSelfJump() const {
    return Op == Opcode::Jump && F == Func::Add && A.IsImm &&
           A.immValue() == 0;
  }
};

/// Printable name of an ALU function (used by the disassembler and the
/// Verilog pretty-printer's comments).
const char *funcName(Func F);

/// Printable name of a shift kind.
const char *shiftName(ShiftKind K);

/// Printable name of an instruction kind (used by the trace observers).
const char *opcodeName(Opcode Op);

/// Renders an instruction in assembler syntax (see asm/Disassembler.cpp).
std::string toString(const Instruction &I);

} // namespace isa
} // namespace silver

#endif // SILVER_ISA_INSTRUCTION_H
