//===- isa/Instruction.cpp - Silver instruction printing ------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "isa/Instruction.h"

using namespace silver;
using namespace silver::isa;

const char *silver::isa::funcName(Func F) {
  switch (F) {
  case Func::Add:
    return "add";
  case Func::AddCarry:
    return "addc";
  case Func::Sub:
    return "sub";
  case Func::Carry:
    return "carry";
  case Func::Overflow:
    return "overflow";
  case Func::Inc:
    return "inc";
  case Func::Dec:
    return "dec";
  case Func::Mul:
    return "mul";
  case Func::MulHigh:
    return "mulhi";
  case Func::And:
    return "and";
  case Func::Or:
    return "or";
  case Func::Xor:
    return "xor";
  case Func::Equal:
    return "eq";
  case Func::Less:
    return "lt";
  case Func::Lower:
    return "ltu";
  case Func::Snd:
    return "snd";
  }
  return "?";
}

const char *silver::isa::shiftName(ShiftKind K) {
  switch (K) {
  case ShiftKind::LogicalLeft:
    return "sll";
  case ShiftKind::LogicalRight:
    return "srl";
  case ShiftKind::ArithRight:
    return "sra";
  case ShiftKind::RotateRight:
    return "ror";
  }
  return "?";
}

const char *silver::isa::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Normal:
    return "alu";
  case Opcode::Shift:
    return "shift";
  case Opcode::LoadMEM:
    return "load";
  case Opcode::LoadMEMByte:
    return "loadb";
  case Opcode::StoreMEM:
    return "store";
  case Opcode::StoreMEMByte:
    return "storeb";
  case Opcode::LoadConstant:
    return "li";
  case Opcode::LoadUpperConstant:
    return "lui";
  case Opcode::Jump:
    return "jmp";
  case Opcode::JumpIfZero:
    return "bz";
  case Opcode::JumpIfNotZero:
    return "bnz";
  case Opcode::Interrupt:
    return "interrupt";
  case Opcode::In:
    return "in";
  case Opcode::Out:
    return "out";
  }
  return "?";
}

static std::string operandString(Operand Op) {
  if (Op.IsImm)
    return "#" + std::to_string(asSigned(Op.immValue()));
  return "r" + std::to_string(Op.Value);
}

std::string silver::isa::toString(const Instruction &I) {
  std::string W = "r" + std::to_string(I.WReg);
  switch (I.Op) {
  case Opcode::Normal:
    return std::string(funcName(I.F)) + " " + W + ", " + operandString(I.A) +
           ", " + operandString(I.B);
  case Opcode::Shift:
    return std::string(shiftName(I.Sh)) + " " + W + ", " +
           operandString(I.A) + ", " + operandString(I.B);
  case Opcode::LoadMEM:
    return "ldw " + W + ", [" + operandString(I.A) + "]";
  case Opcode::LoadMEMByte:
    return "ldb " + W + ", [" + operandString(I.A) + "]";
  case Opcode::StoreMEM:
    return "stw " + operandString(I.A) + ", [" + operandString(I.B) + "]";
  case Opcode::StoreMEMByte:
    return "stb " + operandString(I.A) + ", [" + operandString(I.B) + "]";
  case Opcode::LoadConstant:
    return "ldc " + W + ", " + (I.Negate ? "-" : "") + std::to_string(I.Imm);
  case Opcode::LoadUpperConstant:
    return "lduc " + W + ", " + std::to_string(I.Imm);
  case Opcode::Jump:
    if (I.isSelfJump())
      return "halt (" + W + ")";
    return std::string("jmp.") + funcName(I.F) + " " + W + ", " +
           operandString(I.A);
  case Opcode::JumpIfZero:
    return std::string("bz.") + funcName(I.F) + " " + operandString(I.A) +
           ", " + operandString(I.B) + ", " + std::to_string(I.Offset);
  case Opcode::JumpIfNotZero:
    return std::string("bnz.") + funcName(I.F) + " " + operandString(I.A) +
           ", " + operandString(I.B) + ", " + std::to_string(I.Offset);
  case Opcode::Interrupt:
    return "interrupt";
  case Opcode::In:
    return "in " + W;
  case Opcode::Out:
    return "out " + operandString(I.A);
  }
  return "?";
}
