//===- isa/Abi.h - Register conventions for the Silver stack ---*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register conventions shared by the MiniCake compiler, the hand-written
/// system-call code, and the startup code.  The paper's installed-state
/// assumption (i) requires "registers 1-4 provide accurate information on
/// where the part of memory usable by compiled_prog is located"; those are
/// the CakeML info registers below, set by the startup code.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_ABI_H
#define SILVER_ISA_ABI_H

namespace silver {
namespace abi {

// CakeML info registers (paper §5, installed (i)), set by startup code.
inline constexpr unsigned MemStartReg = 1;  ///< usable memory: first byte
inline constexpr unsigned MemEndReg = 2;    ///< usable memory: one past end
inline constexpr unsigned FfiTableReg = 3;  ///< syscall entry-stub table
inline constexpr unsigned LayoutReg = 4;    ///< memory-layout descriptor

// Compiled-code conventions.
inline constexpr unsigned RetReg = 5;       ///< return value / first arg
inline constexpr unsigned FirstArgReg = 5;  ///< arguments r5, r6, ...
inline constexpr unsigned NumArgRegs = 8;

// FFI calling convention (see sys/Syscalls.h).
inline constexpr unsigned FfiIndexReg = 5;
inline constexpr unsigned FfiConfReg = 6;
inline constexpr unsigned FfiConfLenReg = 7;
inline constexpr unsigned FfiBytesReg = 8;
inline constexpr unsigned FfiBytesLenReg = 9;

// Allocatable pool for the register allocator: [FirstAllocReg, LastAllocReg].
inline constexpr unsigned FirstAllocReg = 5;
inline constexpr unsigned LastAllocReg = 55;

// Reserved registers.
inline constexpr unsigned SysTmpReg = 56;   ///< syscall-code scratch
inline constexpr unsigned SysTmp2Reg = 57;  ///< syscall-code scratch
inline constexpr unsigned HeapReg = 58;     ///< bump-allocation pointer
inline constexpr unsigned HeapEndReg = 59;  ///< heap limit
inline constexpr unsigned StackReg = 60;    ///< stack pointer (descending)
inline constexpr unsigned LinkReg = 61;     ///< call return address
inline constexpr unsigned Tmp2Reg = 62;     ///< assembler/codegen scratch
inline constexpr unsigned TmpReg = 63;      ///< assembler/codegen scratch

} // namespace abi
} // namespace silver

#endif // SILVER_ISA_ABI_H
