//===- isa/DecodeCache.h - Predecoded instruction cache --------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decode cache for the Silver interpreters: each instruction word is
/// decoded once per address into a dense DecodedInsn entry, and the hot
/// run loops (isa::run, machine::MachineSem, cpu::checkIsaRtl) execute
/// from the cached entry instead of re-running fetch-decode every step.
/// This removes the double decode the reference loop performs (isHalted
/// decodes PC, then step decodes it again) — the halt self-jump test
/// becomes a cached flag.
///
/// Correctness contract: an entry is valid for address A only while the
/// word at A is unchanged.  Every path that can write instruction memory
/// must call invalidate(Addr, Size):
///
///  - the interpreter's StoreMEM/StoreMEMByte (self-modifying code —
///    the paper's startup code patches itself),
///  - the machine-sem FFI interference oracle, which writes the syscall
///    id, stdin length, output buffer, and FFI byte-array spans directly
///    into memory (machine/MachineSem.cpp),
///  - any out-of-band mutation of MachineState::Memory (tests, image
///    patching); use invalidateAll() when the touched range is unknown.
///
/// Under that contract, executing from the cache is observationally
/// identical to the reference fetch-decode-execute semantics; the
/// dedicated self-modifying-code tests (tests/isa/DecodeCacheTest.cpp)
/// and the differential fuzzer hold the two in agreement.
///
/// The entry keeps the Instruction unpacked (a packed 8-byte encoding
/// was measured ~35% slower in the hot loop — the per-step unpack costs
/// more than the smaller footprint saves).  The cache is paged (4 KiB
/// code pages, 1024 instruction slots) and filled lazily, so its
/// footprint follows the program's code locality, not the 16 MiB
/// address space.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_DECODECACHE_H
#define SILVER_ISA_DECODECACHE_H

#include "isa/Encoding.h"
#include "isa/MachineState.h"

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace silver {
namespace isa {

/// One predecoded instruction slot.
struct DecodedInsn {
  enum State : uint8_t {
    Empty = 0,   ///< never decoded (or invalidated)
    Decoded = 1, ///< I is the decode of the word at this address
    Illegal = 2, ///< the word at this address does not decode
  };
  Instruction I;
  uint8_t St = Empty;
  /// Cached Instruction::isSelfJump() — the paper's is_halted predicate
  /// reduced to one flag test on the hot path.
  bool SelfJump = false;
};

class DecodeCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Invalidations = 0; ///< entries dropped, not invalidate() calls
  };

  /// Entry for word-aligned, in-range \p Pc; decodes and fills the slot
  /// on first use.  The caller has already validated alignment and range
  /// (the run loops check PC before the lookup).
  const DecodedInsn &lookup(const MachineState &State, Word Pc) {
    DecodedInsn &E = slot(Pc);
    if (E.St != DecodedInsn::Empty) {
      ++S.Hits;
      return E;
    }
    ++S.Misses;
    Result<Instruction> Decoded = decode(State.readWord(Pc));
    if (!Decoded) {
      E.St = DecodedInsn::Illegal;
      E.SelfJump = false;
      return E;
    }
    E.I = *Decoded;
    E.St = DecodedInsn::Decoded;
    E.SelfJump = E.I.isSelfJump();
    return E;
  }

  /// Drops every entry whose instruction word overlaps the byte range
  /// [Addr, Addr+Size).  Cheap when the range is cold: pages that were
  /// never decoded are skipped wholesale.
  void invalidate(Word Addr, Word Size) {
    if (Size == 0)
      return;
    // A write to byte Addr affects the instruction slot at Addr & ~3;
    // the end is exclusive.
    Word First = Addr & ~Word(3);
    Word Last = Addr + (Size - 1); // inclusive; avoids Addr+Size overflow
    for (Word A = First;;) {
      size_t PageIdx = A >> PageShift;
      if (PageIdx >= Pages.size() || !Pages[PageIdx]) {
        // Skip to the next page boundary.
        Word NextPage = (A | PageMask) + 1;
        if (NextPage == 0 || NextPage > Last)
          break;
        A = NextPage;
        continue;
      }
      DecodedInsn &E = Pages[PageIdx]->Slots[(A & PageMask) >> 2];
      if (E.St != DecodedInsn::Empty) {
        E.St = DecodedInsn::Empty;
        ++S.Invalidations;
      }
      if (A + 4 < 4 || A + 4 > Last) // overflow or past the range
        break;
      A += 4;
    }
  }

  /// Forgets everything (use when memory changed in unknown ways).
  void invalidateAll() {
    for (std::unique_ptr<Page> &P : Pages)
      if (P)
        for (DecodedInsn &E : P->Slots) {
          if (E.St != DecodedInsn::Empty)
            ++S.Invalidations;
          E.St = DecodedInsn::Empty;
        }
  }

  const Stats &stats() const { return S; }

  /// Invokes \p Fn with the base address of every page that holds at
  /// least one decoded slot.  The JIT backend uses this to re-derive its
  /// store-guard page set after an interpreter-delegated run filled the
  /// cache behind its back (isa/jit/Jit.h).
  template <class Fn> void forEachCachedPage(Fn &&F) const {
    for (size_t PageIdx = 0; PageIdx != Pages.size(); ++PageIdx) {
      if (!Pages[PageIdx])
        continue;
      for (const DecodedInsn &E : Pages[PageIdx]->Slots)
        if (E.St != DecodedInsn::Empty) {
          F(static_cast<Word>(PageIdx) << PageShift);
          break;
        }
    }
  }

  /// 4 KiB code pages; fixed by the invalidation contract shared with
  /// the JIT's store-guard map.
  static constexpr unsigned PageShift = 12;
  static constexpr Word PageMask = (Word(1) << PageShift) - 1;
  static constexpr size_t PageSlots = (size_t(1) << PageShift) / 4;

private:
  struct Page {
    std::array<DecodedInsn, PageSlots> Slots{};
  };

  DecodedInsn &slot(Word Pc) {
    size_t PageIdx = Pc >> PageShift;
    if (PageIdx >= Pages.size())
      Pages.resize(PageIdx + 1);
    if (!Pages[PageIdx])
      Pages[PageIdx] = std::make_unique<Page>();
    return Pages[PageIdx]->Slots[(Pc & PageMask) >> 2];
  }

  std::vector<std::unique_ptr<Page>> Pages;
  Stats S;
};

} // namespace isa
} // namespace silver

#endif // SILVER_ISA_DECODECACHE_H
