//===- isa/Effects.cpp - Static per-instruction effect metadata -------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "isa/Effects.h"

using namespace silver;
using namespace silver::isa;

bool silver::isa::funcWritesFlags(Func F) {
  return F == Func::Add || F == Func::AddCarry || F == Func::Sub;
}

bool silver::isa::funcReadsFlags(Func F) {
  return F == Func::AddCarry || F == Func::Carry || F == Func::Overflow;
}

EffectInfo silver::isa::effectsOf(const Instruction &I) {
  EffectInfo E;
  auto Def = [&](unsigned R) { E.RegWrites |= uint64_t(1) << R; };
  auto Use = [&](const Operand &Op) {
    if (!Op.IsImm)
      E.RegReads |= uint64_t(1) << Op.Value;
  };
  auto Alu = [&](Func F) {
    E.WritesFlags = funcWritesFlags(F);
    E.ReadsFlags = funcReadsFlags(F);
  };
  switch (I.Op) {
  case Opcode::Normal:
    Def(I.WReg);
    Use(I.A);
    Use(I.B);
    Alu(I.F);
    break;
  case Opcode::Shift:
    Def(I.WReg);
    Use(I.A);
    Use(I.B);
    break;
  case Opcode::LoadMEM:
  case Opcode::LoadMEMByte:
    Def(I.WReg);
    Use(I.A);
    E.Mem = MemAccessKind::Read;
    E.MemSize = I.Op == Opcode::LoadMEM ? 4 : 1;
    break;
  case Opcode::StoreMEM:
  case Opcode::StoreMEMByte:
    Use(I.A);
    Use(I.B);
    E.Mem = MemAccessKind::Write;
    E.MemSize = I.Op == Opcode::StoreMEM ? 4 : 1;
    break;
  case Opcode::LoadConstant:
    Def(I.WReg);
    break;
  case Opcode::LoadUpperConstant:
    Def(I.WReg);
    E.RegReads |= uint64_t(1) << I.WReg; // merges into the low bits
    break;
  case Opcode::Jump:
    Def(I.WReg); // the link value, even when it is discarded via r63
    Use(I.A);
    Alu(I.F);
    E.IsControl = true;
    break;
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNotZero:
    Use(I.A);
    Use(I.B);
    Alu(I.F);
    E.IsControl = true;
    break;
  case Opcode::Interrupt:
    E.IsIo = true;
    break;
  case Opcode::In:
    Def(I.WReg);
    E.IsIo = true;
    break;
  case Opcode::Out:
    Use(I.A);
    E.IsIo = true;
    break;
  }
  return E;
}
