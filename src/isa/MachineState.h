//===- isa/MachineState.h - Silver ISA machine state -----------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Silver ISA machine state (paper §4.1): memory (bytes), a 64-entry
/// register file, the program counter, carry and overflow flags, and a
/// trace of IO events.  The paper models memory as a total function from
/// addresses to bytes; we use a flat byte array of configurable size and
/// treat out-of-range accesses as errors (the machine-sem layer turns
/// these into Fail behaviours, which compiled programs never exhibit).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_MACHINESTATE_H
#define SILVER_ISA_MACHINESTATE_H

#include "isa/Instruction.h"
#include "support/Bits.h"

#include <array>
#include <cstdint>
#include <vector>

namespace silver {
namespace isa {

/// One observable IO event.  In the paper's ISA semantics the Interrupt
/// instruction "silently records the current state of memory by pushing it
/// onto the trace of IO events"; snapshotting all of memory per event is
/// impractical in a simulator, so the environment (see IsaEnv) extracts
/// the observable bytes — for the Silver system-call convention, the
/// output-buffer region — and those are what the trace stores.
struct IoEvent {
  enum class Kind : uint8_t { Interrupt, Output };
  Kind K = Kind::Interrupt;
  Word Value = 0;              ///< Out instruction payload
  std::vector<uint8_t> Bytes;  ///< environment-extracted observable bytes
};

/// The Silver machine state.
class MachineState {
public:
  /// Creates a state with \p MemBytes bytes of zeroed memory, all
  /// registers zero, PC zero, and clear flags.
  explicit MachineState(size_t MemBytes = DefaultMemBytes)
      : Memory(MemBytes, 0) {
    Regs.fill(0);
  }

  /// Default memory size: 16 MiB, comfortably holding the paper's memory
  /// layout (Figure 2) with its ~5 MB stdin region.
  static constexpr size_t DefaultMemBytes = 16u << 20;

  std::array<Word, NumRegs> Regs;
  Word PC = 0;
  bool CarryFlag = false;
  bool OverflowFlag = false;
  std::vector<uint8_t> Memory;
  std::vector<IoEvent> IoEvents;
  /// Last value written by an Out instruction (the data-out port).
  Word DataOut = 0;

  size_t memSize() const { return Memory.size(); }
  bool inRange(Word Addr, Word Size) const {
    return Addr <= Memory.size() && Size <= Memory.size() - Addr;
  }

  /// Little-endian 32-bit read; \p Addr must be in range and word-aligned
  /// (callers check, the interpreter reports errors for violations).
  Word readWord(Word Addr) const {
    return static_cast<Word>(Memory[Addr]) |
           (static_cast<Word>(Memory[Addr + 1]) << 8) |
           (static_cast<Word>(Memory[Addr + 2]) << 16) |
           (static_cast<Word>(Memory[Addr + 3]) << 24);
  }

  /// Little-endian 32-bit write.
  void writeWord(Word Addr, Word Value) {
    Memory[Addr] = static_cast<uint8_t>(Value);
    Memory[Addr + 1] = static_cast<uint8_t>(Value >> 8);
    Memory[Addr + 2] = static_cast<uint8_t>(Value >> 16);
    Memory[Addr + 3] = static_cast<uint8_t>(Value >> 24);
  }

  uint8_t readByte(Word Addr) const { return Memory[Addr]; }
  void writeByte(Word Addr, uint8_t Value) { Memory[Addr] = Value; }

  /// Reads \p Len bytes starting at \p Addr (must be in range).
  std::vector<uint8_t> readBytes(Word Addr, Word Len) const {
    return std::vector<uint8_t>(Memory.begin() + Addr,
                                Memory.begin() + Addr + Len);
  }

  /// Writes a byte span starting at \p Addr (must be in range).
  void writeBytes(Word Addr, const std::vector<uint8_t> &Bytes) {
    for (size_t I = 0; I != Bytes.size(); ++I)
      Memory[Addr + I] = Bytes[I];
  }

  /// Value of a register-or-immediate operand in this state.
  Word operandValue(Operand Op) const {
    return Op.IsImm ? Op.immValue() : Regs[Op.Value];
  }

  /// ISA-visible equality: registers, PC, flags and memory.  IO traces are
  /// compared separately (they live at different abstraction levels in the
  /// cross-layer checks, mirroring the paper's ag32_eq_* relation family).
  bool isaVisibleEquals(const MachineState &O) const {
    return Regs == O.Regs && PC == O.PC && CarryFlag == O.CarryFlag &&
           OverflowFlag == O.OverflowFlag && Memory == O.Memory;
  }
};

} // namespace isa
} // namespace silver

#endif // SILVER_ISA_MACHINESTATE_H
