//===- isa/Interp.cpp - The Silver ISA next-state function ----------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "isa/Interp.h"

#include "isa/Abi.h"
#include "isa/DecodeCache.h"

using namespace silver;
using namespace silver::isa;

IsaEnv::~IsaEnv() = default;

std::vector<uint8_t> IsaEnv::onInterrupt(MachineState &) { return {}; }

Word IsaEnv::inputWord(MachineState &) { return 0; }

void IsaEnv::onOutput(MachineState &, Word) {}

IsaEnv &silver::isa::nullEnv() {
  static IsaEnv Env;
  return Env;
}

#if SILVER_FAULT_INJECTION
bool silver::isa::fault::InvertAddCarry = false;
#endif

AluResult silver::isa::evalAlu(Func F, Word A, Word B, bool CarryIn,
                               bool OverflowIn) {
  AluResult R;
  switch (F) {
  case Func::Add: {
    uint64_t Wide = uint64_t(A) + uint64_t(B);
    R.Value = static_cast<Word>(Wide);
    R.Carry = (Wide > 0xffffffffull) != fault::InvertAddCarry;
    R.Overflow = ((~(A ^ B)) & (A ^ R.Value)) >> 31;
    R.FlagsUpdated = true;
    break;
  }
  case Func::AddCarry: {
    uint64_t Wide = uint64_t(A) + uint64_t(B) + (CarryIn ? 1 : 0);
    R.Value = static_cast<Word>(Wide);
    R.Carry = Wide > 0xffffffffull;
    R.Overflow = ((~(A ^ B)) & (A ^ R.Value)) >> 31;
    R.FlagsUpdated = true;
    break;
  }
  case Func::Sub: {
    R.Value = A - B;
    // Carry here means "no borrow", matching a subtract implemented as
    // A + ~B + 1 on the adder.
    R.Carry = A >= B;
    R.Overflow = ((A ^ B) & (A ^ R.Value)) >> 31;
    R.FlagsUpdated = true;
    break;
  }
  case Func::Carry:
    R.Value = CarryIn ? 1 : 0;
    break;
  case Func::Overflow:
    R.Value = OverflowIn ? 1 : 0;
    break;
  case Func::Inc:
    R.Value = A + 1;
    break;
  case Func::Dec:
    R.Value = A - 1;
    break;
  case Func::Mul:
    R.Value = static_cast<Word>(uint64_t(A) * uint64_t(B));
    break;
  case Func::MulHigh:
    R.Value = static_cast<Word>((uint64_t(A) * uint64_t(B)) >> 32);
    break;
  case Func::And:
    R.Value = A & B;
    break;
  case Func::Or:
    R.Value = A | B;
    break;
  case Func::Xor:
    R.Value = A ^ B;
    break;
  case Func::Equal:
    R.Value = A == B ? 1 : 0;
    break;
  case Func::Less:
    R.Value = asSigned(A) < asSigned(B) ? 1 : 0;
    break;
  case Func::Lower:
    R.Value = A < B ? 1 : 0;
    break;
  case Func::Snd:
    R.Value = B;
    break;
  }
  return R;
}

Word silver::isa::evalShift(ShiftKind K, Word A, Word B) {
  unsigned Amount = B & 31;
  switch (K) {
  case ShiftKind::LogicalLeft:
    return A << Amount;
  case ShiftKind::LogicalRight:
    return A >> Amount;
  case ShiftKind::ArithRight:
    return static_cast<Word>(asSigned(A) >> Amount);
  case ShiftKind::RotateRight:
    return rotateRight(A, Amount);
  }
  return 0;
}

/// Applies the ALU and commits flag updates to the state.
static Word applyAlu(MachineState &State, Func F, Word A, Word B) {
  AluResult R =
      evalAlu(F, A, B, State.CarryFlag, State.OverflowFlag);
  if (R.FlagsUpdated) {
    State.CarryFlag = R.Carry;
    State.OverflowFlag = R.Overflow;
  }
  return R.Value;
}

namespace {

/// No-op emitter: stepImpl instantiated with it is the uninstrumented
/// interpreter, bit-identical to the pre-observability code.
struct NullEmit {
  void mem(Word, uint8_t, bool) {}
  void retire(Word, const Instruction &) {}
};

/// Observer-backed emitter.
struct ObsEmit {
  obs::Observer &Obs;
  uint64_t RetireIndex;
  void mem(Word Addr, uint8_t Size, bool IsWrite) {
    obs::MemEvent E;
    E.Addr = Addr;
    E.Size = Size;
    E.IsWrite = IsWrite;
    Obs.onMem(E);
  }
  void retire(Word Pc, const Instruction &I) {
    obs::RetireEvent E;
    E.Pc = Pc;
    E.Opcode = static_cast<uint8_t>(I.Op);
    E.Mnemonic = opcodeName(I.Op);
    E.Index = RetireIndex;
    Obs.onRetire(E);
  }
};

/// Store-invalidation policies for execImpl: the uncached interpreter
/// does nothing, the cached one drops the overwritten decode slots so
/// self-modifying code keeps matching the reference semantics.
struct NoInval {
  void operator()(Word, Word) {}
};
struct CacheInval {
  DecodeCache &Cache;
  void operator()(Word Addr, Word Size) { Cache.invalidate(Addr, Size); }
};

} // namespace

/// Executes the already-decoded \p I at State.PC.  The fetch-side checks
/// (PC range/alignment, decodability) are the caller's: stepImpl does
/// them per step, the predecoded loops get them from the cache entry.
template <class Emit, class Inval>
static StepResult execImpl(MachineState &State, IsaEnv &Env,
                           const Instruction &I, Emit &&E, Inval &&Inv) {
  StepResult Out;
  Word NextPC = State.PC + 4;

  switch (I.Op) {
  case Opcode::Normal:
    State.Regs[I.WReg] =
        applyAlu(State, I.F, State.operandValue(I.A),
                 State.operandValue(I.B));
    break;
  case Opcode::Shift:
    State.Regs[I.WReg] =
        evalShift(I.Sh, State.operandValue(I.A), State.operandValue(I.B));
    break;
  case Opcode::LoadMEM: {
    Word Addr = State.operandValue(I.A);
    if (!State.inRange(Addr, 4)) {
      Out.Fault = StepFault::MemOutOfRange;
      return Out;
    }
    if (!isAligned(Addr, 4)) {
      Out.Fault = StepFault::MemMisaligned;
      return Out;
    }
    E.mem(Addr, 4, /*IsWrite=*/false);
    State.Regs[I.WReg] = State.readWord(Addr);
    break;
  }
  case Opcode::LoadMEMByte: {
    Word Addr = State.operandValue(I.A);
    if (!State.inRange(Addr, 1)) {
      Out.Fault = StepFault::MemOutOfRange;
      return Out;
    }
    E.mem(Addr, 1, /*IsWrite=*/false);
    State.Regs[I.WReg] = State.readByte(Addr);
    break;
  }
  case Opcode::StoreMEM: {
    Word Addr = State.operandValue(I.B);
    if (!State.inRange(Addr, 4)) {
      Out.Fault = StepFault::MemOutOfRange;
      return Out;
    }
    if (!isAligned(Addr, 4)) {
      Out.Fault = StepFault::MemMisaligned;
      return Out;
    }
    E.mem(Addr, 4, /*IsWrite=*/true);
    State.writeWord(Addr, State.operandValue(I.A));
    Inv(Addr, 4);
    break;
  }
  case Opcode::StoreMEMByte: {
    Word Addr = State.operandValue(I.B);
    if (!State.inRange(Addr, 1)) {
      Out.Fault = StepFault::MemOutOfRange;
      return Out;
    }
    E.mem(Addr, 1, /*IsWrite=*/true);
    State.writeByte(Addr, static_cast<uint8_t>(State.operandValue(I.A)));
    Inv(Addr, 1);
    break;
  }
  case Opcode::LoadConstant: {
    Word V = I.Imm;
    State.Regs[I.WReg] = I.Negate ? (0u - V) : V;
    break;
  }
  case Opcode::LoadUpperConstant:
    State.Regs[I.WReg] =
        (I.Imm << 21) | (State.Regs[I.WReg] & 0x1fffff);
    break;
  case Opcode::Jump: {
    // The link register receives the return address; the new PC is
    // alu(func, PC, a): Add gives PC-relative, Snd gives absolute.
    Word Target = applyAlu(State, I.F, State.PC, State.operandValue(I.A));
    State.Regs[I.WReg] = State.PC + 4;
    NextPC = Target;
    break;
  }
  case Opcode::JumpIfZero: {
    Word Test = applyAlu(State, I.F, State.operandValue(I.A),
                         State.operandValue(I.B));
    if (Test == 0)
      NextPC = State.PC + static_cast<Word>(I.Offset) * 4;
    break;
  }
  case Opcode::JumpIfNotZero: {
    Word Test = applyAlu(State, I.F, State.operandValue(I.A),
                         State.operandValue(I.B));
    if (Test != 0)
      NextPC = State.PC + static_cast<Word>(I.Offset) * 4;
    break;
  }
  case Opcode::Interrupt: {
    IoEvent Event;
    Event.K = IoEvent::Kind::Interrupt;
    Event.Bytes = Env.onInterrupt(State);
    State.IoEvents.push_back(std::move(Event));
    break;
  }
  case Opcode::In:
    State.Regs[I.WReg] = Env.inputWord(State);
    break;
  case Opcode::Out: {
    Word V = State.operandValue(I.A);
    State.DataOut = V;
    Env.onOutput(State, V);
    IoEvent Event;
    Event.K = IoEvent::Kind::Output;
    Event.Value = V;
    State.IoEvents.push_back(std::move(Event));
    break;
  }
  }

  E.retire(State.PC, I);
  State.PC = NextPC;
  return Out;
}

/// Reference fetch-decode-execute step.
template <class Emit>
static StepResult stepImpl(MachineState &State, IsaEnv &Env, Emit &&E) {
  StepResult Out;
  if (!State.inRange(State.PC, 4)) {
    Out.Fault = StepFault::PcOutOfRange;
    return Out;
  }
  if (!isAligned(State.PC, 4)) {
    Out.Fault = StepFault::PcMisaligned;
    return Out;
  }
  Result<Instruction> Decoded = decode(State.readWord(State.PC));
  if (!Decoded) {
    Out.Fault = StepFault::IllegalInstruction;
    return Out;
  }
  return execImpl(State, Env, *Decoded, E, NoInval{});
}

/// Predecoded step: the fetch-side checks survive, but the decode comes
/// from the cache (and stores drop the slots they overwrite).
template <class Emit>
static StepResult cachedStepImpl(MachineState &State, IsaEnv &Env,
                                 DecodeCache &Cache, Emit &&E) {
  StepResult Out;
  if (!State.inRange(State.PC, 4)) {
    Out.Fault = StepFault::PcOutOfRange;
    return Out;
  }
  if (!isAligned(State.PC, 4)) {
    Out.Fault = StepFault::PcMisaligned;
    return Out;
  }
  const DecodedInsn &D = Cache.lookup(State, State.PC);
  if (D.St == DecodedInsn::Illegal) {
    Out.Fault = StepFault::IllegalInstruction;
    return Out;
  }
  return execImpl(State, Env, D.I, E, CacheInval{Cache});
}

StepResult silver::isa::step(MachineState &State, IsaEnv &Env) {
  NullEmit E;
  return stepImpl(State, Env, E);
}

StepResult silver::isa::step(MachineState &State, IsaEnv &Env,
                             obs::Observer &Obs, uint64_t RetireIndex) {
  ObsEmit E{Obs, RetireIndex};
  return stepImpl(State, Env, E);
}

StepResult silver::isa::step(MachineState &State, IsaEnv &Env,
                             DecodeCache &Cache) {
  NullEmit E;
  return cachedStepImpl(State, Env, Cache, E);
}

StepResult silver::isa::step(MachineState &State, IsaEnv &Env,
                             obs::Observer &Obs, uint64_t RetireIndex,
                             DecodeCache &Cache) {
  ObsEmit E{Obs, RetireIndex};
  return cachedStepImpl(State, Env, Cache, E);
}

template <class Emit>
static HaltOrStep stepUnlessHaltedImpl(MachineState &State, IsaEnv &Env,
                                       DecodeCache &Cache, Emit &&E) {
  HaltOrStep R;
  if (!State.inRange(State.PC, 4)) {
    R.S.Fault = StepFault::PcOutOfRange;
    return R;
  }
  if (!isAligned(State.PC, 4)) {
    R.S.Fault = StepFault::PcMisaligned;
    return R;
  }
  const DecodedInsn &D = Cache.lookup(State, State.PC);
  if (D.St == DecodedInsn::Illegal) {
    R.S.Fault = StepFault::IllegalInstruction;
    return R;
  }
  if (D.SelfJump) {
    R.Halted = true;
    return R;
  }
  R.S = execImpl(State, Env, D.I, E, CacheInval{Cache});
  return R;
}

HaltOrStep silver::isa::stepUnlessHalted(MachineState &State, IsaEnv &Env,
                                         DecodeCache &Cache) {
  NullEmit E;
  return stepUnlessHaltedImpl(State, Env, Cache, E);
}

HaltOrStep silver::isa::stepUnlessHalted(MachineState &State, IsaEnv &Env,
                                         obs::Observer &Obs,
                                         uint64_t RetireIndex,
                                         DecodeCache &Cache) {
  ObsEmit E{Obs, RetireIndex};
  return stepUnlessHaltedImpl(State, Env, Cache, E);
}

bool silver::isa::isHalted(const MachineState &State) {
  if (!State.inRange(State.PC, 4) || !isAligned(State.PC, 4))
    return false;
  Result<Instruction> Decoded = decode(State.readWord(State.PC));
  return Decoded && Decoded->isSelfJump();
}

bool silver::isa::isHalted(const MachineState &State, DecodeCache &Cache) {
  if (!State.inRange(State.PC, 4) || !isAligned(State.PC, 4))
    return false;
  return Cache.lookup(State, State.PC).SelfJump;
}

RunResult silver::isa::run(MachineState &State, IsaEnv &Env,
                           uint64_t MaxSteps) {
  RunResult R;
  while (R.Steps < MaxSteps) {
    if (isHalted(State)) {
      R.Halted = true;
      return R;
    }
    StepResult S = step(State, Env);
    if (!S.ok()) {
      R.Fault = S.Fault;
      return R;
    }
    ++R.Steps;
  }
  return R;
}

RunResult silver::isa::run(MachineState &State, IsaEnv &Env,
                           uint64_t MaxSteps, DecodeCache &Cache) {
  // The reference loop above fetches and decodes PC twice per iteration
  // (isHalted, then step).  Here both collapse into one cache lookup; on
  // a hit the loop body is check-flag-and-execute.
  RunResult R;
  NullEmit E;
  while (R.Steps < MaxSteps) {
    if (!State.inRange(State.PC, 4) || !isAligned(State.PC, 4)) {
      // Not a halt; take the reference step to report the exact fault.
      StepResult S = step(State, Env);
      R.Fault = S.Fault;
      return R;
    }
    const DecodedInsn &D = Cache.lookup(State, State.PC);
    if (D.St == DecodedInsn::Illegal) {
      R.Fault = StepFault::IllegalInstruction;
      return R;
    }
    if (D.SelfJump) {
      R.Halted = true;
      return R;
    }
    StepResult S = execImpl(State, Env, D.I, E, CacheInval{Cache});
    if (!S.ok()) {
      R.Fault = S.Fault;
      return R;
    }
    ++R.Steps;
  }
  return R;
}

RunStopResult silver::isa::runUntilPc(MachineState &State, IsaEnv &Env,
                                      uint64_t MaxSteps, Word StopPc,
                                      DecodeCache &Cache) {
  RunStopResult R;
  NullEmit E;
  while (R.Steps < MaxSteps) {
    if (State.PC == StopPc) {
      R.AtStopPc = true;
      return R;
    }
    if (!State.inRange(State.PC, 4) || !isAligned(State.PC, 4)) {
      StepResult S = step(State, Env);
      R.Fault = S.Fault;
      return R;
    }
    const DecodedInsn &D = Cache.lookup(State, State.PC);
    if (D.St == DecodedInsn::Illegal) {
      R.Fault = StepFault::IllegalInstruction;
      return R;
    }
    if (D.SelfJump) {
      R.Halted = true;
      return R;
    }
    StepResult S = execImpl(State, Env, D.I, E, CacheInval{Cache});
    if (!S.ok()) {
      R.Fault = S.Fault;
      return R;
    }
    ++R.Steps;
  }
  return R;
}

RunResult silver::isa::run(MachineState &State, IsaEnv &Env,
                           uint64_t MaxSteps, ObsHooks &Hooks) {
  DecodeCache Cache;
  return run(State, Env, MaxSteps, Hooks, Cache);
}

RunResult silver::isa::run(MachineState &State, IsaEnv &Env,
                           uint64_t MaxSteps, ObsHooks &Hooks,
                           DecodeCache &Cache) {
  if (!Hooks.Obs)
    return run(State, Env, MaxSteps, Cache);

  obs::Observer &Obs = *Hooks.Obs;
  RunResult R;
  while (R.Steps < MaxSteps) {
    if (isHalted(State, Cache)) {
      R.Halted = true;
      break;
    }
    if (Hooks.FfiEntryPc && !Hooks.InFfi && State.PC == Hooks.FfiEntryPc) {
      Hooks.InFfi = true;
      Hooks.FfiIndex = State.Regs[abi::FfiIndexReg];
      obs::FfiEvent E;
      E.Index = Hooks.FfiIndex;
      E.Entry = true;
      Obs.onFfi(E);
    }
    ObsEmit Em{Obs, Hooks.RetireIndexBase + R.Steps};
    StepResult S = cachedStepImpl(State, Env, Cache, Em);
    if (!S.ok()) {
      R.Fault = S.Fault;
      break;
    }
    ++R.Steps;
    if (Hooks.InFfi && (State.PC < Hooks.FfiRegionBegin ||
                        State.PC >= Hooks.FfiRegionEnd)) {
      Hooks.InFfi = false;
      obs::FfiEvent E;
      E.Index = Hooks.FfiIndex;
      E.Entry = false;
      Obs.onFfi(E);
    }
  }
  Hooks.RetireIndexBase += R.Steps;
  return R;
}
