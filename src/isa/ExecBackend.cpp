//===- isa/ExecBackend.cpp - Pluggable ISA execution backends -------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "isa/ExecBackend.h"

using namespace silver;
using namespace silver::isa;

ExecBackend::~ExecBackend() = default;

std::unique_ptr<ExecBackend> silver::isa::makeInterpBackend() {
  return std::make_unique<InterpBackend>();
}
