//===- isa/ExecBackend.h - Pluggable ISA execution backends ----*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One interface over the step/run/runUntilPc/isHalted entry points of
/// the Silver ISA, so the layers above (machine::MachineSem, the
/// stack::Executor ISA session, cpu::checkIsaRtl) stop special-casing
/// the interpreter and can swap in the baseline JIT (isa/jit/Jit.h)
/// without touching their run loops.
///
/// The contract every backend implements is the reference semantics of
/// isa/Interp.h, bit for bit: identical step counts, identical faults,
/// identical MachineState after any budgeted run.  A backend owns
/// whatever derived execution state it needs (the interpreter's
/// DecodeCache, the JIT's compiled-block cache); invalidate() is the
/// single notification point for out-of-band memory writes — the
/// machine-sem FFI interference oracle, image patching, tests — and
/// subsumes the DecodeCache invalidation contract (DecodeCache.h).
///
/// Observed (observer-instrumented) runs are interpreter-exact by
/// definition: backends that execute translated code fall back to the
/// interpreter whenever an observer is attached, so event streams never
/// depend on the backend choice.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_EXECBACKEND_H
#define SILVER_ISA_EXECBACKEND_H

#include "isa/DecodeCache.h"
#include "isa/Interp.h"

#include <memory>

namespace silver {
namespace isa {

class ExecBackend {
public:
  virtual ~ExecBackend();

  /// Stable backend identifier ("interp", "jit") for stats and logs.
  virtual const char *name() const = 0;

  /// One step of the ISA semantics (reference-exact, including faults).
  virtual StepResult step(MachineState &State, IsaEnv &Env) = 0;

  /// Fused is_halted test and step (see isa::stepUnlessHalted).
  virtual HaltOrStep stepUnlessHalted(MachineState &State, IsaEnv &Env) = 0;

  /// Instrumented variant: emits mem/retire events to \p Obs.
  virtual HaltOrStep stepUnlessHalted(MachineState &State, IsaEnv &Env,
                                      obs::Observer &Obs,
                                      uint64_t RetireIndex) = 0;

  /// The paper's is_halted predicate.
  virtual bool isHalted(const MachineState &State) = 0;

  /// Runs until halt, fault, or \p MaxSteps instructions execute.
  virtual RunResult run(MachineState &State, IsaEnv &Env,
                        uint64_t MaxSteps) = 0;

  /// Instrumented run; with a null Hooks.Obs this is exactly run().
  virtual RunResult run(MachineState &State, IsaEnv &Env, uint64_t MaxSteps,
                        ObsHooks &Hooks) = 0;

  /// Runs, additionally stopping — before executing — whenever PC equals
  /// \p StopPc (the machine-sem FFI-boundary burst loop).
  virtual RunStopResult runUntilPc(MachineState &State, IsaEnv &Env,
                                   uint64_t MaxSteps, Word StopPc) = 0;

  /// Memory bytes [Addr, Addr+Size) changed behind the backend's back;
  /// drop every derived artifact (decoded slots, compiled blocks) that
  /// depends on them.
  virtual void invalidate(Word Addr, Word Size) = 0;

  /// Memory changed in unknown ways; forget everything derived.
  virtual void invalidateAll() = 0;

  /// Decode-cache statistics (all backends decode through one).
  virtual const DecodeCache::Stats &decodeStats() const = 0;
};

/// The reference backend: the predecoded interpreter of isa/Interp.h
/// over an owned DecodeCache.
class InterpBackend final : public ExecBackend {
public:
  const char *name() const override { return "interp"; }
  StepResult step(MachineState &State, IsaEnv &Env) override {
    return isa::step(State, Env, Cache);
  }
  HaltOrStep stepUnlessHalted(MachineState &State, IsaEnv &Env) override {
    return isa::stepUnlessHalted(State, Env, Cache);
  }
  HaltOrStep stepUnlessHalted(MachineState &State, IsaEnv &Env,
                              obs::Observer &Obs,
                              uint64_t RetireIndex) override {
    return isa::stepUnlessHalted(State, Env, Obs, RetireIndex, Cache);
  }
  bool isHalted(const MachineState &State) override {
    return isa::isHalted(State, Cache);
  }
  RunResult run(MachineState &State, IsaEnv &Env,
                uint64_t MaxSteps) override {
    return isa::run(State, Env, MaxSteps, Cache);
  }
  RunResult run(MachineState &State, IsaEnv &Env, uint64_t MaxSteps,
                ObsHooks &Hooks) override {
    return isa::run(State, Env, MaxSteps, Hooks, Cache);
  }
  RunStopResult runUntilPc(MachineState &State, IsaEnv &Env,
                           uint64_t MaxSteps, Word StopPc) override {
    return isa::runUntilPc(State, Env, MaxSteps, StopPc, Cache);
  }
  void invalidate(Word Addr, Word Size) override {
    Cache.invalidate(Addr, Size);
  }
  void invalidateAll() override { Cache.invalidateAll(); }
  const DecodeCache::Stats &decodeStats() const override {
    return Cache.stats();
  }

private:
  DecodeCache Cache;
};

/// Creates the interpreter backend.
std::unique_ptr<ExecBackend> makeInterpBackend();

} // namespace isa
} // namespace silver

#endif // SILVER_ISA_EXECBACKEND_H
