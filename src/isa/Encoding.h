//===- isa/Encoding.h - Silver instruction binary encoding ----*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary encoding of Silver instructions.  The paper fixes instruction
/// *semantics* (§4.1) but not bit layouts (those live in the L3 source);
/// this file is therefore the normative encoding for this reproduction.
///
/// All instructions are 32 bits.  Bits [31:28] hold the opcode (the
/// Opcode enumerator value).  Remaining fields, per opcode:
///
///   Normal            func[27:24] w[23:18] a[17:11] b[10:4]
///   Shift             kind[25:24] w[23:18] a[17:11] b[10:4]
///   LoadMEM           w[23:18] a[17:11]
///   LoadMEMByte       w[23:18] a[17:11]
///   StoreMEM          a[17:11] b[10:4]          (a = value, b = address)
///   StoreMEMByte      a[17:11] b[10:4]
///   LoadConstant      w[27:22] negate[21] imm[20:0]
///   LoadUpperConstant w[27:22] imm[10:0]
///   Jump              func[27:24] w[23:18] a[17:11]
///   JumpIfZero        func[27:24] offHi[23:18] a[17:11] b[10:4] offLo[3:0]
///   JumpIfNotZero     (same as JumpIfZero)
///   Interrupt         (no fields)
///   In                w[23:18]
///   Out               a[17:11]
///
/// An operand field a/b is 7 bits: bit 6 set means the low 6 bits are a
/// sign-extended immediate, clear means they index a register.  The
/// conditional-branch offset is a 10-bit signed *word* offset assembled
/// from offHi:offLo (new PC = PC + 4*offset when the condition holds).
///
/// Deviation from the paper: LoadConstant carries a 21-bit immediate and
/// LoadUpperConstant an 11-bit immediate (paper: 23+9).  Both schemes
/// partition the 32-bit word into a low part loadable by one instruction
/// and a high part loadable by a second; the assembler's load-immediate
/// pseudo-instruction hides the split.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ISA_ENCODING_H
#define SILVER_ISA_ENCODING_H

#include "isa/Instruction.h"
#include "support/Bits.h"
#include "support/Result.h"

namespace silver {
namespace isa {

/// Encodes \p I to its 32-bit binary form.  Asserts that field values are
/// in range (the assembler guarantees this for its output).
Word encode(const Instruction &I);

/// Decodes a 32-bit word.  Returns an error for the two reserved opcodes
/// and for out-of-range sub-fields; the machine treats such words as
/// illegal instructions.
Result<Instruction> decode(Word Encoded);

/// Number of valid opcodes (opcodes >= this value are reserved).
inline constexpr unsigned NumOpcodes = 14;

} // namespace isa
} // namespace silver

#endif // SILVER_ISA_ENCODING_H
