//===- hdl/Semantics.cpp - Operational semantics for the subset --------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "hdl/Semantics.h"

#include <cassert>
#include <set>

using namespace silver;
using namespace silver::hdl;

static uint64_t maskTo(unsigned Width, uint64_t Bits) {
  return Width >= 64 ? Bits : (Bits & ((uint64_t(1) << Width) - 1));
}

static int64_t asSignedVec(const VValue &V) {
  if (V.Width == 0)
    return 0;
  uint64_t Sign = uint64_t(1) << (V.Width - 1);
  uint64_t Bits = V.Bits;
  return static_cast<int64_t>((Bits ^ Sign) - Sign);
}

// --- evaluation --------------------------------------------------------------

namespace {

/// Read view during process execution: the process's blocking overlay in
/// front of the cycle-start state.
struct ReadView {
  const SimState &Base;
  const std::map<std::string, VValue> *Overlay = nullptr;

  const VValue *lookup(const std::string &Name) const {
    if (Overlay) {
      auto It = Overlay->find(Name);
      if (It != Overlay->end())
        return &It->second;
    }
    auto It = Base.Vars.find(Name);
    return It == Base.Vars.end() ? nullptr : &It->second;
  }
};

Result<VValue> eval(const VExp &E, const ReadView &View) {
  switch (E.Kind) {
  case VExpKind::ConstBool:
    return VValue::boolean(E.Bool);
  case VExpKind::ConstVec:
    return VValue::vec(E.Width, E.Bits);
  case VExpKind::Var: {
    const VValue *V = View.lookup(E.Name);
    if (!V)
      return Error("read of undeclared variable '" + E.Name + "'");
    return *V;
  }
  case VExpKind::MemRead: {
    const VValue *M = View.lookup(E.Name);
    if (!M || M->K != VValue::Kind::Mem)
      return Error("memory read of non-memory '" + E.Name + "'");
    Result<VValue> Idx = eval(*E.Args[0], View);
    if (!Idx)
      return Idx;
    if (Idx->Bits >= M->Elems.size())
      return Error("memory index out of range in '" + E.Name + "'");
    return VValue::vec(M->Width, M->Elems[Idx->Bits]);
  }
  case VExpKind::Binary: {
    Result<VValue> A = eval(*E.Args[0], View);
    if (!A)
      return A;
    Result<VValue> B = eval(*E.Args[1], View);
    if (!B)
      return B;
    unsigned W = A->Width;
    switch (E.BOp) {
    case BinaryOp::Add:
      return VValue::vec(W, maskTo(W, A->Bits + B->Bits));
    case BinaryOp::Sub:
      return VValue::vec(W, maskTo(W, A->Bits - B->Bits));
    case BinaryOp::Mul:
      return VValue::vec(W, maskTo(W, A->Bits * B->Bits));
    case BinaryOp::And:
      if (A->K == VValue::Kind::Bool)
        return VValue::boolean(A->B && B->B);
      return VValue::vec(W, A->Bits & B->Bits);
    case BinaryOp::Or:
      if (A->K == VValue::Kind::Bool)
        return VValue::boolean(A->B || B->B);
      return VValue::vec(W, A->Bits | B->Bits);
    case BinaryOp::Xor:
      if (A->K == VValue::Kind::Bool)
        return VValue::boolean(A->B != B->B);
      return VValue::vec(W, A->Bits ^ B->Bits);
    case BinaryOp::Eq:
      if (A->K == VValue::Kind::Bool)
        return VValue::boolean(A->B == B->B);
      return VValue::boolean(A->Bits == B->Bits);
    case BinaryOp::LtU:
      return VValue::boolean(A->Bits < B->Bits);
    case BinaryOp::LtS:
      return VValue::boolean(asSignedVec(*A) < asSignedVec(*B));
    case BinaryOp::Shl: {
      uint64_t Amount = B->Bits;
      if (Amount >= W)
        return VValue::vec(W, 0);
      return VValue::vec(W, maskTo(W, A->Bits << Amount));
    }
    case BinaryOp::ShrL: {
      uint64_t Amount = B->Bits;
      if (Amount >= W)
        return VValue::vec(W, 0);
      return VValue::vec(W, A->Bits >> Amount);
    }
    case BinaryOp::ShrA: {
      uint64_t Amount = B->Bits;
      int64_t S = asSignedVec(*A);
      if (Amount >= W)
        return VValue::vec(W, S < 0 ? ~uint64_t(0) : 0);
      return VValue::vec(W, static_cast<uint64_t>(S >> Amount));
    }
    }
    return Error("unhandled binary operator");
  }
  case VExpKind::Unary: {
    Result<VValue> A = eval(*E.Args[0], View);
    if (!A)
      return A;
    if (E.UOp == UnaryOp::Not) {
      if (A->K == VValue::Kind::Bool)
        return VValue::boolean(!A->B);
      return VValue::vec(A->Width, ~A->Bits);
    }
    return VValue::boolean(A->K == VValue::Kind::Bool ? !A->B
                                                      : A->Bits == 0);
  }
  case VExpKind::Slice: {
    Result<VValue> A = eval(*E.Args[0], View);
    if (!A)
      return A;
    unsigned W = E.Hi - E.Lo + 1;
    return VValue::vec(W, A->Bits >> E.Lo);
  }
  case VExpKind::Concat: {
    Result<VValue> Hi = eval(*E.Args[0], View);
    if (!Hi)
      return Hi;
    Result<VValue> Lo = eval(*E.Args[1], View);
    if (!Lo)
      return Lo;
    return VValue::vec(Hi->Width + Lo->Width,
                       (Hi->Bits << Lo->Width) | Lo->Bits);
  }
  case VExpKind::Cond: {
    Result<VValue> C = eval(*E.Args[0], View);
    if (!C)
      return C;
    bool Taken = C->K == VValue::Kind::Bool ? C->B : C->Bits != 0;
    return eval(*E.Args[Taken ? 1 : 2], View);
  }
  case VExpKind::ZeroExt: {
    Result<VValue> A = eval(*E.Args[0], View);
    if (!A)
      return A;
    return VValue::vec(E.Width, maskTo(E.Width, A->Bits));
  }
  case VExpKind::SignExt: {
    Result<VValue> A = eval(*E.Args[0], View);
    if (!A)
      return A;
    return VValue::vec(E.Width,
                       maskTo(E.Width, static_cast<uint64_t>(asSignedVec(*A))));
  }
  case VExpKind::BoolToVec: {
    Result<VValue> A = eval(*E.Args[0], View);
    if (!A)
      return A;
    return VValue::vec(1, A->K == VValue::Kind::Bool ? (A->B ? 1 : 0)
                                                     : (A->Bits & 1));
  }
  case VExpKind::VecToBool: {
    Result<VValue> A = eval(*E.Args[0], View);
    if (!A)
      return A;
    return VValue::boolean(A->Bits != 0);
  }
  }
  return Error("unhandled expression");
}

/// Pending non-blocking write.
struct NbWrite {
  std::string Name;
  bool IsMem = false;
  uint64_t Index = 0;
  VValue Value;
};

Result<void> execStmt(const VStmt &S, const SimState &Base,
                      std::map<std::string, VValue> &Overlay,
                      std::vector<NbWrite> &Queue) {
  ReadView View{Base, &Overlay};
  switch (S.Kind) {
  case VStmtKind::Block:
    for (const VStmtPtr &Sub : S.Stmts)
      if (Result<void> R = execStmt(*Sub, Base, Overlay, Queue); !R)
        return R;
    return {};
  case VStmtKind::If: {
    Result<VValue> C = eval(*S.Cond, View);
    if (!C)
      return C.error();
    bool Taken = C->K == VValue::Kind::Bool ? C->B : C->Bits != 0;
    if (Taken)
      return execStmt(*S.Then, Base, Overlay, Queue);
    if (S.Else)
      return execStmt(*S.Else, Base, Overlay, Queue);
    return {};
  }
  case VStmtKind::BlockingAssign: {
    Result<VValue> V = eval(*S.Rhs, View);
    if (!V)
      return V.error();
    Overlay[S.Lhs] = V.take();
    return {};
  }
  case VStmtKind::NonBlockingAssign: {
    Result<VValue> V = eval(*S.Rhs, View);
    if (!V)
      return V.error();
    NbWrite W;
    W.Name = S.Lhs;
    W.Value = V.take();
    Queue.push_back(std::move(W));
    return {};
  }
  case VStmtKind::MemWrite: {
    Result<VValue> Idx = eval(*S.Index, View);
    if (!Idx)
      return Idx.error();
    Result<VValue> V = eval(*S.Rhs, View);
    if (!V)
      return V.error();
    NbWrite W;
    W.Name = S.Lhs;
    W.IsMem = true;
    W.Index = Idx->Bits;
    W.Value = V.take();
    Queue.push_back(std::move(W));
    return {};
  }
  }
  return Error("unhandled statement");
}

} // namespace

Result<VValue> silver::hdl::evalExp(const VExp &E, const SimState &State) {
  ReadView View{State, nullptr};
  return eval(E, View);
}

SimState SimState::init(const VModule &M) {
  SimState S;
  auto Zero = [](const VType &T) {
    switch (T.K) {
    case VType::Kind::Bool:
      return VValue::boolean(false);
    case VType::Kind::Vec:
      return VValue::vec(T.Width, 0);
    case VType::Kind::Mem:
      return VValue::mem(T.Width, T.Depth);
    }
    return VValue::boolean(false);
  };
  for (const VPort &P : M.Ports)
    S.Vars[P.Name] = Zero(P.Type);
  for (const VDecl &D : M.Decls)
    S.Vars[D.Name] = Zero(D.Type);
  return S;
}

Result<void> silver::hdl::stepCycle(const VModule &M, SimState &State,
                                    const std::map<std::string, VValue> &In) {
  // Drive the input ports.
  for (const VPort &P : M.Ports) {
    if (P.D != VPort::Dir::Input)
      continue;
    auto It = In.find(P.Name);
    if (It == In.end())
      return Error("input port '" + P.Name + "' not driven");
    State.Vars[P.Name] = It->second;
  }

  // Run every process over the cycle-start state.
  std::vector<std::map<std::string, VValue>> Overlays;
  std::vector<NbWrite> Queue;
  Overlays.reserve(M.Processes.size());
  for (const VProcess &P : M.Processes) {
    Overlays.emplace_back();
    if (Result<void> R = execStmt(*P.Body, State, Overlays.back(), Queue);
        !R)
      return R;
  }

  // Commit: blocking overlays first (disjoint by non-interference), then
  // the non-blocking queue in program order (last write wins).
  for (const auto &Overlay : Overlays)
    for (const auto &[Name, Value] : Overlay)
      State.Vars[Name] = Value;
  for (NbWrite &W : Queue) {
    if (!W.IsMem) {
      State.Vars[W.Name] = std::move(W.Value);
      continue;
    }
    VValue &Mem = State.Vars[W.Name];
    if (Mem.K != VValue::Kind::Mem || W.Index >= Mem.Elems.size())
      return Error("memory write out of range in '" + W.Name + "'");
    Mem.Elems[W.Index] = W.Value.Bits;
  }
  return {};
}

// --- type checking -----------------------------------------------------------

namespace {

class Checker {
public:
  explicit Checker(const VModule &M) : M(M) {}

  Result<void> run();

private:
  const VModule &M;
  std::map<std::string, VType> Types;
  std::set<std::string> InputNames;

  Result<VType> typeOf(const VExp &E);
  Result<void> checkStmt(const VStmt &S, std::set<std::string> &BlockWr,
                         std::set<std::string> &NbWr);
};

Result<VType> Checker::typeOf(const VExp &E) {
  switch (E.Kind) {
  case VExpKind::ConstBool:
    return VType::boolean();
  case VExpKind::ConstVec:
    return VType::vec(E.Width);
  case VExpKind::Var: {
    auto It = Types.find(E.Name);
    if (It == Types.end())
      return Error("undeclared variable '" + E.Name + "'");
    if (It->second.K == VType::Kind::Mem)
      return Error("memory '" + E.Name + "' used as a plain variable");
    return It->second;
  }
  case VExpKind::MemRead: {
    auto It = Types.find(E.Name);
    if (It == Types.end() || It->second.K != VType::Kind::Mem)
      return Error("memory read of non-memory '" + E.Name + "'");
    Result<VType> Idx = typeOf(*E.Args[0]);
    if (!Idx)
      return Idx;
    if (Idx->K != VType::Kind::Vec)
      return Error("memory index must be a vector");
    return VType::vec(It->second.Width);
  }
  case VExpKind::Binary: {
    Result<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return A;
    Result<VType> B = typeOf(*E.Args[1]);
    if (!B)
      return B;
    bool BoolOk = E.BOp == BinaryOp::And || E.BOp == BinaryOp::Or ||
                  E.BOp == BinaryOp::Xor || E.BOp == BinaryOp::Eq;
    if (A->K == VType::Kind::Bool || B->K == VType::Kind::Bool) {
      if (!(A->K == VType::Kind::Bool && B->K == VType::Kind::Bool &&
            BoolOk))
        return Error("boolean operand in a vector operator");
      return E.BOp == BinaryOp::Eq ? VType::boolean() : *A;
    }
    bool ShiftOp = E.BOp == BinaryOp::Shl || E.BOp == BinaryOp::ShrL ||
                   E.BOp == BinaryOp::ShrA;
    if (!ShiftOp && A->Width != B->Width)
      return Error("width mismatch in binary operator: " +
                   std::to_string(A->Width) + " vs " +
                   std::to_string(B->Width));
    if (E.BOp == BinaryOp::Eq || E.BOp == BinaryOp::LtU ||
        E.BOp == BinaryOp::LtS)
      return VType::boolean();
    return *A;
  }
  case VExpKind::Unary: {
    Result<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return A;
    if (E.UOp == UnaryOp::LogicNot)
      return VType::boolean();
    return *A;
  }
  case VExpKind::Slice: {
    if (E.Args[0]->Kind != VExpKind::Var &&
        E.Args[0]->Kind != VExpKind::MemRead)
      return Error("slice base must be a variable (synthesisable subset)");
    Result<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return A;
    if (A->K != VType::Kind::Vec || E.Hi < E.Lo || E.Hi >= A->Width)
      return Error("bad slice bounds");
    return VType::vec(E.Hi - E.Lo + 1);
  }
  case VExpKind::Concat: {
    Result<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return A;
    Result<VType> B = typeOf(*E.Args[1]);
    if (!B)
      return B;
    if (A->K != VType::Kind::Vec || B->K != VType::Kind::Vec ||
        A->Width + B->Width > 64)
      return Error("bad concatenation");
    return VType::vec(A->Width + B->Width);
  }
  case VExpKind::Cond: {
    Result<VType> C = typeOf(*E.Args[0]);
    if (!C)
      return C;
    if (C->K != VType::Kind::Bool)
      return Error("condition must be boolean");
    Result<VType> T = typeOf(*E.Args[1]);
    if (!T)
      return T;
    Result<VType> F = typeOf(*E.Args[2]);
    if (!F)
      return F;
    if (!(*T == *F))
      return Error("conditional branches have different types");
    return *T;
  }
  case VExpKind::ZeroExt:
  case VExpKind::SignExt: {
    Result<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return A;
    if (A->K != VType::Kind::Vec || E.Width < A->Width || E.Width > 64)
      return Error("bad width extension");
    return VType::vec(E.Width);
  }
  case VExpKind::BoolToVec: {
    Result<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return A;
    if (A->K != VType::Kind::Bool)
      return Error("bool-to-vec of a non-boolean");
    return VType::vec(1);
  }
  case VExpKind::VecToBool: {
    Result<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return A;
    if (A->K != VType::Kind::Vec)
      return Error("vec-to-bool of a non-vector");
    return VType::boolean();
  }
  }
  return Error("unhandled expression kind");
}

Result<void> Checker::checkStmt(const VStmt &S,
                                std::set<std::string> &BlockWr,
                                std::set<std::string> &NbWr) {
  switch (S.Kind) {
  case VStmtKind::Block:
    for (const VStmtPtr &Sub : S.Stmts)
      if (Result<void> R = checkStmt(*Sub, BlockWr, NbWr); !R)
        return R;
    return {};
  case VStmtKind::If: {
    Result<VType> C = typeOf(*S.Cond);
    if (!C)
      return C.error();
    if (Result<void> R = checkStmt(*S.Then, BlockWr, NbWr); !R)
      return R;
    if (S.Else)
      return checkStmt(*S.Else, BlockWr, NbWr);
    return {};
  }
  case VStmtKind::BlockingAssign:
  case VStmtKind::NonBlockingAssign: {
    auto It = Types.find(S.Lhs);
    if (It == Types.end())
      return Error("assignment to undeclared '" + S.Lhs + "'");
    if (InputNames.count(S.Lhs))
      return Error("assignment to input port '" + S.Lhs + "'");
    if (It->second.K == VType::Kind::Mem)
      return Error("whole-memory assignment to '" + S.Lhs + "'");
    Result<VType> RT = typeOf(*S.Rhs);
    if (!RT)
      return RT.error();
    if (!(*RT == It->second))
      return Error("assignment type mismatch on '" + S.Lhs + "'");
    (S.Kind == VStmtKind::BlockingAssign ? BlockWr : NbWr).insert(S.Lhs);
    return {};
  }
  case VStmtKind::MemWrite: {
    auto It = Types.find(S.Lhs);
    if (It == Types.end() || It->second.K != VType::Kind::Mem)
      return Error("memory write to non-memory '" + S.Lhs + "'");
    Result<VType> Idx = typeOf(*S.Index);
    if (!Idx)
      return Idx.error();
    Result<VType> RT = typeOf(*S.Rhs);
    if (!RT)
      return RT.error();
    if (RT->K != VType::Kind::Vec || RT->Width != It->second.Width)
      return Error("memory write width mismatch on '" + S.Lhs + "'");
    NbWr.insert(S.Lhs);
    return {};
  }
  }
  return Error("unhandled statement kind");
}

Result<void> Checker::run() {
  for (const VPort &P : M.Ports) {
    if (P.Type.K == VType::Kind::Mem)
      return Error("memory-typed port '" + P.Name + "'");
    if (!Types.emplace(P.Name, P.Type).second)
      return Error("duplicate port '" + P.Name + "'");
    if (P.D == VPort::Dir::Input)
      InputNames.insert(P.Name);
  }
  for (const VDecl &D : M.Decls)
    if (!Types.emplace(D.Name, D.Type).second)
      return Error("duplicate declaration '" + D.Name + "'");

  // Per-process write sets for the non-interference obligation.
  std::vector<std::set<std::string>> BlockWr(M.Processes.size());
  std::vector<std::set<std::string>> NbWr(M.Processes.size());
  for (size_t I = 0; I != M.Processes.size(); ++I)
    if (Result<void> R =
            checkStmt(*M.Processes[I].Body, BlockWr[I], NbWr[I]);
        !R)
      return R;

  // Non-interference: a variable written by one process (blocking or
  // non-blocking) must not be written by another; blocking-written
  // variables are process-local intermediates.
  std::map<std::string, size_t> Writer;
  for (size_t I = 0; I != M.Processes.size(); ++I) {
    for (const auto &Set : {BlockWr[I], NbWr[I]}) {
      for (const std::string &Name : Set) {
        auto [It, Inserted] = Writer.emplace(Name, I);
        if (!Inserted && It->second != I)
          return Error("variable '" + Name +
                       "' written by two processes (interference)");
      }
    }
  }
  return {};
}

} // namespace

Result<void> silver::hdl::typeCheck(const VModule &M) {
  return Checker(M).run();
}
