//===- hdl/Verilog.cpp - Deeply embedded Verilog subset ----------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "hdl/Verilog.h"

using namespace silver;
using namespace silver::hdl;

VExpPtr VExp::clone() const {
  auto E = std::make_unique<VExp>();
  E->Kind = Kind;
  E->Bool = Bool;
  E->Width = Width;
  E->Bits = Bits;
  E->Name = Name;
  E->BOp = BOp;
  E->UOp = UOp;
  E->Hi = Hi;
  E->Lo = Lo;
  for (const VExpPtr &A : Args)
    E->Args.push_back(A->clone());
  return E;
}

VExpPtr silver::hdl::vConstBool(bool B) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::ConstBool;
  E->Bool = B;
  return E;
}

VExpPtr silver::hdl::vConstVec(unsigned Width, uint64_t Bits) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::ConstVec;
  E->Width = Width;
  E->Bits = Width >= 64 ? Bits : (Bits & ((uint64_t(1) << Width) - 1));
  return E;
}

VExpPtr silver::hdl::vVar(std::string Name) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::Var;
  E->Name = std::move(Name);
  return E;
}

VExpPtr silver::hdl::vMemRead(std::string Name, VExpPtr Index) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::MemRead;
  E->Name = std::move(Name);
  E->Args.push_back(std::move(Index));
  return E;
}

VExpPtr silver::hdl::vBinary(BinaryOp Op, VExpPtr A, VExpPtr B) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::Binary;
  E->BOp = Op;
  E->Args.push_back(std::move(A));
  E->Args.push_back(std::move(B));
  return E;
}

VExpPtr silver::hdl::vUnary(UnaryOp Op, VExpPtr A) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::Unary;
  E->UOp = Op;
  E->Args.push_back(std::move(A));
  return E;
}

VExpPtr silver::hdl::vSlice(VExpPtr A, unsigned Hi, unsigned Lo) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::Slice;
  E->Hi = Hi;
  E->Lo = Lo;
  E->Args.push_back(std::move(A));
  return E;
}

VExpPtr silver::hdl::vConcat(VExpPtr Hi, VExpPtr Lo) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::Concat;
  E->Args.push_back(std::move(Hi));
  E->Args.push_back(std::move(Lo));
  return E;
}

VExpPtr silver::hdl::vCond(VExpPtr C, VExpPtr T, VExpPtr F) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::Cond;
  E->Args.push_back(std::move(C));
  E->Args.push_back(std::move(T));
  E->Args.push_back(std::move(F));
  return E;
}

VExpPtr silver::hdl::vZeroExt(unsigned Width, VExpPtr A) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::ZeroExt;
  E->Width = Width;
  E->Args.push_back(std::move(A));
  return E;
}

VExpPtr silver::hdl::vSignExt(unsigned Width, VExpPtr A) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::SignExt;
  E->Width = Width;
  E->Args.push_back(std::move(A));
  return E;
}

VExpPtr silver::hdl::vBoolToVec(VExpPtr A) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::BoolToVec;
  E->Width = 1;
  E->Args.push_back(std::move(A));
  return E;
}

VExpPtr silver::hdl::vVecToBool(VExpPtr A) {
  auto E = std::make_unique<VExp>();
  E->Kind = VExpKind::VecToBool;
  E->Args.push_back(std::move(A));
  return E;
}

VStmtPtr silver::hdl::vBlock(std::vector<VStmtPtr> Stmts) {
  auto S = std::make_unique<VStmt>();
  S->Kind = VStmtKind::Block;
  S->Stmts = std::move(Stmts);
  return S;
}

VStmtPtr silver::hdl::vIf(VExpPtr Cond, VStmtPtr Then, VStmtPtr Else) {
  auto S = std::make_unique<VStmt>();
  S->Kind = VStmtKind::If;
  S->Cond = std::move(Cond);
  S->Then = std::move(Then);
  S->Else = std::move(Else);
  return S;
}

VStmtPtr silver::hdl::vBlocking(std::string Lhs, VExpPtr Rhs) {
  auto S = std::make_unique<VStmt>();
  S->Kind = VStmtKind::BlockingAssign;
  S->Lhs = std::move(Lhs);
  S->Rhs = std::move(Rhs);
  return S;
}

VStmtPtr silver::hdl::vNonBlocking(std::string Lhs, VExpPtr Rhs) {
  auto S = std::make_unique<VStmt>();
  S->Kind = VStmtKind::NonBlockingAssign;
  S->Lhs = std::move(Lhs);
  S->Rhs = std::move(Rhs);
  return S;
}

VStmtPtr silver::hdl::vMemWrite(std::string Mem, VExpPtr Index,
                                VExpPtr Rhs) {
  auto S = std::make_unique<VStmt>();
  S->Kind = VStmtKind::MemWrite;
  S->Lhs = std::move(Mem);
  S->Index = std::move(Index);
  S->Rhs = std::move(Rhs);
  return S;
}
