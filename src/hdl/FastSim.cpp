//===- hdl/FastSim.cpp - Compiled simulator for the subset -------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "hdl/FastSim.h"

#include <cassert>

using namespace silver;
using namespace silver::hdl;

namespace {

uint64_t maskTo(unsigned Width, uint64_t Bits) {
  return Width >= 64 ? Bits : (Bits & ((uint64_t(1) << Width) - 1));
}

int64_t toSigned(unsigned Width, uint64_t Bits) {
  if (Width == 0)
    return 0;
  uint64_t Sign = uint64_t(1) << (Width - 1);
  return static_cast<int64_t>((Bits ^ Sign) - Sign);
}

/// Compiled expression node.  Booleans are width-0 slots holding 0/1.
struct FExp {
  VExpKind Kind;
  BinaryOp BOp = BinaryOp::Add;
  UnaryOp UOp = UnaryOp::Not;
  unsigned Width = 0; ///< vec width of the *result* (0 for bool)
  unsigned ArgWidth = 0; ///< width of Args[0] (signed ops, slicing)
  unsigned Hi = 0, Lo = 0;
  uint64_t Bits = 0;
  int Slot = -1;  ///< Var slot / MemRead memory id
  std::vector<FExp> Args;
};

struct FStmt {
  VStmtKind Kind;
  FExp Cond;             // If
  std::vector<FStmt> Stmts; // Block / If's then+else in Stmts[0],[1]
  bool HasElse = false;
  int Slot = -1;         // assign target slot / memory id
  FExp Index;            // MemWrite
  FExp Rhs;
};

struct NbEntry {
  int Slot;
  bool IsMem;
  uint64_t Index;
  uint64_t Value;
};

} // namespace

struct FastSim::Impl {
  const VModule *Module = nullptr;
  std::map<std::string, int> ScalarSlots; // bool/vec variables
  std::map<std::string, int> MemSlots;
  std::vector<unsigned> SlotWidths;       // 0 = bool
  std::vector<uint64_t> Values;
  std::vector<std::vector<uint64_t>> Mems;
  std::vector<unsigned> MemWidths;
  std::vector<std::pair<std::string, int>> InputSlots;
  std::vector<std::vector<FStmt>> Processes;

  // Observability: cycle ticks for the unified trace/counter subsystem.
  obs::Observer *CycleObs = nullptr;
  uint64_t Cycle = 0;

  /// With a single process there are no later processes to shield from
  /// blocking writes, so they commit in place and the undo/commit logs
  /// stay empty (the rtl-generated module is one process; this removes
  /// two log appends per assignment from the Verilog-level hot path).
  bool DirectBlocking = false;

  // Per-cycle scratch.
  std::vector<NbEntry> Queue;
  std::vector<std::pair<int, uint64_t>> UndoLog;
  std::vector<std::pair<int, uint64_t>> CommitLog;
  std::vector<uint64_t> DenseScratch; // map-step compatibility buffer

  Result<FExp> compileExp(const VExp &E);
  Result<FStmt> compileStmt(const VStmt &S);
  uint64_t eval(const FExp &E);
  void exec(const FStmt &S);
};

Result<FExp> FastSim::Impl::compileExp(const VExp &E) {
  FExp F;
  F.Kind = E.Kind;
  F.BOp = E.BOp;
  F.UOp = E.UOp;
  F.Hi = E.Hi;
  F.Lo = E.Lo;
  switch (E.Kind) {
  case VExpKind::ConstBool:
    F.Bits = E.Bool ? 1 : 0;
    F.Width = 0;
    return F;
  case VExpKind::ConstVec:
    F.Bits = E.Bits;
    F.Width = E.Width;
    return F;
  case VExpKind::Var: {
    auto It = ScalarSlots.find(E.Name);
    if (It == ScalarSlots.end())
      return Error("fastsim: unknown variable '" + E.Name + "'");
    F.Slot = It->second;
    F.Width = SlotWidths[F.Slot];
    return F;
  }
  case VExpKind::MemRead: {
    auto It = MemSlots.find(E.Name);
    if (It == MemSlots.end())
      return Error("fastsim: unknown memory '" + E.Name + "'");
    F.Slot = It->second;
    F.Width = MemWidths[F.Slot];
    Result<FExp> Idx = compileExp(*E.Args[0]);
    if (!Idx)
      return Idx;
    F.Args.push_back(Idx.take());
    return F;
  }
  default:
    break;
  }
  for (const VExpPtr &A : E.Args) {
    Result<FExp> C = compileExp(*A);
    if (!C)
      return C;
    F.Args.push_back(C.take());
  }
  switch (E.Kind) {
  case VExpKind::Binary:
    F.ArgWidth = F.Args[0].Width;
    switch (E.BOp) {
    case BinaryOp::Eq:
    case BinaryOp::LtU:
    case BinaryOp::LtS:
      F.Width = 0; // bool
      break;
    default:
      F.Width = F.Args[0].Width;
      break;
    }
    break;
  case VExpKind::Unary:
    F.Width = E.UOp == UnaryOp::LogicNot ? 0 : F.Args[0].Width;
    F.ArgWidth = F.Args[0].Width;
    break;
  case VExpKind::Slice:
    F.Width = E.Hi - E.Lo + 1;
    break;
  case VExpKind::Concat:
    F.Width = F.Args[0].Width + F.Args[1].Width;
    F.ArgWidth = F.Args[1].Width; // low part width for the shift
    break;
  case VExpKind::Cond:
    F.Width = F.Args[1].Width;
    break;
  case VExpKind::ZeroExt:
  case VExpKind::SignExt:
    F.Width = E.Width;
    F.ArgWidth = F.Args[0].Width;
    break;
  case VExpKind::BoolToVec:
    F.Width = 1;
    break;
  case VExpKind::VecToBool:
    F.Width = 0;
    break;
  default:
    break;
  }
  return F;
}

Result<FStmt> FastSim::Impl::compileStmt(const VStmt &S) {
  FStmt F;
  F.Kind = S.Kind;
  switch (S.Kind) {
  case VStmtKind::Block:
    for (const VStmtPtr &Sub : S.Stmts) {
      Result<FStmt> C = compileStmt(*Sub);
      if (!C)
        return C;
      F.Stmts.push_back(C.take());
    }
    return F;
  case VStmtKind::If: {
    Result<FExp> C = compileExp(*S.Cond);
    if (!C)
      return C.error();
    F.Cond = C.take();
    Result<FStmt> T = compileStmt(*S.Then);
    if (!T)
      return T;
    F.Stmts.push_back(T.take());
    if (S.Else) {
      Result<FStmt> E = compileStmt(*S.Else);
      if (!E)
        return E;
      F.Stmts.push_back(E.take());
      F.HasElse = true;
    }
    return F;
  }
  case VStmtKind::BlockingAssign:
  case VStmtKind::NonBlockingAssign: {
    auto It = ScalarSlots.find(S.Lhs);
    if (It == ScalarSlots.end())
      return Error("fastsim: assignment to unknown '" + S.Lhs + "'");
    F.Slot = It->second;
    Result<FExp> R = compileExp(*S.Rhs);
    if (!R)
      return R.error();
    F.Rhs = R.take();
    return F;
  }
  case VStmtKind::MemWrite: {
    auto It = MemSlots.find(S.Lhs);
    if (It == MemSlots.end())
      return Error("fastsim: write to unknown memory '" + S.Lhs + "'");
    F.Slot = It->second;
    Result<FExp> Idx = compileExp(*S.Index);
    if (!Idx)
      return Idx.error();
    F.Index = Idx.take();
    Result<FExp> R = compileExp(*S.Rhs);
    if (!R)
      return R.error();
    F.Rhs = R.take();
    return F;
  }
  }
  return Error("fastsim: unhandled statement");
}

uint64_t FastSim::Impl::eval(const FExp &E) {
  switch (E.Kind) {
  case VExpKind::ConstBool:
  case VExpKind::ConstVec:
    return E.Bits;
  case VExpKind::Var:
    return Values[E.Slot];
  case VExpKind::MemRead: {
    uint64_t Idx = eval(E.Args[0]);
    const auto &M = Mems[E.Slot];
    return Idx < M.size() ? M[Idx] : 0;
  }
  case VExpKind::Binary: {
    uint64_t A = eval(E.Args[0]);
    uint64_t B = eval(E.Args[1]);
    unsigned W = E.ArgWidth;
    switch (E.BOp) {
    case BinaryOp::Add:
      return maskTo(W, A + B);
    case BinaryOp::Sub:
      return maskTo(W, A - B);
    case BinaryOp::Mul:
      return maskTo(W, A * B);
    case BinaryOp::And:
      return A & B;
    case BinaryOp::Or:
      return A | B;
    case BinaryOp::Xor:
      return A ^ B;
    case BinaryOp::Eq:
      return A == B;
    case BinaryOp::LtU:
      return A < B;
    case BinaryOp::LtS:
      return toSigned(W, A) < toSigned(W, B);
    case BinaryOp::Shl:
      return B >= W ? 0 : maskTo(W, A << B);
    case BinaryOp::ShrL:
      return B >= W ? 0 : (A >> B);
    case BinaryOp::ShrA: {
      int64_t S = toSigned(W, A);
      if (B >= W)
        return maskTo(W, S < 0 ? ~uint64_t(0) : 0);
      return maskTo(W, static_cast<uint64_t>(S >> B));
    }
    }
    return 0;
  }
  case VExpKind::Unary: {
    uint64_t A = eval(E.Args[0]);
    if (E.UOp == UnaryOp::Not)
      return E.Width == 0 ? (A ? 0 : 1) : maskTo(E.Width, ~A);
    return A == 0;
  }
  case VExpKind::Slice:
    return maskTo(E.Width, eval(E.Args[0]) >> E.Lo);
  case VExpKind::Concat:
    return (eval(E.Args[0]) << E.ArgWidth) | eval(E.Args[1]);
  case VExpKind::Cond:
    return eval(E.Args[0]) ? eval(E.Args[1]) : eval(E.Args[2]);
  case VExpKind::ZeroExt:
    return eval(E.Args[0]);
  case VExpKind::SignExt:
    return maskTo(E.Width,
                  static_cast<uint64_t>(toSigned(E.ArgWidth,
                                                 eval(E.Args[0]))));
  case VExpKind::BoolToVec:
    return eval(E.Args[0]) & 1;
  case VExpKind::VecToBool:
    return eval(E.Args[0]) != 0;
  }
  return 0;
}

void FastSim::Impl::exec(const FStmt &S) {
  switch (S.Kind) {
  case VStmtKind::Block:
    for (const FStmt &Sub : S.Stmts)
      exec(Sub);
    return;
  case VStmtKind::If:
    if (eval(S.Cond))
      exec(S.Stmts[0]);
    else if (S.HasElse)
      exec(S.Stmts[1]);
    return;
  case VStmtKind::BlockingAssign: {
    uint64_t V = eval(S.Rhs);
    if (!DirectBlocking) {
      UndoLog.emplace_back(S.Slot, Values[S.Slot]);
      CommitLog.emplace_back(S.Slot, V);
    }
    Values[S.Slot] = V;
    return;
  }
  case VStmtKind::NonBlockingAssign:
    Queue.push_back({S.Slot, false, 0, eval(S.Rhs)});
    return;
  case VStmtKind::MemWrite:
    Queue.push_back({S.Slot, true, eval(S.Index), eval(S.Rhs)});
    return;
  }
}

ModuleSim::~ModuleSim() = default;

FastSim::FastSim() : I(std::make_unique<Impl>()) {}
FastSim::~FastSim() = default;

Result<std::unique_ptr<FastSim>> FastSim::compile(const VModule &M) {
  if (Result<void> T = typeCheck(M); !T)
    return T.error();

  std::unique_ptr<FastSim> Sim(new FastSim());
  Impl &I = *Sim->I;
  I.Module = &M;

  auto Declare = [&I](const std::string &Name, const VType &T) {
    if (T.K == VType::Kind::Mem) {
      int Id = static_cast<int>(I.Mems.size());
      I.Mems.emplace_back(T.Depth, 0);
      I.MemWidths.push_back(T.Width);
      I.MemSlots[Name] = Id;
      return;
    }
    int Slot = static_cast<int>(I.Values.size());
    I.Values.push_back(0);
    I.SlotWidths.push_back(T.K == VType::Kind::Bool ? 0 : T.Width);
    I.ScalarSlots[Name] = Slot;
  };
  for (const VPort &P : M.Ports) {
    Declare(P.Name, P.Type);
    if (P.D == VPort::Dir::Input)
      I.InputSlots.emplace_back(P.Name, I.ScalarSlots[P.Name]);
  }
  for (const VDecl &D : M.Decls)
    Declare(D.Name, D.Type);

  for (const VProcess &P : M.Processes) {
    Result<FStmt> Body = I.compileStmt(*P.Body);
    if (!Body)
      return Body.error();
    I.Processes.push_back({Body.take()});
  }
  I.DirectBlocking = I.Processes.size() <= 1;
  return Sim;
}

Result<void> FastSim::step(const std::map<std::string, uint64_t> &Inputs) {
  Impl &Im = *I;
  Im.DenseScratch.resize(Im.InputSlots.size());
  for (size_t K = 0; K != Im.InputSlots.size(); ++K) {
    auto It = Inputs.find(Im.InputSlots[K].first);
    if (It == Inputs.end())
      return Error("fastsim: input '" + Im.InputSlots[K].first +
                   "' not driven");
    Im.DenseScratch[K] = It->second;
  }
  return stepDense(Im.DenseScratch.data(), Im.DenseScratch.size());
}

Result<void> FastSim::stepDense(const uint64_t *Inputs, size_t Count) {
  Impl &Im = *I;
  if (Count != Im.InputSlots.size())
    return Error("fastsim: dense input frame has " + std::to_string(Count) +
                 " values, module has " +
                 std::to_string(Im.InputSlots.size()) + " input ports");
  for (size_t K = 0; K != Count; ++K) {
    int Slot = Im.InputSlots[K].second;
    unsigned W = Im.SlotWidths[Slot];
    Im.Values[Slot] = maskTo(W == 0 ? 1 : W, Inputs[K]);
  }
  Im.Queue.clear();
  Im.CommitLog.clear();
  for (const auto &Proc : Im.Processes) {
    Im.UndoLog.clear();
    for (const FStmt &S : Proc)
      Im.exec(S);
    // Later processes must see the cycle-start state: undo the blocking
    // writes (they are re-applied from the commit log afterwards).
    for (auto It = Im.UndoLog.rbegin(); It != Im.UndoLog.rend(); ++It)
      Im.Values[It->first] = It->second;
  }
  // Commit: blocking results first, then the non-blocking queue.
  for (const auto &[Slot, V] : Im.CommitLog)
    Im.Values[Slot] = V;
  for (const NbEntry &W : Im.Queue) {
    if (!W.IsMem) {
      Im.Values[W.Slot] = W.Value;
      continue;
    }
    auto &Mem = Im.Mems[W.Slot];
    if (W.Index >= Mem.size())
      return Error("fastsim: memory write out of range");
    Mem[W.Index] = W.Value;
  }
  if (Im.CycleObs)
    Im.CycleObs->onCycle(Im.Cycle);
  ++Im.Cycle;
  return {};
}

void FastSim::setCycleObserver(obs::Observer *O) { I->CycleObs = O; }

size_t FastSim::numInputs() const { return I->InputSlots.size(); }

const std::string &FastSim::inputName(size_t Ordinal) const {
  assert(Ordinal < I->InputSlots.size() && "input ordinal out of range");
  return I->InputSlots[Ordinal].first;
}

int FastSim::slotOf(const std::string &Name) const {
  auto It = I->ScalarSlots.find(Name);
  return It == I->ScalarSlots.end() ? -1 : It->second;
}

int FastSim::memSlotOf(const std::string &Name) const {
  auto It = I->MemSlots.find(Name);
  return It == I->MemSlots.end() ? -1 : It->second;
}

uint64_t FastSim::valueOf(int Slot) const {
  assert(Slot >= 0 && static_cast<size_t>(Slot) < I->Values.size());
  return I->Values[Slot];
}

void FastSim::setValue(int Slot, uint64_t Bits) {
  assert(Slot >= 0 && static_cast<size_t>(Slot) < I->Values.size());
  unsigned W = I->SlotWidths[Slot];
  I->Values[Slot] = maskTo(W == 0 ? 1 : W, Bits);
}

const std::vector<uint64_t> &FastSim::memOf(int MemSlot) const {
  assert(MemSlot >= 0 && static_cast<size_t>(MemSlot) < I->Mems.size());
  return I->Mems[MemSlot];
}

std::vector<uint64_t> &FastSim::memOf(int MemSlot) {
  assert(MemSlot >= 0 && static_cast<size_t>(MemSlot) < I->Mems.size());
  return I->Mems[MemSlot];
}

uint64_t FastSim::valueOf(const std::string &Name) const {
  auto It = I->ScalarSlots.find(Name);
  assert(It != I->ScalarSlots.end() && "unknown variable");
  return I->Values[It->second];
}

void FastSim::setValue(const std::string &Name, uint64_t Bits) {
  auto It = I->ScalarSlots.find(Name);
  assert(It != I->ScalarSlots.end() && "unknown variable");
  unsigned W = I->SlotWidths[It->second];
  I->Values[It->second] = maskTo(W == 0 ? 1 : W, Bits);
}

const std::vector<uint64_t> &FastSim::memOf(const std::string &Name) const {
  auto It = I->MemSlots.find(Name);
  assert(It != I->MemSlots.end() && "unknown memory");
  return I->Mems[It->second];
}

std::vector<uint64_t> &FastSim::memOf(const std::string &Name) {
  auto It = I->MemSlots.find(Name);
  assert(It != I->MemSlots.end() && "unknown memory");
  return I->Mems[It->second];
}

SimState FastSim::exportState(const VModule &M) const {
  SimState S = SimState::init(M);
  for (auto &[Name, Value] : S.Vars) {
    if (Value.K == VValue::Kind::Mem) {
      Value.Elems = memOf(Name);
      continue;
    }
    auto It = I->ScalarSlots.find(Name);
    if (It == I->ScalarSlots.end())
      continue;
    if (Value.K == VValue::Kind::Bool)
      Value.B = I->Values[It->second] != 0;
    else
      Value.Bits = maskTo(Value.Width, I->Values[It->second]);
  }
  return S;
}
