//===- hdl/Verilog.h - Deeply embedded Verilog subset -----------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deeply embedded AST for the synthesisable Verilog subset of the
/// paper (§3): a flattened module whose processes are all `always_ff @
/// (posedge clk)` blocks over a common clock, with blocking assignments
/// for intra-process intermediates and non-blocking assignments for
/// state.  Values are booleans and bit vectors (HOL words map to Verilog
/// arrays); register files are memories (`logic [w-1:0] m [0:d-1]`).
/// X values are not modelled (the paper quantifies over them in the
/// logic; here uninitialised state is zero and the type checker rejects
/// reads of undeclared variables), and there are no multiple drivers (Z).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_HDL_VERILOG_H
#define SILVER_HDL_VERILOG_H

#include "support/Result.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace silver {
namespace hdl {

/// A runtime value: a bool, a bit vector (width <= 64), or a memory.
struct VValue {
  enum class Kind : uint8_t { Bool, Vec, Mem } K = Kind::Bool;
  bool B = false;
  unsigned Width = 0;   ///< Vec width / Mem element width
  uint64_t Bits = 0;    ///< Vec payload (masked to Width)
  std::vector<uint64_t> Elems; ///< Mem payload

  static VValue boolean(bool V) {
    VValue R;
    R.K = Kind::Bool;
    R.B = V;
    return R;
  }
  static VValue vec(unsigned Width, uint64_t Bits) {
    VValue R;
    R.K = Kind::Vec;
    R.Width = Width;
    R.Bits = Width >= 64 ? Bits : (Bits & ((uint64_t(1) << Width) - 1));
    return R;
  }
  static VValue mem(unsigned ElemWidth, size_t Depth) {
    VValue R;
    R.K = Kind::Mem;
    R.Width = ElemWidth;
    R.Elems.assign(Depth, 0);
    return R;
  }

  bool operator==(const VValue &O) const {
    return K == O.K && B == O.B && Width == O.Width && Bits == O.Bits &&
           Elems == O.Elems;
  }
};

/// Variable types for declarations and checking.
struct VType {
  enum class Kind : uint8_t { Bool, Vec, Mem } K = Kind::Bool;
  unsigned Width = 0;
  size_t Depth = 0;

  static VType boolean() { return {Kind::Bool, 0, 0}; }
  static VType vec(unsigned Width) { return {Kind::Vec, Width, 0}; }
  static VType mem(unsigned Width, size_t Depth) {
    return {Kind::Mem, Width, Depth};
  }
  bool operator==(const VType &O) const {
    return K == O.K && Width == O.Width && Depth == O.Depth;
  }
};

// --- expressions ------------------------------------------------------------

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  And,
  Or,
  Xor,
  Eq,
  LtU,   ///< unsigned <
  LtS,   ///< signed < ($signed compare)
  Shl,
  ShrL,  ///< logical >>
  ShrA,  ///< arithmetic >>> (with $signed lhs)
};

enum class UnaryOp : uint8_t {
  Not,     ///< bitwise ~
  LogicNot ///< !
};

struct VExp;
using VExpPtr = std::unique_ptr<VExp>;

enum class VExpKind : uint8_t {
  ConstBool,
  ConstVec,
  Var,     ///< bool or vec variable
  MemRead, ///< m[idx]
  Binary,
  Unary,
  Slice,   ///< e[hi:lo]
  Concat,  ///< {a, b}
  Cond,    ///< c ? t : e
  ZeroExt, ///< width extension (w2w)
  SignExt,
  BoolToVec, ///< 1-bit vector from a bool (e.g. {31'd0, b})
  VecToBool, ///< e != 0 used as a condition? restricted: 1-bit vec -> bool
};

struct VExp {
  VExpKind Kind = VExpKind::ConstBool;
  bool Bool = false;          // ConstBool
  unsigned Width = 0;         // ConstVec / ZeroExt / SignExt target width
  uint64_t Bits = 0;          // ConstVec
  std::string Name;           // Var / MemRead
  BinaryOp BOp = BinaryOp::Add;
  UnaryOp UOp = UnaryOp::Not;
  unsigned Hi = 0, Lo = 0;    // Slice
  std::vector<VExpPtr> Args;

  VExpPtr clone() const;
};

VExpPtr vConstBool(bool B);
VExpPtr vConstVec(unsigned Width, uint64_t Bits);
VExpPtr vVar(std::string Name);
VExpPtr vMemRead(std::string Name, VExpPtr Index);
VExpPtr vBinary(BinaryOp Op, VExpPtr A, VExpPtr B);
VExpPtr vUnary(UnaryOp Op, VExpPtr A);
VExpPtr vSlice(VExpPtr A, unsigned Hi, unsigned Lo);
VExpPtr vConcat(VExpPtr Hi, VExpPtr Lo);
VExpPtr vCond(VExpPtr C, VExpPtr T, VExpPtr E);
VExpPtr vZeroExt(unsigned Width, VExpPtr A);
VExpPtr vSignExt(unsigned Width, VExpPtr A);
VExpPtr vBoolToVec(VExpPtr A);
VExpPtr vVecToBool(VExpPtr A);

// --- statements -------------------------------------------------------------

struct VStmt;
using VStmtPtr = std::unique_ptr<VStmt>;

enum class VStmtKind : uint8_t {
  Block,
  If,
  BlockingAssign,    ///< x = e      (intra-process intermediate)
  NonBlockingAssign, ///< x <= e     (state update, queued)
  MemWrite,          ///< m[i] <= e  (queued)
};

struct VStmt {
  VStmtKind Kind = VStmtKind::Block;
  std::vector<VStmtPtr> Stmts; // Block
  VExpPtr Cond;                // If
  VStmtPtr Then, Else;         // If (Else may be null)
  std::string Lhs;             // assigns / MemWrite target
  VExpPtr Index;               // MemWrite
  VExpPtr Rhs;
};

VStmtPtr vBlock(std::vector<VStmtPtr> Stmts);
VStmtPtr vIf(VExpPtr Cond, VStmtPtr Then, VStmtPtr Else);
VStmtPtr vBlocking(std::string Lhs, VExpPtr Rhs);
VStmtPtr vNonBlocking(std::string Lhs, VExpPtr Rhs);
VStmtPtr vMemWrite(std::string Mem, VExpPtr Index, VExpPtr Rhs);

// --- module -----------------------------------------------------------------

struct VPort {
  enum class Dir : uint8_t { Input, Output } D = Dir::Input;
  std::string Name;
  VType Type; ///< Bool or Vec
};

struct VDecl {
  std::string Name;
  VType Type;
};

/// One always_ff @(posedge clk) process.
struct VProcess {
  std::string Comment; ///< printed above the block
  VStmtPtr Body;
};

struct VModule {
  std::string Name = "top";
  std::vector<VPort> Ports;
  std::vector<VDecl> Decls;
  std::vector<VProcess> Processes;
};

} // namespace hdl
} // namespace silver

#endif // SILVER_HDL_VERILOG_H
