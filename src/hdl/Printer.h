//===- hdl/Printer.h - Synthesisable Verilog pretty-printer -----*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints the deeply embedded AST as synthesisable SystemVerilog — the
/// artefact the paper feeds to Vivado.  Printing faithfulness is part of
/// the paper's TCB discussion (§8); here the printer is exercised by
/// golden tests and kept deliberately simple (fully parenthesised
/// expressions, one construct per line).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_HDL_PRINTER_H
#define SILVER_HDL_PRINTER_H

#include "hdl/Verilog.h"

#include <string>

namespace silver {
namespace hdl {

/// Renders the module as SystemVerilog text.
std::string printModule(const VModule &M);

/// Renders one expression (tests).
std::string printExp(const VExp &E);

} // namespace hdl
} // namespace silver

#endif // SILVER_HDL_PRINTER_H
