//===- hdl/FastSim.h - Compiled simulator for the subset --------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiled simulator for the Verilog subset: elaborates a type-checked
/// module once (variables become slot indices, expressions become
/// annotated trees) and then steps cycles without any name lookups —
/// the Verilator to Semantics.h's event-driven reference.  Tests check it
/// cycle-for-cycle against hdl::stepCycle; everything fast (the Verilog
/// execution level of the stack, the layer benchmarks) runs on it.
///
/// Semantics preserved from the reference: per cycle, every process reads
/// the cycle-start state plus its own blocking writes (implemented with
/// an undo log so later processes never see them), and all non-blocking
/// writes commit at the end of the cycle.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_HDL_FASTSIM_H
#define SILVER_HDL_FASTSIM_H

#include "hdl/ModuleSim.h"
#include "hdl/Semantics.h"
#include "obs/Observer.h"

#include <memory>

namespace silver {
namespace hdl {

class FastSim final : public ModuleSim {
public:
  /// Elaborates \p M; fails when typeCheck fails.  The module must stay
  /// alive for the lifetime of the simulator.
  static Result<std::unique_ptr<FastSim>> compile(const VModule &M);
  ~FastSim() override;

  /// One clock cycle; \p Inputs holds one value per input port in port
  /// declaration order (see numInputs / inputName).  This is the hot
  /// path: no name lookups, no per-cycle allocation.
  Result<void> stepDense(const uint64_t *Inputs, size_t Count) override;

  /// One clock cycle with named inputs; \p Inputs must cover every input
  /// port.  Thin compatibility wrapper over stepDense.
  Result<void> step(const std::map<std::string, uint64_t> &Inputs) override;

  /// Number of input ports (the stepDense frame size).
  size_t numInputs() const override;
  /// Name of input port \p Ordinal (stepDense frame order).
  const std::string &inputName(size_t Ordinal) const override;

  /// Slot handle of a scalar (bool/vec) variable, or -1 when unknown.
  /// Slots are stable for the lifetime of the simulator; resolve once,
  /// then use the indexed accessors below on hot paths.
  int slotOf(const std::string &Name) const override;
  /// Memory handle of a memory variable, or -1 when unknown.
  int memSlotOf(const std::string &Name) const override;
  /// Indexed accessors (hot-path counterparts of the named ones).
  uint64_t valueOf(int Slot) const override;
  void setValue(int Slot, uint64_t Bits) override;
  const std::vector<uint64_t> &memOf(int MemSlot) const override;
  std::vector<uint64_t> &memOf(int MemSlot) override;

  /// Ticks obs::Observer::onCycle once per step (the Verilog level's
  /// clock source for the unified trace/counter subsystem).  Null
  /// detaches; not owned.
  void setCycleObserver(obs::Observer *O) override;

  /// Current value of a scalar (bool/vec) variable's bits.
  uint64_t valueOf(const std::string &Name) const override;
  /// Current contents of a memory variable.
  const std::vector<uint64_t> &memOf(const std::string &Name) const override;
  /// Writes a scalar variable (for priming architectural state).
  void setValue(const std::string &Name, uint64_t Bits) override;
  /// Mutable memory access (for priming).
  std::vector<uint64_t> &memOf(const std::string &Name) override;

  /// Exports the state in reference-simulator form (for the agreement
  /// tests against hdl::stepCycle).
  SimState exportState(const VModule &M) const override;

  struct Impl;

private:
  FastSim();
  std::unique_ptr<Impl> I;
};

} // namespace hdl
} // namespace silver

#endif // SILVER_HDL_FASTSIM_H
