//===- hdl/ModuleSim.h - Common module-simulator interface ------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract surface shared by every whole-module simulator for the
/// Verilog subset: the AST-walking FastSim (FastSim.h) and the
/// ahead-of-time compiled backend (compile/CompiledSim.h).  Clients that
/// bind slots once and then step cycles — the Verilog execution level of
/// the stack, the layer benchmarks, the differential tests — are written
/// against this interface, so swapping the backend never changes the
/// binding code.
///
/// The contract is FastSim's: slots are stable integer handles resolved
/// by name once, stepDense takes one masked value per input port in
/// declaration order, and setCycleObserver ticks obs::Observer::onCycle
/// once per cycle.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_HDL_MODULESIM_H
#define SILVER_HDL_MODULESIM_H

#include "hdl/Semantics.h"
#include "obs/Observer.h"

#include <map>
#include <string>
#include <vector>

namespace silver {
namespace hdl {

class ModuleSim {
public:
  virtual ~ModuleSim();

  /// One clock cycle; \p Inputs holds one value per input port in port
  /// declaration order (see numInputs / inputName).
  virtual Result<void> stepDense(const uint64_t *Inputs, size_t Count) = 0;

  /// One clock cycle with named inputs; \p Inputs must cover every input
  /// port.  Compatibility wrapper over stepDense.
  virtual Result<void> step(const std::map<std::string, uint64_t> &Inputs) = 0;

  /// Number of input ports (the stepDense frame size).
  virtual size_t numInputs() const = 0;
  /// Name of input port \p Ordinal (stepDense frame order).
  virtual const std::string &inputName(size_t Ordinal) const = 0;

  /// Slot handle of a scalar (bool/vec) variable, or -1 when unknown.
  /// Slots are stable for the lifetime of the simulator; resolve once,
  /// then use the indexed accessors below on hot paths.
  virtual int slotOf(const std::string &Name) const = 0;
  /// Memory handle of a memory variable, or -1 when unknown.
  virtual int memSlotOf(const std::string &Name) const = 0;
  /// Indexed accessors (hot-path counterparts of the named ones).
  virtual uint64_t valueOf(int Slot) const = 0;
  virtual void setValue(int Slot, uint64_t Bits) = 0;
  virtual const std::vector<uint64_t> &memOf(int MemSlot) const = 0;
  virtual std::vector<uint64_t> &memOf(int MemSlot) = 0;

  /// Ticks obs::Observer::onCycle once per step.  Null detaches; not
  /// owned.
  virtual void setCycleObserver(obs::Observer *O) = 0;

  /// Current value of a scalar (bool/vec) variable's bits.
  virtual uint64_t valueOf(const std::string &Name) const = 0;
  /// Current contents of a memory variable.
  virtual const std::vector<uint64_t> &memOf(const std::string &Name) const = 0;
  /// Writes a scalar variable (for priming architectural state).
  virtual void setValue(const std::string &Name, uint64_t Bits) = 0;
  /// Mutable memory access (for priming).
  virtual std::vector<uint64_t> &memOf(const std::string &Name) = 0;

  /// Exports the state in reference-simulator form (for the agreement
  /// tests against hdl::stepCycle).
  virtual SimState exportState(const VModule &M) const = 0;
};

} // namespace hdl
} // namespace silver

#endif // SILVER_HDL_MODULESIM_H
