//===- hdl/compile/Build.h - Host-compiler build driver ---------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a generated translation unit (Codegen.h) into a loaded shared
/// object: invoke the host C++ compiler, cache the artifact keyed by the
/// design hash, dlopen it, and verify the exported ABI version and
/// design hash before handing out the entry points.
///
/// Everything degrades: no usable host compiler (or SILVER_HDL_DISABLE
/// set) makes compiledSimAvailable() false, and the callers fall back to
/// the interpreting backend with a diagnostic — never an error.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_HDL_COMPILE_BUILD_H
#define SILVER_HDL_COMPILE_BUILD_H

#include "hdl/compile/Codegen.h"
#include "support/Result.h"

#include <memory>
#include <string>

namespace silver {
namespace hdl {

/// Knobs for the build; the defaults read the environment:
/// SILVER_HDL_CXX (then CXX, then "c++") picks the compiler and
/// SILVER_HDL_CACHE picks the artifact cache directory.
struct BuildOptions {
  std::string Compiler; ///< empty = environment / "c++"
  std::string CacheDir; ///< empty = environment / default cache dir
};

/// The artifact cache directory the defaulted BuildOptions resolve to:
/// $SILVER_HDL_CACHE, else $XDG_CACHE_HOME/silver-hdl, else
/// $HOME/.cache/silver-hdl, else /tmp/silver-hdl.
std::string defaultCacheDir();

/// True when a host C++ compiler answers and SILVER_HDL_DISABLE is not
/// set.  Probed once per process (per compiler choice) and cached.
bool compiledSimAvailable();

/// A dlopen'ed generated simulator: the resolved entry points plus the
/// owning handle.  Destroying the last shared_ptr dlclose()s.
class LoadedModule {
public:
  using CycleFn = int (*)(uint64_t *V, uint64_t *const *M);
  using BatchFn = int (*)(uint64_t *V, uint64_t *const *M, uint64_t Lanes);

  /// Takes ownership of the dlopen handle.  Built by buildAndLoad; the
  /// constructor is public only for the loader internals.
  LoadedModule(void *Handle, CycleFn Cycle, BatchFn Batch,
               uint64_t DesignHash, std::string Path)
      : Handle(Handle), Cycle(Cycle), Batch(Batch), DesignHash(DesignHash),
        Path(std::move(Path)) {}
  ~LoadedModule();
  LoadedModule(const LoadedModule &) = delete;
  LoadedModule &operator=(const LoadedModule &) = delete;

  CycleFn cycle() const { return Cycle; }
  BatchFn cycleBatch() const { return Batch; }
  uint64_t designHash() const { return DesignHash; }
  /// Path of the cached shared object (diagnostics, CI cache keys).
  const std::string &path() const { return Path; }

private:
  void *Handle = nullptr;
  CycleFn Cycle = nullptr;
  BatchFn Batch = nullptr;
  uint64_t DesignHash = 0;
  std::string Path;
};

/// Compiles (or reuses the cached artifact for) \p G and loads it.
/// Cache artifacts are named by the design hash and written atomically
/// (temp file + rename), so concurrent builders of the same design race
/// benignly.  Fails with the compiler log tail when compilation fails.
Result<std::shared_ptr<LoadedModule>>
buildAndLoad(const GeneratedModule &G, const BuildOptions &O = {});

} // namespace hdl
} // namespace silver

#endif // SILVER_HDL_COMPILE_BUILD_H
