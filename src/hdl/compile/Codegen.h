//===- hdl/compile/Codegen.h - Verilog-to-C++ code generator ----*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a self-contained C++ translation unit that steps one clock
/// cycle of a type-checked module of the Verilog subset — the Verilator
/// move, but against a subset with a reference semantics (Semantics.h)
/// so the output can be differentially tested instead of trusted.
///
/// The emitted unit exports a tiny C ABI (one cycle function plus a
/// struct-of-arrays batched variant stepping N independent instances),
/// and the slot layout of the generated state vector is planned here, on
/// the host side, in exactly the order FastSim assigns slots — so the
/// host binds names to indices without ever parsing the generated code.
///
/// Compilation scheme (DESIGN.md §14): the statement language has no
/// loops, so every static assignment executes at most once per cycle.
/// Each non-blocking assignment / memory write compiles to a latch local
/// (value + executed flag) committed at the end of the cycle in program
/// order — a static unrolling of the reference semantics' event queue.
/// Blocking assignments in a multi-process module write a per-process
/// shadow (later processes must still read cycle-start state) and commit
/// from their latch locals first, mirroring FastSim's undo/commit logs;
/// a single-process module (the rtl-generated core) writes through
/// directly.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_HDL_COMPILE_CODEGEN_H
#define SILVER_HDL_COMPILE_CODEGEN_H

#include "hdl/Verilog.h"
#include "support/Result.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace silver {
namespace hdl {

/// Host-side plan of the generated state vector.  Slot numbering is
/// identical to FastSim's (ports in declaration order, then decls), so a
/// slot resolved against either backend means the same variable.
struct CompiledLayout {
  std::map<std::string, int> ScalarSlots; ///< bool/vec name -> slot
  std::map<std::string, int> MemSlots;    ///< memory name -> memory id
  std::vector<unsigned> SlotWidths;       ///< per slot; 0 = bool
  std::vector<unsigned> MemWidths;        ///< per memory id
  std::vector<size_t> MemDepths;          ///< per memory id
  /// Input ports in declaration order: (name, slot).  The stepDense
  /// frame order, exactly as FastSim::inputName exposes it.
  std::vector<std::pair<std::string, int>> InputSlots;
};

/// One generated translation unit plus the layout needed to drive it.
struct GeneratedModule {
  CompiledLayout Layout;
  std::string Source;      ///< the C++ translation unit
  uint64_t DesignHash = 0; ///< fnv1a64 of Source; cache key + runtime check
};

/// The exported C ABI of a generated unit.  Bumped whenever the symbol
/// contract below changes; the loader refuses a mismatch.
constexpr uint32_t CompiledAbiVersion = 1;

/// Exported symbols: `silver_hdl_abi_version()` returns
/// CompiledAbiVersion; `silver_hdl_design_hash()` returns DesignHash;
/// `silver_hdl_cycle(V, M)` steps one cycle over the scalar state vector
/// V (one uint64_t per slot) and the memory table M (one base pointer
/// per memory id); `silver_hdl_cycle_batch(V, M, Lanes)` steps Lanes
/// independent instances laid out struct-of-arrays (slot s of lane l at
/// V[s*Lanes+l], element e of memory m at M[m][e*Lanes+l]).  Both return
/// 0 on success, nonzero when a memory write went out of range.
///
/// Generates the translation unit for \p M; fails when typeCheck fails.
Result<GeneratedModule> generateCpp(const VModule &M);

} // namespace hdl
} // namespace silver

#endif // SILVER_HDL_COMPILE_CODEGEN_H
