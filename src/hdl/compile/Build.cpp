//===- hdl/compile/Build.cpp - Host-compiler build driver --------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "hdl/compile/Build.h"

#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unistd.h>

using namespace silver;
using namespace silver::hdl;

namespace fs = std::filesystem;

namespace {

std::string envOr(const char *Name, const std::string &Fallback) {
  const char *V = std::getenv(Name);
  return (V != nullptr && *V != '\0') ? std::string(V) : Fallback;
}

std::string resolveCompiler(const BuildOptions &O) {
  if (!O.Compiler.empty())
    return O.Compiler;
  return envOr("SILVER_HDL_CXX", envOr("CXX", "c++"));
}

std::string shQuote(const std::string &Path) { return "'" + Path + "'"; }

std::string hexHash(uint64_t H) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

std::string tailOfFile(const std::string &Path, size_t MaxBytes = 2048) {
  std::ifstream In(Path);
  std::stringstream Ss;
  Ss << In.rdbuf();
  std::string S = Ss.str();
  if (S.size() > MaxBytes)
    S = "..." + S.substr(S.size() - MaxBytes);
  return S;
}

bool probeCompiler(const std::string &Cxx) {
  std::string Cmd = Cxx + " --version >/dev/null 2>&1";
  return std::system(Cmd.c_str()) == 0; // NOLINT(cert-env33-c)
}

/// Loads and verifies one artifact; returns null (after closing the
/// handle) on any mismatch, so a stale or truncated cache entry is
/// indistinguishable from a missing one.
std::shared_ptr<LoadedModule> tryLoad(const std::string &Path,
                                      uint64_t WantHash);

} // namespace

std::string silver::hdl::defaultCacheDir() {
  std::string Dir = envOr("SILVER_HDL_CACHE", "");
  if (!Dir.empty())
    return Dir;
  std::string Xdg = envOr("XDG_CACHE_HOME", "");
  if (!Xdg.empty())
    return Xdg + "/silver-hdl";
  std::string Home = envOr("HOME", "");
  if (!Home.empty())
    return Home + "/.cache/silver-hdl";
  return "/tmp/silver-hdl";
}

bool silver::hdl::compiledSimAvailable() {
  static std::once_flag Once;
  static bool Available = false;
  std::call_once(Once, [] {
    if (std::getenv("SILVER_HDL_DISABLE") != nullptr)
      return;
    Available = probeCompiler(resolveCompiler({}));
  });
  return Available;
}

LoadedModule::~LoadedModule() {
  if (Handle != nullptr)
    dlclose(Handle);
}

namespace {

std::shared_ptr<LoadedModule> tryLoad(const std::string &Path,
                                      uint64_t WantHash) {
  void *H = dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (H == nullptr)
    return nullptr;
  auto Abi =
      reinterpret_cast<uint32_t (*)()>(dlsym(H, "silver_hdl_abi_version"));
  auto Hash =
      reinterpret_cast<uint64_t (*)()>(dlsym(H, "silver_hdl_design_hash"));
  auto Cycle = reinterpret_cast<LoadedModule::CycleFn>(
      dlsym(H, "silver_hdl_cycle"));
  auto Batch = reinterpret_cast<LoadedModule::BatchFn>(
      dlsym(H, "silver_hdl_cycle_batch"));
  if (Abi == nullptr || Hash == nullptr || Cycle == nullptr ||
      Batch == nullptr || Abi() != CompiledAbiVersion ||
      Hash() != WantHash) {
    dlclose(H);
    return nullptr;
  }
  return std::make_shared<LoadedModule>(H, Cycle, Batch, WantHash, Path);
}

} // namespace

Result<std::shared_ptr<LoadedModule>>
silver::hdl::buildAndLoad(const GeneratedModule &G, const BuildOptions &O) {
  std::string Cxx = resolveCompiler(O);
  std::string Dir = O.CacheDir.empty() ? defaultCacheDir() : O.CacheDir;

  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec)
    return Error("hdl compile: cannot create cache dir '" + Dir +
                 "': " + Ec.message());

  std::string Stem = Dir + "/silver-hdl-" + hexHash(G.DesignHash);
  std::string SoPath = Stem + ".so";

  if (fs::exists(SoPath, Ec))
    if (std::shared_ptr<LoadedModule> M = tryLoad(SoPath, G.DesignHash))
      return M;

  // Build to process-private temporaries, then rename into place:
  // concurrent builders of the same design race benignly (both produce
  // identical artifacts) and readers never see a partial file.
  std::string Pid = std::to_string(getpid());
  std::string CppTmp = Stem + "." + Pid + ".cpp";
  std::string SoTmp = Stem + "." + Pid + ".so.tmp";
  std::string Log = Stem + "." + Pid + ".log";
  {
    std::ofstream Out(CppTmp);
    Out << G.Source;
    if (!Out)
      return Error("hdl compile: cannot write '" + CppTmp + "'");
  }
  std::string Cmd = Cxx + " -std=c++17 -O2 -fPIC -shared -o " +
                    shQuote(SoTmp) + " " + shQuote(CppTmp) + " > " +
                    shQuote(Log) + " 2>&1";
  int Rc = std::system(Cmd.c_str()); // NOLINT(cert-env33-c)
  if (Rc != 0) {
    std::string Diag = tailOfFile(Log);
    fs::remove(CppTmp, Ec);
    fs::remove(SoTmp, Ec);
    fs::remove(Log, Ec);
    return Error("hdl compile: host compiler failed (" + Cxx +
                 "): " + Diag);
  }
  fs::rename(CppTmp, Stem + ".cpp", Ec); // kept for inspection
  fs::rename(SoTmp, SoPath, Ec);
  if (Ec)
    return Error("hdl compile: cannot install artifact '" + SoPath +
                 "': " + Ec.message());
  fs::remove(Log, Ec);

  if (std::shared_ptr<LoadedModule> M = tryLoad(SoPath, G.DesignHash))
    return M;
  return Error("hdl compile: built artifact '" + SoPath +
               "' failed to load or verify");
}
