//===- hdl/compile/CompiledSim.h - Compiled simulator backend ---*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ahead-of-time compiled counterpart of FastSim: generate C++ for
/// the module (Codegen.h), build and dlopen it (Build.h), and step
/// cycles through the loaded entry point.  Exposes the same ModuleSim
/// surface — slot handles, dense input frames, cycle observer — so the
/// Verilog execution level swaps backends without touching its binding
/// code.  CompiledBatch steps N independent instances per call over a
/// struct-of-arrays state (lane l of slot s at Values[s*N+l]), which
/// amortizes the call overhead for fuzz campaigns and silverd.
///
/// The compiled backend is generated code executing the verified design,
/// so it is only admissible alongside its differential harness: the
/// interpreter remains the reference, and compiled-vs-interpreted
/// agreement is a first-class fuzz level (DESIGN.md §14).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_HDL_COMPILE_COMPILEDSIM_H
#define SILVER_HDL_COMPILE_COMPILEDSIM_H

#include "hdl/ModuleSim.h"
#include "hdl/compile/Build.h"

#include <memory>

namespace silver {
namespace hdl {

/// One module compiled to a shared object.  Cheap to share: instances
/// (single or batched) hold their own state and reference the loaded
/// code.
class CompiledModule {
public:
  /// Generates, builds (or reuses the cached artifact), and loads the
  /// simulator for \p M.  Fails when no host compiler is usable — use
  /// compiledSimAvailable() to fall back instead of erroring.
  static Result<std::shared_ptr<CompiledModule>>
  create(const VModule &M, const BuildOptions &O = {});

  const CompiledLayout &layout() const { return Layout; }
  uint64_t designHash() const { return Code->designHash(); }
  /// Path of the cached shared object (CI caches key on this).
  const std::string &artifactPath() const { return Code->path(); }

private:
  friend class CompiledSim;
  friend class CompiledBatch;
  CompiledModule(CompiledLayout L, std::shared_ptr<LoadedModule> C)
      : Layout(std::move(L)), Code(std::move(C)) {}

  CompiledLayout Layout;
  std::shared_ptr<LoadedModule> Code;
};

/// A single compiled instance behind the common ModuleSim surface.
class CompiledSim final : public ModuleSim {
public:
  /// Convenience: CompiledModule::create + instantiate.
  static Result<std::unique_ptr<CompiledSim>>
  compile(const VModule &M, const BuildOptions &O = {});
  /// One instance over an already-loaded module.
  explicit CompiledSim(std::shared_ptr<CompiledModule> M);
  ~CompiledSim() override;

  Result<void> stepDense(const uint64_t *Inputs, size_t Count) override;
  Result<void> step(const std::map<std::string, uint64_t> &Inputs) override;
  size_t numInputs() const override;
  const std::string &inputName(size_t Ordinal) const override;
  int slotOf(const std::string &Name) const override;
  int memSlotOf(const std::string &Name) const override;
  uint64_t valueOf(int Slot) const override;
  void setValue(int Slot, uint64_t Bits) override;
  const std::vector<uint64_t> &memOf(int MemSlot) const override;
  std::vector<uint64_t> &memOf(int MemSlot) override;
  void setCycleObserver(obs::Observer *O) override;
  uint64_t valueOf(const std::string &Name) const override;
  const std::vector<uint64_t> &memOf(const std::string &Name) const override;
  void setValue(const std::string &Name, uint64_t Bits) override;
  std::vector<uint64_t> &memOf(const std::string &Name) override;
  SimState exportState(const VModule &M) const override;

  uint64_t designHash() const { return Module->designHash(); }

private:
  std::shared_ptr<CompiledModule> Module;
  std::vector<uint64_t> Values;
  std::vector<std::vector<uint64_t>> Mems;
  std::vector<uint64_t *> MemPtrs;
  std::vector<uint64_t> DenseScratch;
  obs::Observer *CycleObs = nullptr;
  uint64_t Cycle = 0;
};

/// N independent instances stepped together (struct-of-arrays lanes).
/// The input frame of stepDense is likewise lane-major per port:
/// Inputs[port * lanes() + lane].
class CompiledBatch {
public:
  static Result<std::unique_ptr<CompiledBatch>>
  compile(const VModule &M, size_t Lanes, const BuildOptions &O = {});
  CompiledBatch(std::shared_ptr<CompiledModule> M, size_t Lanes);

  size_t lanes() const { return NumLanes; }
  size_t numInputs() const;
  int slotOf(const std::string &Name) const;
  int memSlotOf(const std::string &Name) const;

  /// One clock cycle for every lane; \p Inputs holds numInputs()*lanes()
  /// values, port-major.
  Result<void> stepDense(const uint64_t *Inputs);

  uint64_t valueOf(size_t Lane, int Slot) const;
  void setValue(size_t Lane, int Slot, uint64_t Bits);
  uint64_t memAt(size_t Lane, int MemSlot, size_t Index) const;
  void setMemAt(size_t Lane, int MemSlot, size_t Index, uint64_t Bits);

private:
  std::shared_ptr<CompiledModule> Module;
  size_t NumLanes;
  std::vector<uint64_t> Values; ///< slot-major SoA: [slot*NumLanes+lane]
  std::vector<std::vector<uint64_t>> Mems; ///< [mem][elem*NumLanes+lane]
  std::vector<uint64_t *> MemPtrs;
};

} // namespace hdl
} // namespace silver

#endif // SILVER_HDL_COMPILE_COMPILEDSIM_H
