//===- hdl/compile/CompiledSim.cpp - Compiled simulator backend --------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "hdl/compile/CompiledSim.h"

#include <cassert>

using namespace silver;
using namespace silver::hdl;

namespace {

uint64_t maskTo(unsigned Width, uint64_t Bits) {
  return Width >= 64 ? Bits : (Bits & ((uint64_t(1) << Width) - 1));
}

} // namespace

Result<std::shared_ptr<CompiledModule>>
CompiledModule::create(const VModule &M, const BuildOptions &O) {
  Result<GeneratedModule> G = generateCpp(M);
  if (!G)
    return G.error();
  Result<std::shared_ptr<LoadedModule>> Code = buildAndLoad(*G, O);
  if (!Code)
    return Code.error();
  return std::shared_ptr<CompiledModule>(
      new CompiledModule(std::move(G->Layout), Code.take()));
}

//===----------------------------------------------------------------------===//
// CompiledSim (single instance)
//===----------------------------------------------------------------------===//

Result<std::unique_ptr<CompiledSim>>
CompiledSim::compile(const VModule &M, const BuildOptions &O) {
  Result<std::shared_ptr<CompiledModule>> Mod = CompiledModule::create(M, O);
  if (!Mod)
    return Mod.error();
  return std::make_unique<CompiledSim>(Mod.take());
}

CompiledSim::CompiledSim(std::shared_ptr<CompiledModule> M)
    : Module(std::move(M)) {
  const CompiledLayout &L = Module->Layout;
  Values.assign(L.SlotWidths.size(), 0);
  Mems.resize(L.MemDepths.size());
  for (size_t I = 0; I != L.MemDepths.size(); ++I)
    Mems[I].assign(L.MemDepths[I], 0);
  MemPtrs.resize(Mems.size());
  for (size_t I = 0; I != Mems.size(); ++I)
    MemPtrs[I] = Mems[I].data();
}

CompiledSim::~CompiledSim() = default;

Result<void> CompiledSim::stepDense(const uint64_t *Inputs, size_t Count) {
  const CompiledLayout &L = Module->Layout;
  if (Count != L.InputSlots.size())
    return Error("compiled sim: dense input frame has " +
                 std::to_string(Count) + " values, module has " +
                 std::to_string(L.InputSlots.size()) + " input ports");
  for (size_t K = 0; K != Count; ++K) {
    int Slot = L.InputSlots[K].second;
    unsigned W = L.SlotWidths[Slot];
    Values[Slot] = maskTo(W == 0 ? 1 : W, Inputs[K]);
  }
  if (Module->Code->cycle()(Values.data(), MemPtrs.data()) != 0)
    return Error("compiled sim: memory write out of range");
  if (CycleObs != nullptr)
    CycleObs->onCycle(Cycle);
  ++Cycle;
  return {};
}

Result<void> CompiledSim::step(const std::map<std::string, uint64_t> &Inputs) {
  const CompiledLayout &L = Module->Layout;
  DenseScratch.resize(L.InputSlots.size());
  for (size_t K = 0; K != L.InputSlots.size(); ++K) {
    auto It = Inputs.find(L.InputSlots[K].first);
    if (It == Inputs.end())
      return Error("compiled sim: input '" + L.InputSlots[K].first +
                   "' not driven");
    DenseScratch[K] = It->second;
  }
  return stepDense(DenseScratch.data(), DenseScratch.size());
}

size_t CompiledSim::numInputs() const {
  return Module->Layout.InputSlots.size();
}

const std::string &CompiledSim::inputName(size_t Ordinal) const {
  assert(Ordinal < Module->Layout.InputSlots.size() &&
         "input ordinal out of range");
  return Module->Layout.InputSlots[Ordinal].first;
}

int CompiledSim::slotOf(const std::string &Name) const {
  const auto &S = Module->Layout.ScalarSlots;
  auto It = S.find(Name);
  return It == S.end() ? -1 : It->second;
}

int CompiledSim::memSlotOf(const std::string &Name) const {
  const auto &S = Module->Layout.MemSlots;
  auto It = S.find(Name);
  return It == S.end() ? -1 : It->second;
}

uint64_t CompiledSim::valueOf(int Slot) const {
  assert(Slot >= 0 && static_cast<size_t>(Slot) < Values.size());
  return Values[Slot];
}

void CompiledSim::setValue(int Slot, uint64_t Bits) {
  assert(Slot >= 0 && static_cast<size_t>(Slot) < Values.size());
  unsigned W = Module->Layout.SlotWidths[Slot];
  Values[Slot] = maskTo(W == 0 ? 1 : W, Bits);
}

const std::vector<uint64_t> &CompiledSim::memOf(int MemSlot) const {
  assert(MemSlot >= 0 && static_cast<size_t>(MemSlot) < Mems.size());
  return Mems[MemSlot];
}

std::vector<uint64_t> &CompiledSim::memOf(int MemSlot) {
  assert(MemSlot >= 0 && static_cast<size_t>(MemSlot) < Mems.size());
  return Mems[MemSlot];
}

void CompiledSim::setCycleObserver(obs::Observer *O) { CycleObs = O; }

uint64_t CompiledSim::valueOf(const std::string &Name) const {
  int Slot = slotOf(Name);
  assert(Slot >= 0 && "unknown variable");
  return Values[Slot];
}

void CompiledSim::setValue(const std::string &Name, uint64_t Bits) {
  int Slot = slotOf(Name);
  assert(Slot >= 0 && "unknown variable");
  setValue(Slot, Bits);
}

const std::vector<uint64_t> &CompiledSim::memOf(const std::string &Name) const {
  int Slot = memSlotOf(Name);
  assert(Slot >= 0 && "unknown memory");
  return Mems[Slot];
}

std::vector<uint64_t> &CompiledSim::memOf(const std::string &Name) {
  int Slot = memSlotOf(Name);
  assert(Slot >= 0 && "unknown memory");
  return Mems[Slot];
}

SimState CompiledSim::exportState(const VModule &M) const {
  SimState S = SimState::init(M);
  const CompiledLayout &L = Module->Layout;
  for (auto &[Name, Value] : S.Vars) {
    if (Value.K == VValue::Kind::Mem) {
      Value.Elems = memOf(Name);
      continue;
    }
    auto It = L.ScalarSlots.find(Name);
    if (It == L.ScalarSlots.end())
      continue;
    if (Value.K == VValue::Kind::Bool)
      Value.B = Values[It->second] != 0;
    else
      Value.Bits = maskTo(Value.Width, Values[It->second]);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// CompiledBatch (struct-of-arrays lanes)
//===----------------------------------------------------------------------===//

Result<std::unique_ptr<CompiledBatch>>
CompiledBatch::compile(const VModule &M, size_t Lanes,
                       const BuildOptions &O) {
  Result<std::shared_ptr<CompiledModule>> Mod = CompiledModule::create(M, O);
  if (!Mod)
    return Mod.error();
  return std::make_unique<CompiledBatch>(Mod.take(), Lanes);
}

CompiledBatch::CompiledBatch(std::shared_ptr<CompiledModule> M, size_t Lanes)
    : Module(std::move(M)), NumLanes(Lanes == 0 ? 1 : Lanes) {
  const CompiledLayout &L = Module->Layout;
  Values.assign(L.SlotWidths.size() * NumLanes, 0);
  Mems.resize(L.MemDepths.size());
  for (size_t I = 0; I != L.MemDepths.size(); ++I)
    Mems[I].assign(L.MemDepths[I] * NumLanes, 0);
  MemPtrs.resize(Mems.size());
  for (size_t I = 0; I != Mems.size(); ++I)
    MemPtrs[I] = Mems[I].data();
}

size_t CompiledBatch::numInputs() const {
  return Module->Layout.InputSlots.size();
}

int CompiledBatch::slotOf(const std::string &Name) const {
  const auto &S = Module->Layout.ScalarSlots;
  auto It = S.find(Name);
  return It == S.end() ? -1 : It->second;
}

int CompiledBatch::memSlotOf(const std::string &Name) const {
  const auto &S = Module->Layout.MemSlots;
  auto It = S.find(Name);
  return It == S.end() ? -1 : It->second;
}

Result<void> CompiledBatch::stepDense(const uint64_t *Inputs) {
  const CompiledLayout &L = Module->Layout;
  for (size_t K = 0; K != L.InputSlots.size(); ++K) {
    int Slot = L.InputSlots[K].second;
    unsigned W = L.SlotWidths[Slot];
    for (size_t Lane = 0; Lane != NumLanes; ++Lane)
      Values[static_cast<size_t>(Slot) * NumLanes + Lane] =
          maskTo(W == 0 ? 1 : W, Inputs[K * NumLanes + Lane]);
  }
  if (Module->Code->cycleBatch()(Values.data(), MemPtrs.data(),
                                 NumLanes) != 0)
    return Error("compiled sim: memory write out of range");
  return {};
}

uint64_t CompiledBatch::valueOf(size_t Lane, int Slot) const {
  assert(Slot >= 0 && Lane < NumLanes);
  return Values[static_cast<size_t>(Slot) * NumLanes + Lane];
}

void CompiledBatch::setValue(size_t Lane, int Slot, uint64_t Bits) {
  assert(Slot >= 0 && Lane < NumLanes);
  unsigned W = Module->Layout.SlotWidths[Slot];
  Values[static_cast<size_t>(Slot) * NumLanes + Lane] =
      maskTo(W == 0 ? 1 : W, Bits);
}

uint64_t CompiledBatch::memAt(size_t Lane, int MemSlot, size_t Index) const {
  assert(MemSlot >= 0 && Lane < NumLanes);
  return Mems[MemSlot][Index * NumLanes + Lane];
}

void CompiledBatch::setMemAt(size_t Lane, int MemSlot, size_t Index,
                             uint64_t Bits) {
  assert(MemSlot >= 0 && Lane < NumLanes);
  Mems[MemSlot][Index * NumLanes + Lane] = Bits;
}
