//===- hdl/compile/Codegen.cpp - Verilog-to-C++ code generator ---------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "hdl/compile/Codegen.h"

#include "hdl/Semantics.h"
#include "support/Bits.h"

#include <functional>
#include <set>

using namespace silver;
using namespace silver::hdl;

namespace {

/// An emitted expression: the C++ text plus the subset-level result
/// width (0 = bool), which drives masking exactly as FastSim::eval does.
struct EmittedExp {
  std::string Text;
  unsigned Width = 0;
};

std::string num(uint64_t V) {
  return "UINT64_C(" + std::to_string(V) + ")";
}

/// Emission context for one module.  Statement latch locals are numbered
/// globally (across processes) so the commit section can replay them in
/// global program order — process order, then pre-order within a process
/// — which equals execution order because the statement language has no
/// loops.
struct Emitter {
  explicit Emitter(const CompiledLayout &Layout) : Layout(Layout) {}

  const CompiledLayout &Layout;
  /// Single-process modules write blocking assigns through directly
  /// (FastSim's DirectBlocking); see the file comment of Codegen.h.
  bool DirectBlocking = false;

  std::string Decls;   ///< latch locals, declared before the bodies
  std::string Body;    ///< process bodies
  std::string Commit;  ///< end-of-cycle commit section
  int NextId = 0;      ///< statement latch numbering

  /// Slots the current process assigns with blocking assigns; reads of
  /// these go through the per-process shadow locals.
  std::set<int> Shadowed;

  std::string slotRef(int Slot) const {
    return "V[" + std::to_string(Slot) + " * Lanes + Lane]";
  }

  std::string varRef(int Slot) const {
    if (!DirectBlocking && Shadowed.count(Slot))
      return "S" + std::to_string(Slot);
    return slotRef(Slot);
  }

  EmittedExp emitExp(const VExp &E);
  void emitStmt(const VStmt &S, int Indent);
  void emitProcess(const VStmt &Body);
};

void collectBlockingSlots(const VStmt &S, const CompiledLayout &L,
                          std::set<int> &Out) {
  switch (S.Kind) {
  case VStmtKind::Block:
    for (const VStmtPtr &Sub : S.Stmts)
      collectBlockingSlots(*Sub, L, Out);
    return;
  case VStmtKind::If:
    collectBlockingSlots(*S.Then, L, Out);
    if (S.Else)
      collectBlockingSlots(*S.Else, L, Out);
    return;
  case VStmtKind::BlockingAssign:
    Out.insert(L.ScalarSlots.at(S.Lhs));
    return;
  case VStmtKind::NonBlockingAssign:
  case VStmtKind::MemWrite:
    return;
  }
}

EmittedExp Emitter::emitExp(const VExp &E) {
  switch (E.Kind) {
  case VExpKind::ConstBool:
    return {E.Bool ? "UINT64_C(1)" : "UINT64_C(0)", 0};
  case VExpKind::ConstVec:
    return {num(E.Bits), E.Width};
  case VExpKind::Var: {
    int Slot = Layout.ScalarSlots.at(E.Name);
    return {varRef(Slot), Layout.SlotWidths[Slot]};
  }
  case VExpKind::MemRead: {
    int Mem = Layout.MemSlots.at(E.Name);
    EmittedExp Idx = emitExp(*E.Args[0]);
    return {"memrd(M[" + std::to_string(Mem) + "], " +
                num(Layout.MemDepths[Mem]) + ", " + Idx.Text +
                ", Lanes, Lane)",
            Layout.MemWidths[Mem]};
  }
  case VExpKind::Binary: {
    EmittedExp A = emitExp(*E.Args[0]);
    EmittedExp B = emitExp(*E.Args[1]);
    std::string W = std::to_string(A.Width);
    switch (E.BOp) {
    case BinaryOp::Add:
      return {"mask(" + W + ", (" + A.Text + ") + (" + B.Text + "))",
              A.Width};
    case BinaryOp::Sub:
      return {"mask(" + W + ", (" + A.Text + ") - (" + B.Text + "))",
              A.Width};
    case BinaryOp::Mul:
      return {"mask(" + W + ", (" + A.Text + ") * (" + B.Text + "))",
              A.Width};
    case BinaryOp::And:
      return {"((" + A.Text + ") & (" + B.Text + "))", A.Width};
    case BinaryOp::Or:
      return {"((" + A.Text + ") | (" + B.Text + "))", A.Width};
    case BinaryOp::Xor:
      return {"((" + A.Text + ") ^ (" + B.Text + "))", A.Width};
    case BinaryOp::Eq:
      return {"uint64_t((" + A.Text + ") == (" + B.Text + "))", 0};
    case BinaryOp::LtU:
      return {"uint64_t((" + A.Text + ") < (" + B.Text + "))", 0};
    case BinaryOp::LtS:
      return {"uint64_t(sgn(" + W + ", " + A.Text + ") < sgn(" + W + ", " +
                  B.Text + "))",
              0};
    case BinaryOp::Shl:
      return {"shlOp(" + W + ", " + A.Text + ", " + B.Text + ")", A.Width};
    case BinaryOp::ShrL:
      return {"shrlOp(" + W + ", " + A.Text + ", " + B.Text + ")", A.Width};
    case BinaryOp::ShrA:
      return {"shraOp(" + W + ", " + A.Text + ", " + B.Text + ")", A.Width};
    }
    return {"UINT64_C(0)", 0};
  }
  case VExpKind::Unary: {
    EmittedExp A = emitExp(*E.Args[0]);
    if (E.UOp == UnaryOp::Not) {
      if (A.Width == 0)
        return {"((" + A.Text + ") ? UINT64_C(0) : UINT64_C(1))", 0};
      return {"mask(" + std::to_string(A.Width) + ", ~(" + A.Text + "))",
              A.Width};
    }
    return {"uint64_t((" + A.Text + ") == 0)", 0};
  }
  case VExpKind::Slice: {
    EmittedExp A = emitExp(*E.Args[0]);
    unsigned W = E.Hi - E.Lo + 1;
    return {"mask(" + std::to_string(W) + ", (" + A.Text + ") >> " +
                std::to_string(E.Lo) + ")",
            W};
  }
  case VExpKind::Concat: {
    EmittedExp Hi = emitExp(*E.Args[0]);
    EmittedExp Lo = emitExp(*E.Args[1]);
    return {"(((" + Hi.Text + ") << " + std::to_string(Lo.Width) + ") | (" +
                Lo.Text + "))",
            Hi.Width + Lo.Width};
  }
  case VExpKind::Cond: {
    EmittedExp C = emitExp(*E.Args[0]);
    EmittedExp T = emitExp(*E.Args[1]);
    EmittedExp F = emitExp(*E.Args[2]);
    return {"((" + C.Text + ") ? (" + T.Text + ") : (" + F.Text + "))",
            T.Width};
  }
  case VExpKind::ZeroExt: {
    EmittedExp A = emitExp(*E.Args[0]);
    return {A.Text, E.Width};
  }
  case VExpKind::SignExt: {
    EmittedExp A = emitExp(*E.Args[0]);
    return {"mask(" + std::to_string(E.Width) + ", uint64_t(sgn(" +
                std::to_string(A.Width) + ", " + A.Text + ")))",
            E.Width};
  }
  case VExpKind::BoolToVec: {
    EmittedExp A = emitExp(*E.Args[0]);
    return {"((" + A.Text + ") & 1)", 1};
  }
  case VExpKind::VecToBool: {
    EmittedExp A = emitExp(*E.Args[0]);
    return {"uint64_t((" + A.Text + ") != 0)", 0};
  }
  }
  return {"UINT64_C(0)", 0};
}

void Emitter::emitStmt(const VStmt &S, int Indent) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  switch (S.Kind) {
  case VStmtKind::Block:
    for (const VStmtPtr &Sub : S.Stmts)
      emitStmt(*Sub, Indent);
    return;
  case VStmtKind::If: {
    EmittedExp C = emitExp(*S.Cond);
    Body += Pad + "if (" + C.Text + ") {\n";
    emitStmt(*S.Then, Indent + 1);
    if (S.Else) {
      Body += Pad + "} else {\n";
      emitStmt(*S.Else, Indent + 1);
    }
    Body += Pad + "}\n";
    return;
  }
  case VStmtKind::BlockingAssign: {
    int Slot = Layout.ScalarSlots.at(S.Lhs);
    EmittedExp R = emitExp(*S.Rhs);
    if (DirectBlocking) {
      Body += Pad + slotRef(Slot) + " = " + R.Text + ";\n";
      return;
    }
    int Id = NextId++;
    std::string Sh = "S" + std::to_string(Slot);
    Decls += "  uint64_t B" + std::to_string(Id) +
             " = 0; bool Bs" + std::to_string(Id) + " = false;\n";
    Body += Pad + Sh + " = " + R.Text + ";\n";
    Body += Pad + "B" + std::to_string(Id) + " = " + Sh + "; Bs" +
            std::to_string(Id) + " = true;\n";
    Commit += "  if (Bs" + std::to_string(Id) + ") " + slotRef(Slot) +
              " = B" + std::to_string(Id) + ";\n";
    return;
  }
  case VStmtKind::NonBlockingAssign: {
    EmittedExp R = emitExp(*S.Rhs);
    int Id = NextId++;
    Decls += "  uint64_t N" + std::to_string(Id) +
             " = 0; bool Ns" + std::to_string(Id) + " = false;\n";
    Body += Pad + "N" + std::to_string(Id) + " = " + R.Text + "; Ns" +
            std::to_string(Id) + " = true;\n";
    // Non-blocking scalar commits run after the blocking commits; both
    // sections are assembled in that order in generateCpp.
    return;
  }
  case VStmtKind::MemWrite: {
    EmittedExp Idx = emitExp(*S.Index);
    EmittedExp R = emitExp(*S.Rhs);
    int Id = NextId++;
    std::string N = std::to_string(Id);
    Decls += "  uint64_t Mi" + N + " = 0, Mv" + N + " = 0; bool Ms" + N +
             " = false;\n";
    Body += Pad + "Mi" + N + " = " + Idx.Text + "; Mv" + N + " = " +
            R.Text + "; Ms" + N + " = true;\n";
    return;
  }
  }
}

void Emitter::emitProcess(const VStmt &ProcBody) {
  Shadowed.clear();
  if (!DirectBlocking)
    collectBlockingSlots(ProcBody, Layout, Shadowed);
  Body += "  { // process\n";
  // The shadows give this process its own blocking writes while later
  // processes keep seeing cycle-start state (FastSim's undo log).
  for (int Slot : Shadowed)
    Body += "    uint64_t S" + std::to_string(Slot) + " = " +
            slotRef(Slot) + ";\n";
  emitStmt(ProcBody, 2);
  Body += "  }\n";
}

} // namespace

Result<GeneratedModule> silver::hdl::generateCpp(const VModule &M) {
  if (Result<void> T = typeCheck(M); !T)
    return T.error();

  GeneratedModule G;
  CompiledLayout &L = G.Layout;
  auto Declare = [&L](const std::string &Name, const VType &T) {
    if (T.K == VType::Kind::Mem) {
      int Id = static_cast<int>(L.MemWidths.size());
      L.MemWidths.push_back(T.Width);
      L.MemDepths.push_back(T.Depth);
      L.MemSlots[Name] = Id;
      return;
    }
    int Slot = static_cast<int>(L.SlotWidths.size());
    L.SlotWidths.push_back(T.K == VType::Kind::Bool ? 0 : T.Width);
    L.ScalarSlots[Name] = Slot;
  };
  for (const VPort &P : M.Ports) {
    Declare(P.Name, P.Type);
    if (P.D == VPort::Dir::Input)
      L.InputSlots.emplace_back(P.Name, L.ScalarSlots[P.Name]);
  }
  for (const VDecl &D : M.Decls)
    Declare(D.Name, D.Type);

  Emitter E(L);
  E.DirectBlocking = M.Processes.size() <= 1;

  // NBA latch commits replay the queue of the reference semantics: the
  // emitter appends one guarded store per static assignment in global
  // program order.  Scalar commits and memory commits are partitioned
  // (scalars first) — legal because they target disjoint storage.
  std::string NbaCommit;
  std::string MemCommit;
  for (const VProcess &P : M.Processes)
    E.emitProcess(*P.Body);

  // Reconstruct the NBA/mem commit sections with a second traversal
  // using the same global numbering the emitter assigned (the emitter
  // itself only fills the blocking commit stream).
  int Id = 0;
  bool Direct = E.DirectBlocking;
  std::function<void(const VStmt &)> Walk = [&](const VStmt &S) {
    switch (S.Kind) {
    case VStmtKind::Block:
      for (const VStmtPtr &Sub : S.Stmts)
        Walk(*Sub);
      return;
    case VStmtKind::If:
      Walk(*S.Then);
      if (S.Else)
        Walk(*S.Else);
      return;
    case VStmtKind::BlockingAssign:
      if (!Direct)
        ++Id;
      return;
    case VStmtKind::NonBlockingAssign: {
      int Slot = L.ScalarSlots.at(S.Lhs);
      std::string N = std::to_string(Id++);
      NbaCommit += "  if (Ns" + N + ") V[" + std::to_string(Slot) +
                   " * Lanes + Lane] = N" + N + ";\n";
      return;
    }
    case VStmtKind::MemWrite: {
      int Mem = L.MemSlots.at(S.Lhs);
      std::string N = std::to_string(Id++);
      MemCommit += "  if (Ms" + N + ") {\n";
      MemCommit += "    if (Mi" + N + " >= " + num(L.MemDepths[Mem]) +
                   ") return 1;\n";
      MemCommit += "    M[" + std::to_string(Mem) + "][Mi" + N +
                   " * Lanes + Lane] = Mv" + N + ";\n";
      MemCommit += "  }\n";
      return;
    }
    }
  };
  for (const VProcess &P : M.Processes)
    Walk(*P.Body);

  std::string Src;
  Src += "// Generated by SilverStack hdl/compile for module '" + M.Name +
         "'.  Do not edit.\n";
  Src += "// One call = one clock cycle of the Verilog-subset semantics;\n";
  Src += "// checked against the interpreter by the differential tests.\n";
  Src += "#include <cstddef>\n#include <cstdint>\n\n";
  Src += "namespace {\n\n";
  Src += "inline uint64_t mask(unsigned W, uint64_t X) {\n";
  Src += "  return W >= 64 ? X : (X & ((uint64_t(1) << W) - 1));\n}\n\n";
  Src += "inline int64_t sgn(unsigned W, uint64_t X) {\n";
  Src += "  if (W == 0)\n    return 0;\n";
  Src += "  uint64_t S = uint64_t(1) << (W - 1);\n";
  Src += "  return static_cast<int64_t>((X ^ S) - S);\n}\n\n";
  Src += "inline uint64_t shlOp(unsigned W, uint64_t A, uint64_t B) {\n";
  Src += "  return B >= W ? 0 : mask(W, A << B);\n}\n\n";
  Src += "inline uint64_t shrlOp(unsigned W, uint64_t A, uint64_t B) {\n";
  Src += "  return B >= W ? 0 : (A >> B);\n}\n\n";
  Src += "inline uint64_t shraOp(unsigned W, uint64_t A, uint64_t B) {\n";
  Src += "  int64_t S = sgn(W, A);\n";
  Src += "  if (B >= W)\n    return mask(W, S < 0 ? ~uint64_t(0) : 0);\n";
  Src += "  return mask(W, static_cast<uint64_t>(S >> B));\n}\n\n";
  Src += "inline uint64_t memrd(const uint64_t *M, uint64_t Depth,\n";
  Src += "                      uint64_t Idx, size_t Lanes, size_t Lane) {\n";
  Src += "  return Idx < Depth ? M[Idx * Lanes + Lane] : 0;\n}\n\n";
  Src += "inline int cycleOne(uint64_t *V, uint64_t *const *M, size_t Lanes,\n";
  Src += "                    size_t Lane) {\n";
  Src += "  (void)M;\n";
  Src += E.Decls;
  Src += E.Body;
  Src += "  // end-of-cycle commit: blocking results, then the\n";
  Src += "  // non-blocking queue (scalars, then memory writes)\n";
  Src += E.Commit;
  Src += NbaCommit;
  Src += MemCommit;
  Src += "  return 0;\n}\n\n";
  Src += "} // namespace\n\n";
  Src += "extern \"C\" {\n\n";
  Src += "uint32_t silver_hdl_abi_version(void) { return " +
         std::to_string(CompiledAbiVersion) + "; }\n\n";
  Src += "uint64_t silver_hdl_design_hash(void) { return "
         "SILVER_DESIGN_HASH; }\n\n";
  Src += "int silver_hdl_cycle(uint64_t *V, uint64_t *const *M) {\n";
  Src += "  return cycleOne(V, M, 1, 0);\n}\n\n";
  Src += "int silver_hdl_cycle_batch(uint64_t *V, uint64_t *const *M,\n";
  Src += "                           uint64_t Lanes) {\n";
  Src += "  int Rc = 0;\n";
  Src += "  for (uint64_t L = 0; L != Lanes; ++L)\n";
  Src += "    Rc |= cycleOne(V, M, Lanes, L);\n";
  Src += "  return Rc;\n}\n\n";
  Src += "} // extern \"C\"\n";

  // The design hash covers the source with the placeholder still in
  // place (the hash cannot cover itself), then gets substituted in.
  G.DesignHash = fnv1a64(reinterpret_cast<const uint8_t *>(Src.data()),
                         Src.size());
  std::string Token = "SILVER_DESIGN_HASH";
  size_t At = Src.find(Token);
  Src.replace(At, Token.size(), num(G.DesignHash));
  G.Source = std::move(Src);
  return G;
}
