//===- hdl/Semantics.h - Operational semantics for the subset ---*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cycle-level operational semantics (the paper's verilog_sem): per
/// clock cycle, input ports are driven by the environment, every process
/// runs over the cycle-start state (blocking assignments become visible
/// to later statements of the same process; the paper's subset requires
/// processes to be non-interfering), and all non-blocking writes are
/// saved in a queue that is merged into the state at the end of the
/// cycle.  Type checking (vars_has_type) is a prerequisite of execution.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_HDL_SEMANTICS_H
#define SILVER_HDL_SEMANTICS_H

#include "hdl/Verilog.h"

namespace silver {
namespace hdl {

/// The paper's vars_has_type obligation: every referenced variable is
/// declared with a consistent type, widths agree across operators and
/// assignments, processes only write declared state, and non-blocking
/// targets are not also written blocking by another process
/// (non-interference).
Result<void> typeCheck(const VModule &M);

/// Simulation state: variable environment keyed by name.
class SimState {
public:
  std::map<std::string, VValue> Vars;

  /// Initialises every declaration (and output port) of \p M to zero.
  static SimState init(const VModule &M);

  bool operator==(const SimState &O) const { return Vars == O.Vars; }
};

/// One clock cycle: \p Inputs maps every input port to its value for
/// this cycle.  Returns an error on dynamic failures (out-of-range memory
/// index; these are unreachable after typeCheck except for memories).
Result<void> stepCycle(const VModule &M, SimState &State,
                       const std::map<std::string, VValue> &Inputs);

/// Evaluates an expression in a state (exposed for tests).
Result<VValue> evalExp(const VExp &E, const SimState &State);

} // namespace hdl
} // namespace silver

#endif // SILVER_HDL_SEMANTICS_H
