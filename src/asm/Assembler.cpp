//===- asm/Assembler.cpp - Silver assembler --------------------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"

#include <cassert>

using namespace silver;
using namespace silver::assembler;
using silver::isa::Func;
using silver::isa::Instruction;
using silver::isa::Operand;

Word Assembled::addressOf(const std::string &Label) const {
  auto It = Symbols.find(Label);
  assert(It != Symbols.end() && "unknown label");
  return It->second;
}

void Assembler::label(const std::string &Name) {
  Item I;
  I.K = Kind::Label;
  I.Sym = Name;
  Items.push_back(std::move(I));
}

void Assembler::emit(const Instruction &Instr) {
  Item I;
  I.K = Kind::Fixed;
  I.Instr = Instr;
  Items.push_back(std::move(I));
}

void Assembler::emitLi(unsigned Reg, Word Value) {
  if (Value <= 0x1fffff) {
    emit(Instruction::loadConstant(Reg, /*Negate=*/false, Value));
    return;
  }
  if ((0u - Value) <= 0x1fffff) {
    emit(Instruction::loadConstant(Reg, /*Negate=*/true, 0u - Value));
    return;
  }
  emit(Instruction::loadConstant(Reg, /*Negate=*/false, Value & 0x1fffff));
  emit(Instruction::loadUpperConstant(Reg, Value >> 21));
}

void Assembler::emitLiLabel(unsigned Reg, const std::string &Label) {
  Item I;
  I.K = Kind::LiLabel;
  I.Sym = Label;
  I.Reg = Reg;
  Items.push_back(std::move(I));
}

void Assembler::emitBranch(bool WhenZero, Func F, Operand A, Operand B,
                           const std::string &Label) {
  Item I;
  I.K = Kind::Branch;
  I.WhenZero = WhenZero;
  I.F = F;
  I.A = A;
  I.B = B;
  I.Sym = Label;
  Items.push_back(std::move(I));
}

void Assembler::emitJump(const std::string &Label) {
  Item I;
  I.K = Kind::Jump;
  I.Sym = Label;
  Items.push_back(std::move(I));
}

void Assembler::emitCall(const std::string &Label, unsigned LinkReg) {
  Item I;
  I.K = Kind::Call;
  I.Sym = Label;
  I.Reg = LinkReg;
  Items.push_back(std::move(I));
}

void Assembler::emitRet(unsigned LinkReg) {
  emit(Instruction::jump(Func::Snd, abi::TmpReg, Operand::reg(LinkReg)));
}

void Assembler::emitHalt() { emit(Instruction::halt()); }

void Assembler::word(Word Value) {
  Item I;
  I.K = Kind::Word;
  I.Data = Value;
  Items.push_back(std::move(I));
}

void Assembler::bytes(const std::vector<uint8_t> &Data) {
  Item I;
  I.K = Kind::Bytes;
  I.Blob = Data;
  Items.push_back(std::move(I));
}

void Assembler::ascii(const std::string &Text) {
  bytes(std::vector<uint8_t>(Text.begin(), Text.end()));
}

void Assembler::align(Word Alignment) {
  assert((Alignment & (Alignment - 1)) == 0 && "alignment not a power of 2");
  Item I;
  I.K = Kind::Align;
  I.Data = Alignment;
  Items.push_back(std::move(I));
}

void Assembler::space(Word Count) {
  Item I;
  I.K = Kind::Space;
  I.Data = Count;
  Items.push_back(std::move(I));
}

namespace {

/// Per-item layout state used during relaxation.
struct Layout {
  std::vector<bool> Far;       // Branch/Jump items promoted to far form
  std::vector<Word> Offset;    // item offset from base
  Word TotalSize = 0;
};

} // namespace

Result<Assembled>
Assembler::assemble(Word BaseAddr,
                    const std::map<std::string, Word> &Externs) const {
  Layout L;
  L.Far.assign(Items.size(), false);
  L.Offset.assign(Items.size(), 0);

  std::map<std::string, Word> Symbols;

  // Iterative relaxation.  Item sizes are monotone except Align padding,
  // so bound the iteration count and require a stable final pass.
  const int MaxIterations = 64;
  bool Stable = false;
  for (int Iter = 0; Iter != MaxIterations && !Stable; ++Iter) {
    // Phase 1: lay out with the current Far flags and bind labels.
    Symbols = Externs;
    Word At = 0;
    for (size_t I = 0, E = Items.size(); I != E; ++I) {
      const Item &It = Items[I];
      L.Offset[I] = At;
      switch (It.K) {
      case Kind::Label: {
        auto [Pos, Inserted] = Symbols.insert({It.Sym, BaseAddr + At});
        if (!Inserted)
          return Error("duplicate label '" + It.Sym + "'");
        break;
      }
      case Kind::Fixed:
        At += 4;
        break;
      case Kind::LiLabel:
        At += 8;
        break;
      case Kind::Branch:
        At += L.Far[I] ? 16 : 4;
        break;
      case Kind::Jump:
        At += L.Far[I] ? 12 : 4;
        break;
      case Kind::Call:
        At += 12;
        break;
      case Kind::Word:
        At += 4;
        break;
      case Kind::Bytes:
        At += static_cast<Word>(It.Blob.size());
        break;
      case Kind::Align:
        At = alignUp(At + BaseAddr, It.Data) - BaseAddr;
        break;
      case Kind::Space:
        At += It.Data;
        break;
      }
    }
    L.TotalSize = At;

    // Phase 2: check ranges; promote out-of-range items to far form.
    Stable = true;
    for (size_t I = 0, E = Items.size(); I != E; ++I) {
      const Item &It = Items[I];
      if ((It.K != Kind::Branch && It.K != Kind::Jump) || L.Far[I])
        continue;
      auto Sym = Symbols.find(It.Sym);
      if (Sym == Symbols.end())
        return Error("undefined label '" + It.Sym + "'");
      Word ItemAddr = BaseAddr + L.Offset[I];
      int64_t Delta =
          static_cast<int64_t>(Sym->second) - static_cast<int64_t>(ItemAddr);
      bool Fits = It.K == Kind::Branch
                      ? (Delta % 4 == 0 && fitsSigned(Delta / 4, 10))
                      : fitsSigned(Delta, 6);
      if (!Fits) {
        L.Far[I] = true;
        Stable = false;
      }
    }
  }
  if (!Stable)
    return Error("branch relaxation did not converge");

  // Phase 3: encode.
  Assembled Out;
  Out.BaseAddr = BaseAddr;
  Out.Symbols = Symbols;
  Out.Bytes.reserve(L.TotalSize);

  auto EmitWord = [&Out](Word W) {
    Out.Bytes.push_back(static_cast<uint8_t>(W));
    Out.Bytes.push_back(static_cast<uint8_t>(W >> 8));
    Out.Bytes.push_back(static_cast<uint8_t>(W >> 16));
    Out.Bytes.push_back(static_cast<uint8_t>(W >> 24));
  };
  auto EmitInstr = [&EmitWord](const Instruction &Instr) {
    EmitWord(isa::encode(Instr));
  };
  auto EmitLiValue = [&EmitInstr](unsigned Reg, Word Value) {
    // The label form is always two instructions (layout-independent).
    EmitInstr(Instruction::loadConstant(Reg, false, Value & 0x1fffff));
    EmitInstr(Instruction::loadUpperConstant(Reg, Value >> 21));
  };

  for (size_t I = 0, E = Items.size(); I != E; ++I) {
    const Item &It = Items[I];
    Word ItemAddr = BaseAddr + L.Offset[I];
    switch (It.K) {
    case Kind::Label:
      break;
    case Kind::Fixed:
      EmitInstr(It.Instr);
      break;
    case Kind::LiLabel:
      EmitLiValue(It.Reg, Symbols.at(It.Sym));
      break;
    case Kind::Branch: {
      Word Target = Symbols.at(It.Sym);
      if (!L.Far[I]) {
        int32_t Off = static_cast<int32_t>(
            (static_cast<int64_t>(Target) - ItemAddr) / 4);
        EmitInstr(It.WhenZero
                      ? Instruction::jumpIfZero(It.F, It.A, It.B, Off)
                      : Instruction::jumpIfNotZero(It.F, It.A, It.B, Off));
      } else {
        // Inverted condition skips the 3-instruction far jump.
        EmitInstr(It.WhenZero
                      ? Instruction::jumpIfNotZero(It.F, It.A, It.B, 4)
                      : Instruction::jumpIfZero(It.F, It.A, It.B, 4));
        EmitLiValue(abi::TmpReg, Target);
        EmitInstr(Instruction::jump(Func::Snd, abi::TmpReg,
                                    Operand::reg(abi::TmpReg)));
      }
      break;
    }
    case Kind::Jump: {
      Word Target = Symbols.at(It.Sym);
      if (!L.Far[I]) {
        int32_t Delta = static_cast<int32_t>(Target - ItemAddr);
        EmitInstr(Instruction::jump(Func::Add, abi::TmpReg,
                                    Operand::imm(Delta)));
      } else {
        EmitLiValue(abi::TmpReg, Target);
        EmitInstr(Instruction::jump(Func::Snd, abi::TmpReg,
                                    Operand::reg(abi::TmpReg)));
      }
      break;
    }
    case Kind::Call: {
      EmitLiValue(abi::TmpReg, Symbols.at(It.Sym));
      EmitInstr(
          Instruction::jump(Func::Snd, It.Reg, Operand::reg(abi::TmpReg)));
      break;
    }
    case Kind::Word:
      EmitWord(It.Data);
      break;
    case Kind::Bytes:
      Out.Bytes.insert(Out.Bytes.end(), It.Blob.begin(), It.Blob.end());
      break;
    case Kind::Align:
      while ((BaseAddr + Out.Bytes.size()) % It.Data != 0)
        Out.Bytes.push_back(0);
      break;
    case Kind::Space:
      Out.Bytes.insert(Out.Bytes.end(), It.Data, 0);
      break;
    }
  }
  assert(Out.Bytes.size() == L.TotalSize && "layout/encoding size mismatch");
  return Out;
}
