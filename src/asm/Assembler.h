//===- asm/Assembler.h - Silver assembler ----------------------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-phase assembler for Silver machine code with labels, data
/// directives, and pseudo-instructions.  Conditional branches carry only a
/// 10-bit word offset and unconditional relative jumps a 6-bit byte
/// offset, so the assembler performs iterative branch relaxation: every
/// symbolic control-flow item starts in its short form and grows to a
/// far-form sequence when its target turns out to be out of range.
/// Because item sizes only ever grow, relaxation reaches a fixpoint.
///
/// The CakeML compiler's Silver backend performs the same job in the
/// paper (the `compile` function of theorem (3) produces "bytes of
/// machine code"); here the assembler is shared by the MiniCake code
/// generator, the hand-written system-call routines, and the startup code.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ASM_ASSEMBLER_H
#define SILVER_ASM_ASSEMBLER_H

#include "isa/Abi.h"
#include "isa/Encoding.h"
#include "support/Result.h"

#include <map>
#include <string>
#include <vector>

namespace silver {
namespace assembler {

/// A resolved program: raw bytes plus the symbol table.
struct Assembled {
  Word BaseAddr = 0;
  std::vector<uint8_t> Bytes;
  std::map<std::string, Word> Symbols;

  /// Address of \p Label; asserts the label exists.
  Word addressOf(const std::string &Label) const;
};

/// Program builder.  Emit instructions, labels, pseudo-instructions and
/// data, then call assemble() with the load address.
class Assembler {
public:
  /// Defines \p Name at the current position.  Names must be unique.
  void label(const std::string &Name);

  /// Emits a fixed machine instruction.
  void emit(const isa::Instruction &I);

  /// Loads a 32-bit constant using the minimal sequence: one LoadConstant
  /// when the value (or its negation) fits in 21 bits, otherwise
  /// LoadConstant + LoadUpperConstant.
  void emitLi(unsigned Reg, Word Value);

  /// Loads the address of \p Label.  Always the two-instruction form so
  /// the item size is independent of layout.
  void emitLiLabel(unsigned Reg, const std::string &Label);

  /// Conditional branch: if alu(F, A, B) ==/!= 0, go to \p Label.
  /// Short form is one JumpIfZero/JumpIfNotZero; the far form inverts the
  /// condition over an absolute jump through \p abi::TmpReg.
  void emitBranch(bool WhenZero, isa::Func F, isa::Operand A,
                  isa::Operand B, const std::string &Label);

  /// Unconditional jump to \p Label.  Short form is a single relative
  /// Jump; far form materialises the address in \p abi::TmpReg.
  void emitJump(const std::string &Label);

  /// Call: sets \p LinkReg to the return address and jumps to \p Label.
  void emitCall(const std::string &Label, unsigned LinkReg = abi::LinkReg);

  /// Return: absolute jump to \p LinkReg (link write goes to TmpReg).
  void emitRet(unsigned LinkReg = abi::LinkReg);

  /// The canonical halt self-loop.
  void emitHalt();

  /// Emits a 32-bit data word.
  void word(Word Value);

  /// Emits raw bytes.
  void bytes(const std::vector<uint8_t> &Data);

  /// Emits the bytes of \p Text (no terminator).
  void ascii(const std::string &Text);

  /// Pads with zero bytes to the given power-of-two alignment.
  void align(Word Alignment);

  /// Emits \p Count zero bytes.
  void space(Word Count);

  /// Lays out and encodes the program at \p BaseAddr.  Fails on duplicate
  /// or undefined labels.  External symbols (e.g. addresses in other
  /// images) can be pre-bound via \p Externs.
  Result<Assembled>
  assemble(Word BaseAddr,
           const std::map<std::string, Word> &Externs = {}) const;

  /// Number of items emitted so far (for tests).
  size_t size() const { return Items.size(); }

private:
  enum class Kind : uint8_t {
    Fixed,    ///< a literal instruction
    LiLabel,  ///< load address of a label (2 instructions)
    Branch,   ///< conditional branch to label (relaxable: 1 or 4)
    Jump,     ///< unconditional jump to label (relaxable: 1 or 3)
    Call,     ///< call label (3 instructions)
    Label,
    Word,
    Bytes,
    Align,
    Space,
  };
  struct Item {
    Kind K = Kind::Fixed;
    isa::Instruction Instr;       // Fixed
    std::string Sym;              // LiLabel/Branch/Jump/Call/Label
    unsigned Reg = 0;             // LiLabel/Call link register
    bool WhenZero = false;        // Branch
    isa::Func F = isa::Func::Add; // Branch
    isa::Operand A, B;            // Branch
    silver::Word Data = 0;        // Word/Align/Space
    std::vector<uint8_t> Blob;    // Bytes
  };

  std::vector<Item> Items;
};

} // namespace assembler
} // namespace silver

#endif // SILVER_ASM_ASSEMBLER_H
