//===- asm/Disassembler.cpp - Silver disassembler --------------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "asm/Disassembler.h"

#include "support/StringUtils.h"

using namespace silver;
using namespace silver::assembler;

std::vector<DecodedInstr>
silver::assembler::decodeRegion(const std::vector<uint8_t> &Bytes,
                                Word BaseAddr) {
  std::vector<DecodedInstr> Out;
  Out.reserve(Bytes.size() / 4);
  for (size_t I = 0; I + 4 <= Bytes.size(); I += 4) {
    DecodedInstr D;
    D.Addr = BaseAddr + static_cast<Word>(I);
    D.Encoded = static_cast<Word>(Bytes[I]) |
                (static_cast<Word>(Bytes[I + 1]) << 8) |
                (static_cast<Word>(Bytes[I + 2]) << 16) |
                (static_cast<Word>(Bytes[I + 3]) << 24);
    if (Result<isa::Instruction> Decoded = isa::decode(D.Encoded)) {
      D.Valid = true;
      D.Instr = *Decoded;
    }
    Out.push_back(D);
  }
  return Out;
}

std::vector<DisasmLine>
silver::assembler::disassemble(const std::vector<uint8_t> &Bytes,
                               Word BaseAddr) {
  std::vector<DisasmLine> Lines;
  size_t I = 0;
  for (; I + 4 <= Bytes.size(); I += 4) {
    DisasmLine Line;
    Line.Addr = BaseAddr + static_cast<Word>(I);
    Line.Encoded = static_cast<Word>(Bytes[I]) |
                   (static_cast<Word>(Bytes[I + 1]) << 8) |
                   (static_cast<Word>(Bytes[I + 2]) << 16) |
                   (static_cast<Word>(Bytes[I + 3]) << 24);
    Result<isa::Instruction> Decoded = isa::decode(Line.Encoded);
    if (Decoded) {
      Line.Valid = true;
      Line.Text = isa::toString(*Decoded);
    } else {
      Line.Text = ".word " + toHex(Line.Encoded);
    }
    Lines.push_back(std::move(Line));
  }
  for (; I < Bytes.size(); ++I) {
    DisasmLine Line;
    Line.Addr = BaseAddr + static_cast<Word>(I);
    Line.Encoded = Bytes[I];
    Line.Text = ".byte " + std::to_string(Bytes[I]);
    Lines.push_back(std::move(Line));
  }
  return Lines;
}

std::string
silver::assembler::formatListing(const std::vector<DisasmLine> &Lines) {
  std::string Out;
  for (const DisasmLine &Line : Lines) {
    Out += toHex(Line.Addr);
    Out += ": ";
    Out += toHex(Line.Encoded);
    Out += "  ";
    Out += Line.Text;
    Out += '\n';
  }
  return Out;
}
