//===- asm/Disassembler.h - Silver disassembler ----------------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Disassembles Silver machine code back to a textual listing.  Used by
/// the examples and by debugging aids; also the inverse half of the
/// encode/decode round-trip property tests.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ASM_DISASSEMBLER_H
#define SILVER_ASM_DISASSEMBLER_H

#include "isa/Encoding.h"

#include <string>
#include <vector>

namespace silver {
namespace assembler {

/// One line of a disassembly listing.
struct DisasmLine {
  Word Addr = 0;
  Word Encoded = 0;
  bool Valid = false; ///< false for words that do not decode
  std::string Text;   ///< instruction text, or ".word 0x..." when invalid
};

/// One decoded slot of a code region: the machine-level view the static
/// analyses (analysis/Cfg.h) consume, as opposed to the textual view of
/// DisasmLine.  Invalid slots keep their raw encoding so an audit can
/// report the offending word.
struct DecodedInstr {
  Word Addr = 0;
  Word Encoded = 0;
  bool Valid = false;
  isa::Instruction Instr; ///< meaningful only when Valid
};

/// Decodes every word of \p Bytes loaded at \p BaseAddr.  A trailing
/// partial word is dropped (it cannot execute: instruction fetch is
/// word-sized and word-aligned).
std::vector<DecodedInstr> decodeRegion(const std::vector<uint8_t> &Bytes,
                                       Word BaseAddr);

/// Disassembles \p Bytes loaded at \p BaseAddr.  A trailing partial word
/// is rendered as ".byte" lines.
std::vector<DisasmLine> disassemble(const std::vector<uint8_t> &Bytes,
                                    Word BaseAddr);

/// Renders a listing as "ADDR: ENCODING  text" lines.
std::string formatListing(const std::vector<DisasmLine> &Lines);

} // namespace assembler
} // namespace silver

#endif // SILVER_ASM_DISASSEMBLER_H
