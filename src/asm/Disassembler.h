//===- asm/Disassembler.h - Silver disassembler ----------------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Disassembles Silver machine code back to a textual listing.  Used by
/// the examples and by debugging aids; also the inverse half of the
/// encode/decode round-trip property tests.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ASM_DISASSEMBLER_H
#define SILVER_ASM_DISASSEMBLER_H

#include "isa/Encoding.h"

#include <string>
#include <vector>

namespace silver {
namespace assembler {

/// One line of a disassembly listing.
struct DisasmLine {
  Word Addr = 0;
  Word Encoded = 0;
  bool Valid = false; ///< false for words that do not decode
  std::string Text;   ///< instruction text, or ".word 0x..." when invalid
};

/// Disassembles \p Bytes loaded at \p BaseAddr.  A trailing partial word
/// is rendered as ".byte" lines.
std::vector<DisasmLine> disassemble(const std::vector<uint8_t> &Bytes,
                                    Word BaseAddr);

/// Renders a listing as "ADDR: ENCODING  text" lines.
std::string formatListing(const std::vector<DisasmLine> &Lines);

} // namespace assembler
} // namespace silver

#endif // SILVER_ASM_DISASSEMBLER_H
