//===- machine/InterferenceCheck.cpp - Syscall vs oracle checker -----------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "machine/InterferenceCheck.h"

#include "isa/Abi.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace silver;
using namespace silver::machine;
using silver::isa::MachineState;

static bool isClobbered(unsigned Reg) {
  const auto &Clobbered = sys::syscallClobberedRegs();
  return std::find(Clobbered.begin(), Clobbered.end(), Reg) !=
         Clobbered.end();
}

Result<void>
silver::machine::checkInterferenceImpl(const MachineState &AtEntry,
                                       const sys::MemoryLayout &Layout,
                                       const ffi::BasisFfi &Model,
                                       uint64_t StepBudget) {
  if (AtEntry.PC != Layout.SyscallCodeBase)
    return Error("interference check: state is not at the FFI entry point");

  unsigned Index = AtEntry.Regs[abi::FfiIndexReg];
  const auto &Names = ffi::BasisFfi::callNames();
  if (Index >= Names.size())
    return Error("interference check: unknown FFI index");
  const std::string &Name = Names[Index];
  bool IsExit = Index == unsigned(sys::FfiIndex::Exit);

  Word ConfPtr = AtEntry.Regs[abi::FfiConfReg];
  Word ConfLen = AtEntry.Regs[abi::FfiConfLenReg];
  Word BytesPtr = AtEntry.Regs[abi::FfiBytesReg];
  Word BytesLen = AtEntry.Regs[abi::FfiBytesLenReg];
  Word ReturnAddr = AtEntry.Regs[abi::LinkReg];
  if (!AtEntry.inRange(ConfPtr, ConfLen) ||
      !AtEntry.inRange(BytesPtr, BytesLen))
    return Error("interference check: FFI argument arrays out of range");

  // Side 1: the oracle.
  ffi::BasisFfi ModelAfter = Model;
  ffi::FfiResult R =
      ModelAfter.call(Name, AtEntry.readBytes(ConfPtr, ConfLen),
                      AtEntry.readBytes(BytesPtr, BytesLen));
  if (R.Outcome == ffi::FfiOutcome::Fail)
    return Error("interference check: oracle rejected the call (the check "
                 "only covers well-formed call states)");

  MachineState Spec = AtEntry;
  if (R.Outcome == ffi::FfiOutcome::Exit) {
    Spec.writeWord(Layout.ExitFlagAddr, 1);
    Spec.writeWord(Layout.ExitCodeAddr, R.ExitCode);
    Spec.writeWord(Layout.SyscallIdAddr, Index);
  } else {
    applyFfiInterfer(Spec, Layout, Index, R.Bytes, ModelAfter);
  }

  // Side 2: the real system-call machine code under the ISA semantics.
  MachineState Impl = AtEntry;
  sys::SysEnv Env(Layout);
  uint64_t Steps = 0;
  for (;;) {
    if (!IsExit && Impl.PC == ReturnAddr)
      break;
    if (IsExit && isa::isHalted(Impl))
      break;
    if (Steps++ >= StepBudget)
      return Error("interference check: system-call code did not return "
                   "within the step budget");
    isa::StepResult S = isa::step(Impl, Env);
    if (!S.ok())
      return Error("interference check: system-call code faulted");
  }

  // Agreement: memory must be identical byte-for-byte (ffi_interfer
  // prescribes the book-keeping exactly).
  if (Impl.Memory != Spec.Memory) {
    for (size_t I = 0, E = Impl.Memory.size(); I != E; ++I)
      if (Impl.Memory[I] != Spec.Memory[I])
        return Error("interference check (" + Name +
                     "): memory differs at " + toHex(static_cast<Word>(I)) +
                     ": impl=" + std::to_string(Impl.Memory[I]) +
                     " spec=" + std::to_string(Spec.Memory[I]));
  }

  // Non-clobbered registers are CakeML-private state: both sides must
  // leave them untouched.
  for (unsigned Reg = 0; Reg != isa::NumRegs; ++Reg) {
    if (isClobbered(Reg))
      continue;
    if (Impl.Regs[Reg] != AtEntry.Regs[Reg])
      return Error("interference check (" + Name + "): r" +
                   std::to_string(Reg) + " was clobbered by the impl");
    if (Spec.Regs[Reg] != AtEntry.Regs[Reg])
      return Error("interference check (" + Name + "): r" +
                   std::to_string(Reg) + " was clobbered by ffi_interfer");
  }

  if (!IsExit && Impl.PC != ReturnAddr)
    return Error("interference check: impl did not return to the caller");

  // Observable IO: what the environment collected must equal the
  // filesystem model's evolution.
  std::string ExpectStdout = ModelAfter.Fs.StdoutData.substr(
      Model.Fs.StdoutData.size());
  std::string ExpectStderr = ModelAfter.Fs.StderrData.substr(
      Model.Fs.StderrData.size());
  if (Env.collectedStdout() != ExpectStdout)
    return Error("interference check (" + Name +
                 "): stdout mismatch: impl \"" +
                 escapeString(Env.collectedStdout()) + "\" vs model \"" +
                 escapeString(ExpectStdout) + "\"");
  if (Env.collectedStderr() != ExpectStderr)
    return Error("interference check (" + Name + "): stderr mismatch");

  if (IsExit) {
    sys::ExitStatus S = sys::readExitStatus(Impl, Layout);
    if (!S.Exited || S.Code != R.ExitCode)
      return Error("interference check: exit status not recorded");
  }
  return {};
}
