//===- machine/MachineSem.h - CakeML's target machine semantics -*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's machine_sem (§5): repeated application of the Silver ISA's
/// Next function, except that when execution reaches an entry point to
/// external code (an FFI call), the semantics consults the interference
/// oracle — here the basis FFI model — to determine the resulting machine
/// state.  The oracle's effect on the state is prescribed by ffi_interfer:
/// it writes the returned bytes to the shared array, restores the PC to
/// the return address, leaves CakeML-private state unchanged, and updates
/// the book-keeping memory used by the external call.
///
/// This is the *specification-level* execution: system calls happen by
/// oracle, not by machine code.  The ISA-level execution (sys::SysEnv +
/// isa::run) runs the real system-call code; machine::checkInterferenceImpl
/// verifies the two agree (the paper's theorems (11)-(13)).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_MACHINE_MACHINESEM_H
#define SILVER_MACHINE_MACHINESEM_H

#include "ffi/BasisFfi.h"
#include "isa/ExecBackend.h"
#include "isa/Interp.h"
#include "sys/Image.h"

#include <memory>

namespace silver {
namespace machine {

/// Exit code compiled programs use when the heap is exhausted: the
/// extend_with_oom behaviour of the compiler correctness theorem.
inline constexpr uint8_t OomExitCode = 2;

/// Machine behaviours (paper §2.3): Terminate with an exit code (Success
/// = code 0; OomExitCode is the permitted out-of-memory prefix
/// behaviour), Fail for ISA faults, or still running after the step
/// budget.
enum class BehaviourKind : uint8_t {
  Terminated,
  Failed,
  OutOfSteps,
};

/// The error message a Failed run carries when the failure is the
/// interference oracle rejecting an ill-formed FFI call state (bad call
/// index, argument arrays out of range, or a basis call whose
/// preconditions do not hold).  The paper's ffi_interfer is specified
/// only for well-formed call states — the hand-written syscall code is
/// verified against it on exactly that domain — so consumers comparing
/// machine_sem against levels that run the real syscall code (the fuzz
/// oracle) treat this failure as "outside the modeled domain" rather
/// than as a semantic divergence.
inline constexpr const char *OracleRejectedMessage =
    "machine-sem: FFI call outside the oracle's well-formed domain";

struct Behaviour {
  BehaviourKind Kind = BehaviourKind::OutOfSteps;
  uint8_t ExitCode = 0;
  isa::StepFault Fault = isa::StepFault::None;
  uint64_t Steps = 0;
  /// True when Kind == Failed because the interference oracle rejected
  /// an ill-formed FFI call (see OracleRejectedMessage).
  bool OracleRejected = false;

  bool terminatedSuccessfully() const {
    return Kind == BehaviourKind::Terminated && ExitCode == 0;
  }
  bool terminatedWithOom() const {
    return Kind == BehaviourKind::Terminated && ExitCode == OomExitCode;
  }
};

/// Applies the interference-oracle step for FFI call \p Index to \p State:
/// the paper's ffi_interfer function.  \p ResultBytes are the bytes the
/// oracle returned; \p FfiAfter is the oracle state after the call (used
/// for the in-memory book-keeping: the stdin offset cell, the output
/// buffer, the called-id cell).  Clobbered scratch registers are set to
/// zero — compiled code never reads them across a call.  The oracle
/// writes memory behind the execution backend's back, so the backend
/// running this state must drop every derived artifact (decoded slots,
/// compiled blocks) over the written ranges: pass it as \p Backend
/// (null when execution holds no derived state).
void applyFfiInterfer(isa::MachineState &State,
                      const sys::MemoryLayout &Layout, unsigned Index,
                      const std::vector<uint8_t> &ResultBytes,
                      const ffi::BasisFfi &FfiAfter,
                      isa::ExecBackend *Backend = nullptr);

/// The machine semantics: steps \p State with \p Ffi as the interference
/// oracle for FFI calls (detected as the PC reaching the system-call
/// entry point).  On an "exit" call, terminates with the code.
class MachineSem {
public:
  /// \p Backend is the ISA execution backend the semantics steps with
  /// (isa/ExecBackend.h); null selects the reference interpreter.  The
  /// oracle arm notifies it of every interference write, so a
  /// translating backend (the JIT) stays exact across FFI boundaries.
  MachineSem(isa::MachineState State, ffi::BasisFfi Ffi,
             sys::MemoryLayout Layout,
             std::unique_ptr<isa::ExecBackend> Backend = nullptr)
      : State(std::move(State)), Ffi(std::move(Ffi)),
        Layout(std::move(Layout)),
        Backend(Backend ? std::move(Backend) : isa::makeInterpBackend()) {}

  /// Runs for at most \p MaxSteps ISA steps (oracle steps count as one).
  Behaviour run(uint64_t MaxSteps);

  /// Performs exactly one step (ISA or oracle).  Returns false when the
  /// program has terminated or faulted; details land in LastBehaviour.
  bool stepOnce();

  /// Streams retire/memory events for every ISA step and an FFI span for
  /// every oracle consultation to \p O (null detaches; not owned).  The
  /// uninstrumented path is unchanged.
  void attachObserver(obs::Observer *O) {
    Obs = O;
    Ffi.attachObserver(O);
  }

  const isa::MachineState &state() const { return State; }
  const ffi::BasisFfi &ffi() const { return Ffi; }
  Behaviour LastBehaviour;

private:
  /// The oracle-consultation arm of stepOnce (PC at the FFI entry):
  /// validates the call registers, runs the interference oracle, applies
  /// ffi_interfer.  Returns false on Failed/Terminated.
  bool oracleStep();

  isa::MachineState State;
  ffi::BasisFfi Ffi;
  sys::MemoryLayout Layout;
  obs::Observer *Obs = nullptr;
  uint64_t RetireIndex = 0;
  /// The ISA execution backend; owns all derived execution state
  /// (decode cache, compiled blocks) and is kept valid across
  /// interpreter stores and oracle interference writes.
  std::unique_ptr<isa::ExecBackend> Backend;
};

} // namespace machine
} // namespace silver

#endif // SILVER_MACHINE_MACHINESEM_H
