//===- machine/MachineSem.cpp - CakeML's target machine semantics ----------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "machine/MachineSem.h"

#include "isa/Abi.h"

using namespace silver;
using namespace silver::machine;
using silver::isa::MachineState;

void silver::machine::applyFfiInterfer(MachineState &State,
                                       const sys::MemoryLayout &Layout,
                                       unsigned Index,
                                       const std::vector<uint8_t> &ResultBytes,
                                       const ffi::BasisFfi &FfiAfter,
                                       isa::ExecBackend *Backend) {
  Word BytesPtr = State.Regs[abi::FfiBytesReg];
  Word ConfPtr = State.Regs[abi::FfiConfReg];
  Word ConfLen = State.Regs[abi::FfiConfLenReg];

  // Book-keeping memory used by the external call (outside CakeML's
  // memory domain md): the called-id cell, the stdin offset, and for
  // writes the output buffer.
  State.writeWord(Layout.SyscallIdAddr, Index);
  if (Backend)
    Backend->invalidate(Layout.SyscallIdAddr, 4);
  State.writeWord(Layout.StdinBase + 4,
                  static_cast<Word>(FfiAfter.Fs.StdinOffset));
  if (Backend)
    Backend->invalidate(Layout.StdinBase + 4, 4);
  if (Index == unsigned(sys::FfiIndex::Write) && !ResultBytes.empty() &&
      ResultBytes[0] == 0) {
    uint64_t Fd = ffi::bytesToU64(State.readBytes(ConfPtr, ConfLen));
    Word Count = ffi::bytesToU16(ResultBytes.data() + 1);
    const std::string &Stream =
        Fd == ffi::StderrFd ? FfiAfter.Fs.StderrData : FfiAfter.Fs.StdoutData;
    State.writeWord(Layout.OutBufBase, static_cast<Word>(Fd));
    State.writeWord(Layout.OutBufBase + 4, Count);
    for (Word I = 0; I != Count; ++I)
      State.writeByte(Layout.OutBufBase + 8 + I,
                      static_cast<uint8_t>(
                          Stream[Stream.size() - Count + I]));
    if (Backend)
      Backend->invalidate(Layout.OutBufBase, 8 + Count);
  }

  // The shared byte array receives the oracle's result.
  State.writeBytes(BytesPtr, ResultBytes);
  if (Backend && !ResultBytes.empty())
    Backend->invalidate(BytesPtr, static_cast<Word>(ResultBytes.size()));

  // Scratch registers are clobbered deterministically; the PC returns to
  // the caller per the calling convention.
  State.PC = State.Regs[abi::LinkReg];
  for (unsigned Reg : sys::syscallClobberedRegs())
    State.Regs[Reg] = 0;
}

bool MachineSem::oracleStep() {
  // An FFI call: consult the interference oracle.
  unsigned Index = State.Regs[abi::FfiIndexReg];
  const auto &Names = ffi::BasisFfi::callNames();
  Word ConfPtr = State.Regs[abi::FfiConfReg];
  Word ConfLen = State.Regs[abi::FfiConfLenReg];
  Word BytesPtr = State.Regs[abi::FfiBytesReg];
  Word BytesLen = State.Regs[abi::FfiBytesLenReg];
  if (Index >= Names.size() || !State.inRange(ConfPtr, ConfLen) ||
      !State.inRange(BytesPtr, BytesLen)) {
    LastBehaviour.Kind = BehaviourKind::Failed;
    LastBehaviour.OracleRejected = true;
    return false;
  }
  ffi::FfiResult R = Ffi.call(Names[Index], State.readBytes(ConfPtr, ConfLen),
                              State.readBytes(BytesPtr, BytesLen));
  if (R.Outcome == ffi::FfiOutcome::Fail) {
    LastBehaviour.Kind = BehaviourKind::Failed;
    LastBehaviour.OracleRejected = true;
    return false;
  }
  if (R.Outcome == ffi::FfiOutcome::Exit) {
    State.writeWord(Layout.ExitFlagAddr, 1);
    State.writeWord(Layout.ExitCodeAddr, R.ExitCode);
    Backend->invalidate(Layout.ExitFlagAddr, 4);
    Backend->invalidate(Layout.ExitCodeAddr, 4);
    LastBehaviour.Kind = BehaviourKind::Terminated;
    LastBehaviour.ExitCode = R.ExitCode;
    return false;
  }
  applyFfiInterfer(State, Layout, Index, R.Bytes, Ffi, Backend.get());
  return true;
}

bool MachineSem::stepOnce() {
  ++LastBehaviour.Steps;

  if (State.PC == Layout.SyscallCodeBase)
    return oracleStep();

  isa::HaltOrStep R =
      Obs ? Backend->stepUnlessHalted(State, isa::nullEnv(), *Obs,
                                      RetireIndex++)
          : Backend->stepUnlessHalted(State, isa::nullEnv());
  if (R.Halted) {
    // A direct halt without an exit call: report the recorded status
    // (zero when no exit happened; hand-written programs use this).
    sys::ExitStatus S = sys::readExitStatus(State, Layout);
    LastBehaviour.Kind = BehaviourKind::Terminated;
    LastBehaviour.ExitCode = S.Exited ? S.Code : 0;
    return false;
  }
  if (!R.S.ok()) {
    LastBehaviour.Kind = BehaviourKind::Failed;
    LastBehaviour.Fault = R.S.Fault;
    return false;
  }
  return true;
}

Behaviour MachineSem::run(uint64_t MaxSteps) {
  LastBehaviour = Behaviour();
  if (Obs) {
    while (LastBehaviour.Steps < MaxSteps) {
      if (!stepOnce())
        return LastBehaviour;
    }
    LastBehaviour.Kind = BehaviourKind::OutOfSteps;
    return LastBehaviour;
  }

  // Uninstrumented: execute backend bursts that stop at the FFI entry,
  // keeping the hot loop inside the backend's runUntilPc instead of
  // paying a cross-call per instruction.  Step accounting matches the stepOnce
  // loop exactly: an oracle consultation, the halt-detecting step, and a
  // faulting attempt each cost one step, and none of them runs once the
  // budget is exhausted.
  while (true) {
    isa::RunStopResult R =
        Backend->runUntilPc(State, isa::nullEnv(),
                            MaxSteps - LastBehaviour.Steps,
                            Layout.SyscallCodeBase);
    LastBehaviour.Steps += R.Steps;
    if (R.AtStopPc) {
      ++LastBehaviour.Steps;
      if (!oracleStep())
        return LastBehaviour;
      continue;
    }
    if (R.Halted) {
      ++LastBehaviour.Steps;
      sys::ExitStatus S = sys::readExitStatus(State, Layout);
      LastBehaviour.Kind = BehaviourKind::Terminated;
      LastBehaviour.ExitCode = S.Exited ? S.Code : 0;
      return LastBehaviour;
    }
    if (R.Fault != isa::StepFault::None) {
      ++LastBehaviour.Steps;
      LastBehaviour.Kind = BehaviourKind::Failed;
      LastBehaviour.Fault = R.Fault;
      return LastBehaviour;
    }
    LastBehaviour.Kind = BehaviourKind::OutOfSteps;
    return LastBehaviour;
  }
}
