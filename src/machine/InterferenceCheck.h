//===- machine/InterferenceCheck.h - Syscall vs oracle checker -*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the paper's theorems (11)-(13): the
/// effect of an interference-oracle step can be obtained by normal
/// execution of the system-call machine code.  Given a machine state
/// poised at the FFI entry point, this check
///
///   1. runs the real system-call code under the ISA semantics
///      (ffi_read_ag-style execution: exists k. Next^k ms = ...), and
///   2. applies the oracle-prescribed transition (ffi_interfer) to a copy,
///
/// then verifies the two states agree: identical memory, identical
/// non-clobbered registers, the PC back at the return address (or a
/// recorded exit), and the environment's collected output matching the
/// model filesystem's evolution.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_MACHINE_INTERFERENCECHECK_H
#define SILVER_MACHINE_INTERFERENCECHECK_H

#include "machine/MachineSem.h"

namespace silver {
namespace machine {

/// Runs the dual execution described above from \p AtEntry (PC must be at
/// Layout.SyscallCodeBase with the FFI argument registers set).  \p Model
/// is the oracle state (not mutated; copies evolve).  Returns an error
/// describing the first disagreement, if any.
Result<void> checkInterferenceImpl(const isa::MachineState &AtEntry,
                                   const sys::MemoryLayout &Layout,
                                   const ffi::BasisFfi &Model,
                                   uint64_t StepBudget = 50'000'000);

} // namespace machine
} // namespace silver

#endif // SILVER_MACHINE_INTERFERENCECHECK_H
