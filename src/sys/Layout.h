//===- sys/Layout.h - Bare-metal memory layout (paper Fig. 2) --*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory layout for running MiniCake programs bare-metal on Silver,
/// following the paper's Figure 2:
///
///   startup code            (application-independent)
///   descriptor + exit cells (application-independent)
///   command line            [length | contents]
///   standard input          [length | offset | contents]
///   output buffer           [id | length | contents]
///   system calls            [called id | code]
///   CakeML-usable memory    (initially zeros; heap grows up, stack down)
///   CakeML-generated code+data   (at the top of memory)
///
/// Region capacities are parameters so tests can use small images; the
/// paper's stdin bound (stdin_size, about 5 MB) is available as
/// PaperStdinSize.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_SYS_LAYOUT_H
#define SILVER_SYS_LAYOUT_H

#include "support/Bits.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace silver {
namespace sys {

/// The paper's stdin_size constant: "about 5 MB".
inline constexpr Word PaperStdinSize = 5u << 20;

/// Capacities that shape a layout.
struct LayoutParams {
  Word MemSize = 4u << 20;       ///< total memory
  Word CmdlineCap = 4096;        ///< max joined command-line bytes
  Word StdinCap = 256u << 10;    ///< max pre-filled stdin bytes
  Word OutBufCap = (64u << 10) + 16; ///< output buffer contents capacity
  Word SyscallCodeCap = 16u << 10;   ///< system-call code capacity
  Word StartupCap = 512;             ///< startup code capacity
};

/// Computed region addresses.  All region bases are word-aligned.
struct MemoryLayout {
  LayoutParams Params;

  Word StartupBase = 0;     ///< startup code; initial PC
  Word DescriptorBase = 0;  ///< 8-word table of region addresses
  Word ExitFlagAddr = 0;    ///< 1 once exit was called
  Word ExitCodeAddr = 0;    ///< exit code word
  Word CmdlineBase = 0;     ///< [len][NUL-joined args]
  Word StdinBase = 0;       ///< [len][offset][bytes]
  Word OutBufBase = 0;      ///< [id][len][bytes]
  Word SyscallIdAddr = 0;   ///< last dispatched FFI index
  Word SyscallCodeBase = 0; ///< ffi_dispatch entry point
  Word HeapBase = 0;        ///< CakeML-usable memory start
  Word HeapEnd = 0;         ///< CakeML-usable memory end (= CodeBase)
  Word CodeBase = 0;        ///< program code+data

  /// Computes a layout for a program of \p ProgramSize bytes.  Fails when
  /// the regions do not fit in Params.MemSize.
  static Result<MemoryLayout> compute(const LayoutParams &Params,
                                      Word ProgramSize);

  /// Bytes of CakeML-usable memory.
  Word usableSize() const { return HeapEnd - HeapBase; }
};

/// The paper's cl_ok predicate: the command line is well-formed.  Args
/// must be NUL-free and non-empty, their joined size must fit the
/// command-line region, and the count must fit 16 bits.
Result<void> checkClOk(const std::vector<std::string> &CommandLine,
                       const LayoutParams &Params);

} // namespace sys
} // namespace silver

#endif // SILVER_SYS_LAYOUT_H
