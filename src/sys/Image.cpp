//===- sys/Image.cpp - Memory images and the lab environment ---------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "sys/Image.h"

#include "isa/Abi.h"
#include "support/StringUtils.h"

using namespace silver;
using namespace silver::sys;

/// Joins command-line arguments with NUL separators (the in-memory
/// command-line device format).
static std::string joinCommandLine(const std::vector<std::string> &Args) {
  std::string Joined;
  for (size_t I = 0, E = Args.size(); I != E; ++I) {
    if (I != 0)
      Joined.push_back('\0');
    Joined += Args[I];
  }
  return Joined;
}

static void writeWordTo(std::vector<uint8_t> &Mem, Word Addr, Word Value) {
  Mem[Addr] = static_cast<uint8_t>(Value);
  Mem[Addr + 1] = static_cast<uint8_t>(Value >> 8);
  Mem[Addr + 2] = static_cast<uint8_t>(Value >> 16);
  Mem[Addr + 3] = static_cast<uint8_t>(Value >> 24);
}

static Word readWordFrom(const std::vector<uint8_t> &Mem, Word Addr) {
  return static_cast<Word>(Mem[Addr]) |
         (static_cast<Word>(Mem[Addr + 1]) << 8) |
         (static_cast<Word>(Mem[Addr + 2]) << 16) |
         (static_cast<Word>(Mem[Addr + 3]) << 24);
}

Result<MemoryImage> silver::sys::buildImage(const ImageSpec &Spec) {
  if (Result<void> Cl = checkClOk(Spec.CommandLine, Spec.Params); !Cl)
    return Cl.error();
  if (Spec.StdinData.size() > Spec.Params.StdinCap)
    return Error("stdin data exceeds the stdin region capacity");

  Result<MemoryLayout> LayoutOr = MemoryLayout::compute(
      Spec.Params, static_cast<Word>(Spec.Program.size()));
  if (!LayoutOr)
    return LayoutOr.error();
  MemoryLayout L = *LayoutOr;

  Result<assembler::Assembled> Startup = buildStartupProgram(L);
  if (!Startup)
    return Startup.error();
  Result<assembler::Assembled> Syscalls = buildSyscallProgram(L);
  if (!Syscalls)
    return Syscalls.error();

  MemoryImage Image;
  Image.Layout = L;
  Image.Memory.assign(Spec.Params.MemSize, 0);

  // Startup code.
  std::copy(Startup->Bytes.begin(), Startup->Bytes.end(),
            Image.Memory.begin() + L.StartupBase);

  // Descriptor table: region addresses for tools and tests.
  const Word Desc[8] = {L.CmdlineBase,  L.StdinBase,       L.OutBufBase,
                        L.ExitFlagAddr, L.ExitCodeAddr,    L.SyscallIdAddr,
                        L.SyscallCodeBase, L.HeapBase};
  for (unsigned I = 0; I != 8; ++I)
    writeWordTo(Image.Memory, L.DescriptorBase + 4 * I, Desc[I]);

  // Command line: [length | contents].
  std::string Joined = joinCommandLine(Spec.CommandLine);
  writeWordTo(Image.Memory, L.CmdlineBase,
              static_cast<Word>(Joined.size()));
  std::copy(Joined.begin(), Joined.end(),
            Image.Memory.begin() + L.CmdlineBase + 4);

  // Standard input: [length | offset | contents].
  writeWordTo(Image.Memory, L.StdinBase,
              static_cast<Word>(Spec.StdinData.size()));
  writeWordTo(Image.Memory, L.StdinBase + 4, 0);
  std::copy(Spec.StdinData.begin(), Spec.StdinData.end(),
            Image.Memory.begin() + L.StdinBase + 8);

  // System calls: [called id | code].
  writeWordTo(Image.Memory, L.SyscallIdAddr, 0);
  std::copy(Syscalls->Bytes.begin(), Syscalls->Bytes.end(),
            Image.Memory.begin() + L.SyscallCodeBase);

  // Program code+data at the top of memory.
  std::copy(Spec.Program.begin(), Spec.Program.end(),
            Image.Memory.begin() + L.CodeBase);

  return Image;
}

isa::MachineState silver::sys::initialState(const MemoryImage &Image) {
  isa::MachineState State(Image.Memory.size());
  State.Memory = Image.Memory;
  State.PC = Image.Layout.StartupBase;
  return State;
}

ExitStatus silver::sys::readExitStatus(const isa::MachineState &State,
                                       const MemoryLayout &Layout) {
  ExitStatus S;
  S.Exited = State.readWord(Layout.ExitFlagAddr) != 0;
  S.Code = static_cast<uint8_t>(State.readWord(Layout.ExitCodeAddr));
  return S;
}

std::vector<uint8_t>
silver::sys::interruptObservable(const std::vector<uint8_t> &Memory,
                                 const MemoryLayout &Layout,
                                 std::string &StdoutData,
                                 std::string &StderrData) {
  // An exit interrupt carries the exit code as its observable byte.
  if (readWordFrom(Memory, Layout.ExitFlagAddr) != 0)
    return {static_cast<uint8_t>(readWordFrom(Memory, Layout.ExitCodeAddr))};

  Word Id = readWordFrom(Memory, Layout.OutBufBase);
  Word Len = readWordFrom(Memory, Layout.OutBufBase + 4);
  if (Len > Layout.Params.OutBufCap)
    Len = Layout.Params.OutBufCap;
  std::vector<uint8_t> Bytes(Memory.begin() + Layout.OutBufBase + 8,
                             Memory.begin() + Layout.OutBufBase + 8 + Len);
  if (Id == 1)
    StdoutData.append(Bytes.begin(), Bytes.end());
  else if (Id == 2)
    StderrData.append(Bytes.begin(), Bytes.end());
  return Bytes;
}

std::vector<uint8_t> SysEnv::onInterrupt(isa::MachineState &State) {
  return interruptObservable(State.Memory, Layout, Stdout, Stderr);
}

Result<void> silver::sys::validateInstalled(const isa::MachineState &State,
                                            const MemoryImage &Image,
                                            const ImageSpec &Spec) {
  const MemoryLayout &L = Image.Layout;

  // (i) Registers 1-4 provide accurate memory information.
  if (State.Regs[abi::MemStartReg] != L.HeapBase)
    return Error("installed: r1 does not hold the usable-memory start");
  if (State.Regs[abi::MemEndReg] != L.HeapEnd)
    return Error("installed: r2 does not hold the usable-memory end");
  if (State.Regs[abi::FfiTableReg] != L.SyscallCodeBase)
    return Error("installed: r3 does not hold the FFI entry point");
  if (State.Regs[abi::LayoutReg] != L.DescriptorBase)
    return Error("installed: r4 does not hold the layout descriptor");

  // (ii)+(iii) Code and data of the program are in memory and the PC
  // points at the first instruction.
  if (!State.inRange(L.CodeBase, static_cast<Word>(Spec.Program.size())))
    return Error("installed: program does not fit in memory");
  for (size_t I = 0, E = Spec.Program.size(); I != E; ++I)
    if (State.Memory[L.CodeBase + I] != Spec.Program[I])
      return Error("installed: program bytes corrupted at offset " +
                   std::to_string(I));
  if (State.PC != L.CodeBase)
    return Error("installed: PC does not point at the program entry");

  // (iv) Alignment and non-overlap.  This is the assumption the paper
  // found to be inconsistent before fixing (§6.1); here every pointer is
  // checked against the same alignment rule.
  for (Word Addr : {L.CmdlineBase, L.StdinBase, L.OutBufBase,
                    L.SyscallCodeBase, L.HeapBase, L.HeapEnd, L.CodeBase})
    if (!isAligned(Addr, 4))
      return Error("installed: region base " + toHex(Addr) +
                   " is not word-aligned");
  if (L.HeapBase >= L.HeapEnd)
    return Error("installed: empty usable-memory region");
  if (L.HeapEnd > L.CodeBase)
    return Error("installed: usable memory overlaps the code section");

  // Command-line and stdin devices are well-formed.
  if (Result<void> Cl = checkClOk(Spec.CommandLine, L.Params); !Cl)
    return Cl.error();
  Word ClLen = readWordFrom(State.Memory, L.CmdlineBase);
  if (ClLen > L.Params.CmdlineCap)
    return Error("installed: command-line region length out of range");
  Word StdinLen = readWordFrom(State.Memory, L.StdinBase);
  Word StdinOff = readWordFrom(State.Memory, L.StdinBase + 4);
  if (StdinLen > L.Params.StdinCap)
    return Error("installed: stdin region length out of range");
  if (StdinOff != 0)
    return Error("installed: stdin offset must start at zero");
  return {};
}

Result<BootResult> silver::sys::boot(const ImageSpec &Spec) {
  return boot(Spec, nullptr);
}

Result<BootResult> silver::sys::boot(const ImageSpec &Spec,
                                     obs::Observer *Obs) {
  Result<MemoryImage> Image = buildImage(Spec);
  if (!Image)
    return Image.error();

  BootResult Out{Image.take(), isa::MachineState(0), 0};
  Out.State = initialState(Out.Image);

  // Run the startup prefix: Next^k until the PC reaches the program.
  const uint64_t StartupBudget = 64;
  while (Out.State.PC != Out.Image.Layout.CodeBase) {
    if (Out.StartupSteps >= StartupBudget)
      return Error("startup code did not reach the program entry");
    isa::StepResult S =
        Obs ? isa::step(Out.State, isa::nullEnv(), *Obs, Out.StartupSteps)
            : isa::step(Out.State, isa::nullEnv());
    if (!S.ok())
      return Error("startup code faulted");
    ++Out.StartupSteps;
  }

  if (Result<void> V = validateInstalled(Out.State, Out.Image, Spec); !V)
    return V.error();
  return Out;
}
