//===- sys/Layout.cpp - Bare-metal memory layout (paper Fig. 2) ------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "sys/Layout.h"

using namespace silver;
using namespace silver::sys;

Result<MemoryLayout> MemoryLayout::compute(const LayoutParams &Params,
                                           Word ProgramSize) {
  MemoryLayout L;
  L.Params = Params;

  Word At = 0;
  L.StartupBase = At;
  At += Params.StartupCap;

  L.DescriptorBase = At;
  At += 8 * 4;
  L.ExitFlagAddr = At;
  At += 4;
  L.ExitCodeAddr = At;
  At += 4;

  At = alignUp(At, 4);
  L.CmdlineBase = At;
  At += 4 + Params.CmdlineCap;

  At = alignUp(At, 4);
  L.StdinBase = At;
  At += 8 + Params.StdinCap;

  At = alignUp(At, 4);
  L.OutBufBase = At;
  At += 8 + Params.OutBufCap;

  At = alignUp(At, 4);
  L.SyscallIdAddr = At;
  At += 4;
  L.SyscallCodeBase = At;
  At += Params.SyscallCodeCap;

  At = alignUp(At, 4096);
  L.HeapBase = At;

  Word ProgramSpan = alignUp(ProgramSize, 4096);
  if (ProgramSpan >= Params.MemSize)
    return Error("program does not fit in memory");
  L.CodeBase = Params.MemSize - ProgramSpan;
  L.HeapEnd = L.CodeBase;

  if (L.HeapBase >= L.HeapEnd)
    return Error("memory layout does not fit: no CakeML-usable memory "
                 "between " +
                 std::to_string(L.HeapBase) + " and " +
                 std::to_string(L.HeapEnd));
  // Leave a sane minimum for heap+stack.
  if (L.usableSize() < 16 * 1024)
    return Error("memory layout leaves under 16 KiB of usable memory");
  return L;
}

Result<void> silver::sys::checkClOk(const std::vector<std::string> &CommandLine,
                                    const LayoutParams &Params) {
  if (CommandLine.size() > 0xffff)
    return Error("cl_ok: too many command-line arguments");
  size_t Joined = 0;
  for (const std::string &Arg : CommandLine) {
    if (Arg.empty())
      return Error("cl_ok: empty command-line argument");
    if (Arg.find('\0') != std::string::npos)
      return Error("cl_ok: NUL byte inside command-line argument");
    Joined += Arg.size() + 1;
  }
  if (Joined > 0)
    --Joined; // no trailing separator
  if (Joined > Params.CmdlineCap)
    return Error("cl_ok: command line exceeds region capacity");
  return {};
}
