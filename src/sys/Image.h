//===- sys/Image.h - Memory images and the lab environment -----*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds bootable Silver memory images (paper Figure 2) from a compiled
/// program, a command line, and pre-filled standard input; provides the
/// environment model that plays the role of the paper's lab setup (the
/// ARM core's Python script reacting to interrupts); and implements the
/// installed/init validators — executable versions of the paper's
/// installed and init assumptions (§5, §6).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_SYS_IMAGE_H
#define SILVER_SYS_IMAGE_H

#include "isa/Interp.h"
#include "sys/Layout.h"
#include "sys/Syscalls.h"

#include <string>
#include <vector>

namespace silver {
namespace sys {

/// Everything needed to build a bootable image.
struct ImageSpec {
  std::vector<std::string> CommandLine;
  std::string StdinData;
  std::vector<uint8_t> Program; ///< machine code + data, loaded at CodeBase
  LayoutParams Params;
};

/// A built image: the full memory contents plus its layout.
struct MemoryImage {
  MemoryLayout Layout;
  std::vector<uint8_t> Memory;
};

/// Builds the image: startup code, descriptor table, command-line region,
/// stdin region, zeroed output buffer, system-call code, zeroed usable
/// memory, and the program at CodeBase.  Enforces cl_ok and the region
/// capacities.
Result<MemoryImage> buildImage(const ImageSpec &Spec);

/// The paper's init assumption (theorem (5)): a machine state with the
/// image in memory, PC at the startup code, everything else clear.
isa::MachineState initialState(const MemoryImage &Image);

/// Exit status recorded by the "exit" system call.
struct ExitStatus {
  bool Exited = false;
  uint8_t Code = 0;
};
ExitStatus readExitStatus(const isa::MachineState &State,
                          const MemoryLayout &Layout);

/// The observable action of one Interrupt notification against a raw
/// memory: reads the exit cells / output buffer, appends terminal text to
/// \p StdoutData / \p StderrData, and returns the observable bytes for
/// the IO-event trace.  Shared by the ISA-level SysEnv and the RTL-level
/// LabEnv so both layers expose identical behaviour.
std::vector<uint8_t> interruptObservable(const std::vector<uint8_t> &Memory,
                                         const MemoryLayout &Layout,
                                         std::string &StdoutData,
                                         std::string &StderrData);

/// The environment in the lab setup (paper §4.2): reacts to Interrupt by
/// reading the output buffer and appending it to the collected terminal
/// streams (stdout id 1, stderr id 2).  The bytes it extracts are what
/// the IO-event trace records.
class SysEnv : public isa::IsaEnv {
public:
  explicit SysEnv(MemoryLayout Layout) : Layout(std::move(Layout)) {}

  std::vector<uint8_t> onInterrupt(isa::MachineState &State) override;

  /// Terminal output collected so far (the paper's stdout/stderr of the
  /// io_events trace).
  const std::string &collectedStdout() const { return Stdout; }
  const std::string &collectedStderr() const { return Stderr; }

private:
  MemoryLayout Layout;
  std::string Stdout;
  std::string Stderr;
};

/// Checks the installed-state assumption (paper §5, points (i)-(iv)) on a
/// post-startup machine state: info registers r1-r4 accurate, program
/// code in memory at CodeBase with the PC pointing at it, regions
/// word-aligned and non-overlapping, command line well-formed, and stdin
/// within its capacity.  Point (v) — system calls behave as modelled —
/// is discharged dynamically by machine::checkInterferenceImpl.
Result<void> validateInstalled(const isa::MachineState &State,
                               const MemoryImage &Image,
                               const ImageSpec &Spec);

/// Convenience wrapper: builds the image, makes the initial state, runs
/// the startup code (the Next^k prefix of theorem (5)), and validates the
/// installed assumption before returning the state ready at CodeBase.
struct BootResult {
  MemoryImage Image;
  isa::MachineState State;
  uint64_t StartupSteps = 0;
};
Result<BootResult> boot(const ImageSpec &Spec);

/// As above, but reports each startup-code retire to \p Obs (retire
/// indices 0..StartupSteps-1, matching the RTL level, which retires the
/// startup code on the real core from reset).  Null behaves like boot().
Result<BootResult> boot(const ImageSpec &Spec, obs::Observer *Obs);

} // namespace sys
} // namespace silver

#endif // SILVER_SYS_IMAGE_H
