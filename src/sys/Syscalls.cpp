//===- sys/Syscalls.cpp - Bare-metal system calls for Silver ---------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "sys/Syscalls.h"

#include "isa/Abi.h"

using namespace silver;
using namespace silver::sys;
using assembler::Assembler;
using isa::Func;
using isa::Instruction;
using isa::Operand;
using isa::ShiftKind;

// Scratch registers available to syscall code.  TmpReg (r63) is reserved
// for the assembler's far-branch sequences and never holds a live value.
namespace {
constexpr unsigned T0 = abi::SysTmpReg;  // r56
constexpr unsigned T1 = abi::SysTmp2Reg; // r57
constexpr unsigned T2 = abi::Tmp2Reg;    // r62
constexpr unsigned Idx = 5;              // argument registers double as
constexpr unsigned Conf = 6;             // scratch once consumed
constexpr unsigned ConfLen = 7;
constexpr unsigned Buf = 8;
constexpr unsigned BufLen = 9;
} // namespace

const std::vector<unsigned> &silver::sys::syscallClobberedRegs() {
  static const std::vector<unsigned> Regs = {
      Idx, Conf, ConfLen, Buf, BufLen, T0, T1, T2, abi::TmpReg};
  return Regs;
}

static Operand R(unsigned Reg) { return Operand::reg(Reg); }
static Operand Imm(int32_t V) { return Operand::imm(V); }

/// addi Dst, Src, K  (K in [-32, 31])
static void addImm(Assembler &A, unsigned Dst, unsigned Src, int32_t K) {
  A.emit(Instruction::normal(Func::Add, Dst, R(Src), Imm(K)));
}

/// mov Dst, Src
static void mov(Assembler &A, unsigned Dst, unsigned Src) {
  A.emit(Instruction::normal(Func::Snd, Dst, Imm(0), R(Src)));
}

/// Dst = small constant (fits in a 6-bit signed operand).
static void movImm(Assembler &A, unsigned Dst, int32_t K) {
  A.emit(Instruction::normal(Func::Snd, Dst, Imm(0), Imm(K)));
}

/// Branch to \p Label when RegA == K.
static void branchIfEqImm(Assembler &A, unsigned RegA, int32_t K,
                          const std::string &Label) {
  A.emitBranch(/*WhenZero=*/false, Func::Equal, R(RegA), Imm(K), Label);
}

/// Branch to \p Label when RegA == RegB.
static void branchIfEqReg(Assembler &A, unsigned RegA, unsigned RegB,
                          const std::string &Label) {
  A.emitBranch(/*WhenZero=*/false, Func::Equal, R(RegA), R(RegB), Label);
}

/// Branch to \p Label when Reg == 0.
static void branchIfZero(Assembler &A, unsigned Reg,
                         const std::string &Label) {
  A.emitBranch(/*WhenZero=*/true, Func::Snd, Imm(0), R(Reg), Label);
}

/// Branch to \p Label when Reg != 0.
static void branchIfNotZero(Assembler &A, unsigned Reg,
                            const std::string &Label) {
  A.emitBranch(/*WhenZero=*/false, Func::Snd, Imm(0), R(Reg), Label);
}

/// Loads the byte at Src+K into Dst (clobbers Dst only).
static void loadByteAt(Assembler &A, unsigned Dst, unsigned Src, int32_t K) {
  if (K == 0) {
    A.emit(Instruction::loadMemByte(Dst, R(Src)));
    return;
  }
  addImm(A, Dst, Src, K);
  A.emit(Instruction::loadMemByte(Dst, R(Dst)));
}

/// Stores the low byte of Value at Addr+K, using \p Scratch for the
/// address when K != 0.
static void storeByteAt(Assembler &A, Operand Value, unsigned Addr,
                        int32_t K, unsigned Scratch) {
  if (K == 0) {
    A.emit(Instruction::storeMemByte(Value, R(Addr)));
    return;
  }
  addImm(A, Scratch, Addr, K);
  A.emit(Instruction::storeMemByte(Value, R(Scratch)));
}

/// Reads the 16-bit big-endian value at Src+K into Dst (clobbers Scratch).
static void loadU16At(Assembler &A, unsigned Dst, unsigned Src, int32_t K,
                      unsigned Scratch) {
  loadByteAt(A, Dst, Src, K);
  A.emit(Instruction::shift(ShiftKind::LogicalLeft, Dst, R(Dst), Imm(8)));
  loadByteAt(A, Scratch, Src, K + 1);
  A.emit(Instruction::normal(Func::Or, Dst, R(Dst), R(Scratch)));
}

/// Writes Value (< 2^16) big-endian to Buf[K], Buf[K+1] (clobbers both
/// scratch registers).
static void storeU16At(Assembler &A, unsigned Value, unsigned Base,
                       int32_t K, unsigned Scratch1, unsigned Scratch2) {
  A.emit(
      Instruction::shift(ShiftKind::LogicalRight, Scratch1, R(Value), Imm(8)));
  storeByteAt(A, R(Scratch1), Base, K, Scratch2);
  storeByteAt(A, R(Value), Base, K + 1, Scratch2);
}

/// Emits a byte-copy loop: copies Count bytes from Src to Dst.  Count,
/// Src and Dst are clobbered (Count reaches 0); \p Tmp is scratch.
/// \p Prefix keeps labels unique.
static void emitCopyLoop(Assembler &A, const std::string &Prefix,
                         unsigned Src, unsigned Dst, unsigned Count,
                         unsigned Tmp) {
  A.label(Prefix + "_copy");
  branchIfZero(A, Count, Prefix + "_copy_done");
  A.emit(Instruction::loadMemByte(Tmp, R(Src)));
  A.emit(Instruction::storeMemByte(R(Tmp), R(Dst)));
  A.emit(Instruction::normal(Func::Inc, Src, R(Src), Imm(0)));
  A.emit(Instruction::normal(Func::Inc, Dst, R(Dst), Imm(0)));
  A.emit(Instruction::normal(Func::Dec, Count, R(Count), Imm(0)));
  A.emitJump(Prefix + "_copy");
  A.label(Prefix + "_copy_done");
}

/// Computes the fd from the 8-byte big-endian word at [Conf]: leaves the
/// OR of the first seven bytes in \p HighOr and the last byte in \p Low.
/// Clobbers T2.
static void emitLoadFd(Assembler &A, const std::string &Prefix,
                       unsigned HighOr, unsigned Low) {
  movImm(A, HighOr, 0);
  mov(A, T2, Conf);
  addImm(A, Low, Conf, 7); // end pointer (address of the final byte)
  A.label(Prefix + "_fd");
  branchIfEqReg(A, T2, Low, Prefix + "_fd_done");
  A.emit(Instruction::loadMemByte(T1, R(T2)));
  A.emit(Instruction::normal(Func::Or, HighOr, R(HighOr), R(T1)));
  A.emit(Instruction::normal(Func::Inc, T2, R(T2), Imm(0)));
  A.emitJump(Prefix + "_fd");
  A.label(Prefix + "_fd_done");
  A.emit(Instruction::loadMemByte(Low, R(Low)));
}

/// The shared failure epilogue: bytes[0] = 1; return.
static void emitFailReturn(Assembler &A) {
  A.emit(Instruction::storeMemByte(Imm(1), R(Buf)));
  A.emitRet();
}

// --- read -----------------------------------------------------------------

static void emitRead(Assembler &A, const MemoryLayout &L) {
  A.label("sys_read");
  // fd must be 0 (stdin).  HighOr in T0, low byte in Idx.
  emitLoadFd(A, "rd", T0, Idx);
  A.emit(Instruction::normal(Func::Or, T0, R(T0), R(Idx)));
  branchIfNotZero(A, T0, "rd_fail");
  // T0 = requested count n (bytes[0..1], big-endian).
  loadU16At(A, T0, Buf, 0, T1);
  // Fail when bytesLen - 4 < n (the oracle's otherwise-branch).
  A.emit(Instruction::normal(Func::Sub, T1, R(BufLen), Imm(4)));
  A.emit(Instruction::normal(Func::Lower, T2, R(T1), R(T0)));
  branchIfNotZero(A, T2, "rd_fail");
  // Stdin region: T1 = StdinBase+4 (offset cell), Idx = offset, T2 = rem.
  A.emitLi(T1, L.StdinBase);
  A.emit(Instruction::loadMem(T2, R(T1))); // len
  addImm(A, T1, T1, 4);
  A.emit(Instruction::loadMem(Idx, R(T1))); // off
  A.emit(Instruction::normal(Func::Sub, T2, R(T2), R(Idx)));
  // k = min(n, rem): T0 currently n.
  A.emit(Instruction::normal(Func::Lower, Conf, R(T2), R(T0)));
  branchIfZero(A, Conf, "rd_have_k");
  mov(A, T0, T2);
  A.label("rd_have_k");
  // Store the advanced offset: Idx = off + k.
  A.emit(Instruction::normal(Func::Add, Idx, R(Idx), R(T0)));
  A.emit(Instruction::storeMem(R(Idx), R(T1)));
  // Result header: bytes[0]=0, bytes[1..2]=k.
  A.emit(Instruction::storeMemByte(Imm(0), R(Buf)));
  storeU16At(A, T0, Buf, 1, T2, Conf);
  // Source = StdinBase+8 + old offset (Idx-k); Dest = bytes+4.
  A.emit(Instruction::normal(Func::Sub, T2, R(Idx), R(T0)));
  addImm(A, T1, T1, 4); // StdinBase + 8
  A.emit(Instruction::normal(Func::Add, T1, R(T1), R(T2)));
  addImm(A, T2, Buf, 4);
  emitCopyLoop(A, "rd", /*Src=*/T1, /*Dst=*/T2, /*Count=*/T0, /*Tmp=*/Conf);
  A.emitRet();
  A.label("rd_fail");
  emitFailReturn(A);
}

// --- write ----------------------------------------------------------------

static void emitWrite(Assembler &A, const MemoryLayout &L) {
  A.label("sys_write");
  emitLoadFd(A, "wr", T0, Idx);
  branchIfNotZero(A, T0, "wr_fail");
  branchIfEqImm(A, Idx, 1, "wr_fd_ok");
  branchIfEqImm(A, Idx, 2, "wr_fd_ok");
  A.emitJump("wr_fail");
  A.label("wr_fd_ok");
  // T0 = count n, T1 = payload offset.
  loadU16At(A, T0, Buf, 0, T2);
  loadU16At(A, T1, Buf, 2, T2);
  // Fail when off + n > bytesLen - 4.
  A.emit(Instruction::normal(Func::Add, Conf, R(T1), R(T0)));
  A.emit(Instruction::normal(Func::Sub, T2, R(BufLen), Imm(4)));
  A.emit(Instruction::normal(Func::Lower, T2, R(T2), R(Conf)));
  branchIfNotZero(A, T2, "wr_fail");
  // Output buffer header: id = fd, len = n.
  A.emitLi(T2, L.OutBufBase);
  A.emit(Instruction::storeMem(R(Idx), R(T2)));
  addImm(A, Conf, T2, 4);
  A.emit(Instruction::storeMem(R(T0), R(Conf)));
  // Source = bytes + 4 + off; Dest = OutBufBase + 8.
  A.emit(Instruction::normal(Func::Add, T1, R(T1), R(Buf)));
  addImm(A, T1, T1, 4);
  addImm(A, T2, T2, 8);
  // Keep n for the result header.
  mov(A, BufLen, T0);
  emitCopyLoop(A, "wr", /*Src=*/T1, /*Dst=*/T2, /*Count=*/T0, /*Tmp=*/Conf);
  // Notify the environment (the paper's interrupt interface: the ARM
  // core reacts to text-output requests).
  A.emit(Instruction::interrupt());
  // Result header: bytes[0]=0, bytes[1..2]=n.
  A.emit(Instruction::storeMemByte(Imm(0), R(Buf)));
  storeU16At(A, BufLen, Buf, 1, T2, Conf);
  A.emitRet();
  A.label("wr_fail");
  emitFailReturn(A);
}

// --- command-line calls -----------------------------------------------------

static void emitGetArgCount(Assembler &A, const MemoryLayout &L) {
  A.label("sys_get_arg_count");
  A.emitLi(T0, L.CmdlineBase);
  A.emit(Instruction::loadMem(T1, R(T0))); // joined length
  movImm(A, T2, 0);                        // argc
  branchIfZero(A, T1, "gac_done");
  movImm(A, T2, 1);
  addImm(A, T0, T0, 4); // cursor
  A.emit(Instruction::normal(Func::Add, T1, R(T0), R(T1))); // end
  A.label("gac_loop");
  branchIfEqReg(A, T0, T1, "gac_done");
  A.emit(Instruction::loadMemByte(Idx, R(T0)));
  branchIfNotZero(A, Idx, "gac_next");
  A.emit(Instruction::normal(Func::Inc, T2, R(T2), Imm(0)));
  A.label("gac_next");
  A.emit(Instruction::normal(Func::Inc, T0, R(T0), Imm(0)));
  A.emitJump("gac_loop");
  A.label("gac_done");
  storeU16At(A, T2, Buf, 0, Idx, Conf);
  A.emitRet();
}

/// Inner routine: finds argument #Idx.  Inputs: Idx (valid index).
/// Outputs: T0 = pointer to the argument's first byte, Conf = its length.
/// Link register: T1.  Clobbers Idx, T2, BufLen.
static void emitFindArg(Assembler &A, const MemoryLayout &L) {
  A.label("sys_find_arg");
  A.emitLi(T0, L.CmdlineBase);
  A.emit(Instruction::loadMem(T2, R(T0)));
  addImm(A, T0, T0, 4);
  A.emit(Instruction::normal(Func::Add, T2, R(T0), R(T2))); // end
  A.label("fa_outer");
  branchIfZero(A, Idx, "fa_found");
  A.label("fa_scan"); // advance past the next NUL
  A.emit(Instruction::loadMemByte(Conf, R(T0)));
  A.emit(Instruction::normal(Func::Inc, T0, R(T0), Imm(0)));
  branchIfNotZero(A, Conf, "fa_scan");
  A.emit(Instruction::normal(Func::Dec, Idx, R(Idx), Imm(0)));
  A.emitJump("fa_outer");
  A.label("fa_found");
  // Measure the argument: Conf = length, scanning with Idx as cursor.
  movImm(A, Conf, 0);
  mov(A, Idx, T0);
  A.label("fa_len");
  branchIfEqReg(A, Idx, T2, "fa_len_done");
  A.emit(Instruction::loadMemByte(BufLen, R(Idx)));
  branchIfZero(A, BufLen, "fa_len_done");
  A.emit(Instruction::normal(Func::Inc, Conf, R(Conf), Imm(0)));
  A.emit(Instruction::normal(Func::Inc, Idx, R(Idx), Imm(0)));
  A.emitJump("fa_len");
  A.label("fa_len_done");
  A.emit(Instruction::jump(Func::Snd, abi::TmpReg, R(T1)));
}

static void emitGetArgLength(Assembler &A) {
  A.label("sys_get_arg_length");
  loadU16At(A, Idx, Buf, 0, T0);
  A.emitCall("sys_find_arg", /*LinkReg=*/T1);
  storeU16At(A, Conf, Buf, 0, T0, T2);
  A.emitRet();
}

static void emitGetArg(Assembler &A) {
  A.label("sys_get_arg");
  loadU16At(A, Idx, Buf, 0, T0);
  A.emitCall("sys_find_arg", /*LinkReg=*/T1);
  // Copy Conf bytes from T0 to the byte array.
  mov(A, T2, Buf);
  emitCopyLoop(A, "ga", /*Src=*/T0, /*Dst=*/T2, /*Count=*/Conf,
               /*Tmp=*/Idx);
  A.emitRet();
}

// --- file calls (always fail on bare metal) and exit ------------------------

static void emitOpenClose(Assembler &A) {
  A.label("sys_open"); // open_in and open_out share this body
  A.emit(Instruction::storeMemByte(Imm(1), R(Buf)));
  storeByteAt(A, Imm(0), Buf, 1, T0); // fd = 0 in bytes[1..2]
  storeByteAt(A, Imm(0), Buf, 2, T0);
  A.emitRet();
  A.label("sys_close");
  emitFailReturn(A);
}

static void emitExit(Assembler &A, const MemoryLayout &L) {
  A.label("sys_exit");
  A.emit(Instruction::loadMemByte(Idx, R(Buf)));
  A.emitLi(T0, L.ExitCodeAddr);
  A.emit(Instruction::storeMem(R(Idx), R(T0)));
  A.emitLi(T0, L.ExitFlagAddr);
  A.emit(Instruction::storeMem(Imm(1), R(T0)));
  A.emit(Instruction::interrupt());
  A.emitHalt();
}

Result<assembler::Assembled>
silver::sys::buildSyscallProgram(const MemoryLayout &L) {
  Assembler A;
  A.label("ffi_dispatch");
  // Record the dispatched index (Figure 2's "called id" cell).
  A.emitLi(T0, L.SyscallIdAddr);
  A.emit(Instruction::storeMem(R(Idx), R(T0)));
  branchIfEqImm(A, Idx, unsigned(FfiIndex::Read), "sys_read");
  branchIfEqImm(A, Idx, unsigned(FfiIndex::Write), "sys_write");
  branchIfEqImm(A, Idx, unsigned(FfiIndex::GetArgCount),
                "sys_get_arg_count");
  branchIfEqImm(A, Idx, unsigned(FfiIndex::GetArgLength),
                "sys_get_arg_length");
  branchIfEqImm(A, Idx, unsigned(FfiIndex::GetArg), "sys_get_arg");
  branchIfEqImm(A, Idx, unsigned(FfiIndex::OpenIn), "sys_open");
  branchIfEqImm(A, Idx, unsigned(FfiIndex::OpenOut), "sys_open");
  branchIfEqImm(A, Idx, unsigned(FfiIndex::Close), "sys_close");
  branchIfEqImm(A, Idx, unsigned(FfiIndex::Exit), "sys_exit");
  A.emitRet(); // unknown index: no effect

  emitRead(A, L);
  emitWrite(A, L);
  emitGetArgCount(A, L);
  emitGetArgLength(A);
  emitGetArg(A);
  emitFindArg(A, L);
  emitOpenClose(A);
  emitExit(A, L);

  Result<assembler::Assembled> Out = A.assemble(L.SyscallCodeBase);
  if (!Out)
    return Out;
  if (Out->Bytes.size() > L.Params.SyscallCodeCap)
    return Error("system-call code exceeds its region capacity");
  return Out;
}

Result<assembler::Assembled>
silver::sys::buildStartupProgram(const MemoryLayout &L) {
  Assembler A;
  A.label("_start");
  A.emitLi(abi::MemStartReg, L.HeapBase);
  A.emitLi(abi::MemEndReg, L.HeapEnd);
  A.emitLi(abi::FfiTableReg, L.SyscallCodeBase);
  A.emitLi(abi::LayoutReg, L.DescriptorBase);
  A.emitLi(abi::TmpReg, L.CodeBase);
  A.emit(Instruction::jump(Func::Snd, abi::TmpReg, R(abi::TmpReg)));

  Result<assembler::Assembled> Out = A.assemble(L.StartupBase);
  if (!Out)
    return Out;
  if (Out->Bytes.size() > L.Params.StartupCap)
    return Error("startup code exceeds its region capacity");
  return Out;
}
