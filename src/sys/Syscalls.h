//===- sys/Syscalls.h - Bare-metal system calls for Silver -----*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written Silver machine code implementing the basis FFI calls
/// against the bare-metal memory layout (paper §6), plus the startup code
/// that establishes CakeML's initial-state assumptions (the Next^k prefix
/// of theorem (5)).
///
/// Calling convention for compiled code invoking an FFI:
///   r5 = FFI index (BasisFfi::callNames() order)
///   r6 = conf pointer, r7 = conf length
///   r8 = bytes pointer, r9 = bytes length
///   r61 (LinkReg) = return address; entry point = Layout.SyscallCodeBase.
///
/// The syscall code may clobber r5-r9, r56, r57, r62, r63 and the flags;
/// every other register and all memory outside the FFI regions and the
/// byte array is preserved.  That clobber set is exactly what the paper's
/// interference oracle is allowed to touch, and the machine layer's
/// interference checker verifies it (theorem (13) analogue).
///
/// Realised calls (paper §2.4: standard streams and the command line as
/// in-memory devices): read (stdin only), write (stdout/stderr via the
/// output buffer + Interrupt), get_arg_count / get_arg_length / get_arg
/// (from the command-line region), exit (records the code and halts).
/// open_in/open_out/close fail with status 1 — there are no named files
/// on bare metal, matching the basis model's behaviour for an empty
/// filesystem.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_SYS_SYSCALLS_H
#define SILVER_SYS_SYSCALLS_H

#include "asm/Assembler.h"
#include "sys/Layout.h"

namespace silver {
namespace sys {

/// FFI indices, matching BasisFfi::callNames() order.
enum class FfiIndex : unsigned {
  Read = 0,
  Write = 1,
  GetArgCount = 2,
  GetArgLength = 3,
  GetArg = 4,
  OpenIn = 5,
  OpenOut = 6,
  Close = 7,
  Exit = 8,
};

/// Assembles the system-call code for \p Layout.  The entry point
/// (label "ffi_dispatch") is at Layout.SyscallCodeBase.  Fails when the
/// code exceeds the layout's capacity.
Result<assembler::Assembled> buildSyscallProgram(const MemoryLayout &Layout);

/// Assembles the startup code: sets the CakeML info registers r1-r4 and
/// jumps to the program at Layout.CodeBase.
Result<assembler::Assembled> buildStartupProgram(const MemoryLayout &Layout);

/// Registers the syscall code is allowed to clobber (plus the flags).
const std::vector<unsigned> &syscallClobberedRegs();

} // namespace sys
} // namespace silver

#endif // SILVER_SYS_SYSCALLS_H
