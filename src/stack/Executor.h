//===- stack/Executor.h - Observable execution engine -----------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine behind the stack API: prepare a program once,
/// then run it at any level of Figure 1 with a unified observer attached
/// (obs/Observer.h), instruction *and* cycle budgets enforced, and
/// run/pause/resume control.
///
///   stack::Executor Exec = stack::Executor::create(Spec).take();
///   obs::Counters Counters(Exec.regionMap().take(), Exec.ffiNames());
///   Exec.attach(&Counters);
///   stack::Outcome Out = Exec.run(stack::Level::Rtl).take();
///   std::cout << Counters.report();
///
/// The one-shot free functions in Stack.h (run, runLevel, checkEndToEnd)
/// are retained as thin wrappers over this class.
///
/// Budgets: RunSpec::MaxSteps bounds retired instructions at every level;
/// the cycle-accurate levels additionally get RunSpec::MaxCycles clock
/// cycles (0 = derived as MaxSteps x 16, saturating) plus a wedge
/// watchdog (cpu::RunOptions::WedgeCycles).  A budget running out is a
/// distinct RunStatus::Timeout, never a hang and never an error.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_STACK_EXECUTOR_H
#define SILVER_STACK_EXECUTOR_H

#include "obs/Observer.h"
#include "stack/Stack.h"

#include <array>
#include <memory>

namespace silver {
namespace stack {

/// Architectural snapshot of an execution session: PC, flags, the full
/// register file, and an FNV-1a hash of the whole memory.  This is the
/// cross-level comparison key of the fuzzing oracle (fuzz/Oracle.h): the
/// end-to-end theorem's levels must agree not only on stdout but on the
/// machine state they leave behind (the paper's ag32_eq relation family,
/// made cheap to compare by hashing the memory).
struct StateDigest {
  Word Pc = 0;
  bool Carry = false;
  bool Overflow = false;
  std::array<Word, isa::NumRegs> Regs{};
  uint64_t MemoryHash = 0; ///< fnv1a64 over the full memory
  uint64_t MemoryBytes = 0;
};

inline bool operator==(const StateDigest &A, const StateDigest &B) {
  return A.Pc == B.Pc && A.Carry == B.Carry && A.Overflow == B.Overflow &&
         A.Regs == B.Regs && A.MemoryHash == B.MemoryHash &&
         A.MemoryBytes == B.MemoryBytes;
}
inline bool operator!=(const StateDigest &A, const StateDigest &B) {
  return !(A == B);
}

/// Why an execution stopped.
enum class RunStatus : uint8_t {
  Completed, ///< the program halted / terminated
  Paused,    ///< a step() quota was used up; the session is resumable
  Timeout,   ///< the instruction or cycle budget ran out
};
const char *runStatusName(RunStatus S);

/// Final outcome of an execution: how it stopped plus the observable
/// behaviour so far (complete when Status == Completed, the prefix
/// otherwise).  Faults and environment protocol violations are reported
/// as errors, not outcomes.
struct Outcome {
  RunStatus Status = RunStatus::Completed;
  Observed Behaviour;
};

/// The observable execution engine.  Movable, not copyable.  An attached
/// observer sees, per run: onRunBegin, then retire / memory / FFI-span /
/// cycle events as the level produces them, then onRunEnd.  With no
/// observer attached every level runs its uninstrumented path, so a null
/// Executor run costs the same as the pre-redesign free functions.
class Executor {
public:
  /// Compiles Spec.Source once (every run/level reuses the result).
  static Result<Executor> create(RunSpec Spec);
  /// Wraps an already-prepared program (e.g. from stack::prepare).
  static Executor fromPrepared(RunSpec Spec, Prepared P);

  Executor(Executor &&) noexcept;
  Executor &operator=(Executor &&) noexcept;
  ~Executor();

  const RunSpec &spec() const { return Spec; }
  const Prepared &prepared() const { return Prep; }

  /// Attaches \p O (null detaches).  Not owned; must outlive every run.
  /// Use obs::MultiObserver to attach several sinks.
  void attach(obs::Observer *O) { Obs = O; }

  /// Figure-2 address classifier for this program's layout — pass to
  /// obs::Counters to bucket memory traffic by region.
  Result<obs::RegionMap> regionMap() const;

  /// Basis FFI call names in index order — pass to obs::Counters /
  /// obs::TraceSink to label FFI spans.
  static const std::vector<std::string> &ffiNames();

  /// The cycle budget the hardware levels run under: Spec.MaxCycles, or
  /// MaxSteps x 16 (saturating) when MaxCycles is 0.
  uint64_t cycleBudget() const;

  /// One-shot run at \p L to completion or budget exhaustion.
  Result<Outcome> run(Level L);

  // --- Resumable sessions (Machine / Isa / Rtl / Verilog) ---
  //
  //   begin(L); while (step(10'000) == Paused) {...}; finish();
  //
  // The Spec level has no machine steps and is not resumable.

  /// Starts a session at \p L (boots the image, fires onRunBegin).
  Result<void> begin(Level L);
  /// Runs at most \p MaxInstructions more instructions.  Completed and
  /// Timeout end the program but keep the session alive for finish().
  Result<RunStatus> step(uint64_t MaxInstructions);
  /// Collects the outcome, fires onRunEnd, and ends the session.
  Result<Outcome> finish();
  bool active() const { return Session != nullptr; }

  /// Grants the active session more budget so a Timeout can be resumed
  /// (the serving layer's slice-based execution, svc::Service): adds
  /// \p ExtraInstructions to the remaining instruction budget and, at
  /// the hardware levels, \p ExtraCycles to the remaining cycle budget
  /// (0 derives ExtraInstructions x 16, saturating — the same bound as
  /// cycleBudget()).  A Timeout status becomes Paused again, so step()
  /// continues where it stopped.  An error on a completed session.
  Result<void> replenish(uint64_t ExtraInstructions, uint64_t ExtraCycles = 0);

  /// Instructions retired so far by the active session, in the same
  /// coordinate system as sessionBehaviour().Instructions (the ISA
  /// startup prefix included) — a journaled pause point taken from one
  /// can be replayed against the other.  Valid between begin() and
  /// finish().
  Result<uint64_t> sessionInstructions() const;

  /// Snapshots the observable behaviour of the active session so far
  /// (stdout/stderr prefix, instruction and cycle counts) without ending
  /// it — what a paused job reports in a status query.  Valid between
  /// begin() and finish().
  Result<Observed> sessionBehaviour() const;

  /// Snapshots the architectural state of the active session — valid
  /// between begin() and finish(), typically once step() reports
  /// Completed.  The Machine/Isa levels read the interpreter state; the
  /// hardware levels read the core's registers and the lab DRAM.  The
  /// Spec level has no machine state and is not supported.
  Result<StateDigest> sessionState() const;

  /// Per-level session state; internal.
  struct SessionBase;

private:
  Executor(RunSpec SpecIn, Prepared PrepIn);

  RunSpec Spec;
  Prepared Prep;
  obs::Observer *Obs = nullptr;
  std::unique_ptr<SessionBase> Session;
  uint64_t InstrBudgetLeft = 0;
  RunStatus LastStatus = RunStatus::Completed;
};

} // namespace stack
} // namespace silver

#endif // SILVER_STACK_EXECUTOR_H
