//===- stack/Stack.h - End-to-end verified-stack runner ---------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public end-to-end API (the paper's milestone, theorems (6)-(8)):
/// compile a MiniCake program, build the bare-metal memory image, and run
/// it at each level of Figure 1 —
///   Spec      the reference interpreter (cakeml_sem),
///   Machine   machine_sem with the FFI interference oracle,
///   Isa       the Silver ISA Next function with real system calls,
///   Rtl       the circuit-level Silver core (cycle accurate),
///   Verilog   the generated Verilog AST under verilog_sem —
/// and check that every level produces the same observable behaviour.
/// The out-of-memory exit is permitted as a prefix behaviour, exactly as
/// extend_with_oom licenses.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_STACK_STACK_H
#define SILVER_STACK_STACK_H

#include "analysis/BlockSummary.h"
#include "analysis/ImageAudit.h"
#include "cml/Compiler.h"
#include "machine/MachineSem.h"
#include "support/Result.h"
#include "sys/Image.h"

#include <string>
#include <vector>

namespace silver {
namespace stack {

/// Which ISA execution backend the software levels (Machine, Isa) step
/// with.  Interp is the reference predecoded interpreter; Jit is the
/// baseline template JIT (isa/jit/Jit.h), which compiles hot basic
/// blocks to host code and degrades to the interpreter on unsupported
/// hosts.  The observable behaviour and the per-slice StateDigests are
/// identical by contract; only throughput differs.
enum class BackendKind : uint8_t { Interp, Jit };

/// Stable identifier ("interp", "jit") for CLIs, logs, and cache keys.
const char *backendKindName(BackendKind B);

/// Parses a backend name; returns false when \p Name is unknown.
bool parseBackendKind(const std::string &Name, BackendKind &Out);

/// True when the requested backend executes natively on this host; a
/// false answer for Jit means the run silently falls back to the
/// interpreter (callers surface a diagnostic, not an error).
bool backendSupported(BackendKind B);

/// Which simulator backend the Verilog level steps with.  Interp is the
/// AST-walking hdl::FastSim; Compiled generates C++ from the module,
/// builds it with the host compiler, and dlopen()s the result
/// (hdl/compile).  Same contract as BackendKind: behaviour and digests
/// are identical — enforced by the compiled-vs-interpreted differential
/// level — and an unsupported host falls back to Interp with a
/// diagnostic, never an error.
enum class HdlBackendKind : uint8_t { Interp, Compiled };

/// Stable identifier ("interp", "compiled") for CLIs, logs, cache keys.
const char *hdlBackendKindName(HdlBackendKind B);

/// Parses an hdl backend name; returns false when \p Name is unknown.
bool parseHdlBackendKind(const std::string &Name, HdlBackendKind &Out);

/// True when the requested hdl backend can run on this host (Compiled
/// needs a usable host C++ compiler; see hdl::compiledSimAvailable).
bool hdlBackendSupported(HdlBackendKind B);

/// How to execute: backend choice plus the budgets, one object so the
/// whole execution configuration travels together through
/// Executor::prepare, the batch-service protocol, and the CLIs.
struct ExecOptions {
  BackendKind Backend = BackendKind::Interp;
  /// Simulator backend for the Verilog level (ignored elsewhere).
  HdlBackendKind Hdl = HdlBackendKind::Interp;
  /// Block-execution count at which the JIT compiles a block; 0 keeps
  /// the backend default (isa::jit::JitOptions).  The fuzz oracle sets
  /// 1 so its differential runs compile every reachable block.
  uint32_t JitHotThreshold = 0;
  uint64_t MaxSteps = 2'000'000'000ull; ///< instruction budget (all levels)
  /// Clock-cycle budget for the Rtl/Verilog levels; 0 derives a generous
  /// bound from MaxSteps (see Executor::cycleBudget).
  uint64_t MaxCycles = 0;
};

/// What to run: a source program plus its world (command line + stdin)
/// and the execution configuration.
struct RunSpec {
  std::string Source;
  std::vector<std::string> CommandLine = {"prog"};
  std::string StdinData;
  cml::CompileOptions Compile;
  ExecOptions Exec;
};

/// Execution level (Figure 1).
enum class Level : uint8_t { Spec, Machine, Isa, Rtl, Verilog };
const char *levelName(Level L);

/// Observable outcome of one run.
struct Observed {
  std::string StdoutData;
  std::string StderrData;
  uint8_t ExitCode = 0;
  bool Terminated = false;
  uint64_t Instructions = 0; ///< ISA instructions (Spec: eval steps)
  uint64_t Cycles = 0;       ///< clock cycles (Rtl/Verilog only)
};

/// Compiles once; reusable across levels.
struct Prepared {
  cml::Compiled Program;
  sys::ImageSpec Image;
};
Result<Prepared> prepare(const RunSpec &Spec);

/// Builds the bootable image for \p P and statically audits it against
/// the installed-predicate approximation (analysis/ImageAudit.h): region
/// placement, decodability of reachable code, jump-target containment,
/// the W^X store discipline, and the syscall clobber set.  The returned
/// report is the audit outcome; the build itself failing is an error.
Result<analysis::AuditReport> auditPrepared(const Prepared &P);

/// As above, additionally enforcing the requested summary-derived
/// obligations (analysis/BlockSummary.h): the symbolic block summaries
/// are computed over the audited image and each violating program block
/// becomes an "img-stack-discipline" / "img-raw-io" diagnostic.
Result<analysis::AuditReport>
auditPrepared(const Prepared &P, const analysis::SummaryObligations &O);

/// Runs the reference interpreter (the Spec level) directly; never
/// compiles.
Result<Observed> runSpecLevel(const RunSpec &Spec);

/// Runs at one level.  Rtl and Verilog are considerably slower; their
/// cycle budgets derive from MaxSteps times a cycles-per-instruction
/// bound (see RunSpec::MaxCycles).
///
/// \deprecated Thin wrapper over stack::Executor (Executor.h), which
/// adds observers, counters, pause/resume, and a distinct timeout
/// status.  Kept for the one-shot call sites; see DESIGN.md §8.
Result<Observed> runLevel(const RunSpec &Spec, const Prepared &P, Level L);

/// Convenience: prepare + run.
///
/// \deprecated Thin wrapper over stack::Executor; see runLevel.
Result<Observed> run(const RunSpec &Spec, Level L);

/// Runs the compiled image on the circuit-level Silver core (RTL), or on
/// the generated Verilog AST under verilog_sem when \p ThroughVerilog.
///
/// \deprecated Thin wrapper over stack::Executor; see runLevel.
Result<Observed> runRtlLevel(const RunSpec &Spec, const Prepared &P,
                             bool ThroughVerilog);

/// The cross-level check: runs the given levels and verifies agreement
/// of stdout/stderr/exit code.  A run that exited with the OOM code is
/// accepted when its output is a prefix of the spec's (extend_with_oom).
///
/// \deprecated Thin wrapper over stack::Executor (one Executor, one run
/// per level); see DESIGN.md §8.
Result<std::vector<Observed>> checkEndToEnd(const RunSpec &Spec,
                                            const std::vector<Level> &Levels);

} // namespace stack
} // namespace silver

#endif // SILVER_STACK_STACK_H
