//===- stack/Apps.cpp - The paper's demonstration applications ---------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "stack/Apps.h"

#include "support/Rng.h"

#include <algorithm>
#include <cctype>

using namespace silver;
using namespace silver::stack;

const char *silver::stack::helloSource() {
  return R"CML(val _ = print "Hello, world!\n")CML";
}

const char *silver::stack::catSource() {
  return R"CML(val _ = print (input_all ()))CML";
}

const char *silver::stack::wcSource() {
  // The paper's wc: |tokens is_space input| (§2.1).
  return R"CML(
val input = input_all ()
val _ = print (int_to_string (length (tokens is_space input)) ^ "\n")
)CML";
}

const char *silver::stack::sortSource() {
  return R"CML(
fun merge xs ys =
  case xs of
    [] => ys
  | x :: xt =>
      (case ys of
         [] => xs
       | y :: yt =>
           if strcmp x y <= 0 then x :: merge xt ys
           else y :: merge xs yt);
fun msort l =
  case l of
    [] => []
  | [x] => [x]
  | _ =>
      let val n = length l div 2 in
        merge (msort (take l n)) (msort (drop l n))
      end;
val input = input_all ()
val _ = print (concat (map (fn s => s ^ "\n") (msort (lines input))))
)CML";
}

const char *silver::stack::proofCheckerSource() {
  // A Hilbert-style propositional proof checker (the reproduction's
  // OpenTheory stand-in).  Formulas are prefix strings: lowercase
  // letters are atoms, ">ab" is the implication a -> b.  Proof lines:
  //   K <f>    f must instantiate a -> (b -> a)
  //   S <f>    f must instantiate (a->(b->c)) -> ((a->b)->(a->c))
  //   M <i> <j>  modus ponens: step j must be <step i> -> f
  return R"CML(
fun is_atom c = ord c >= 97 andalso ord c <= 122;
(* end index of the formula starting at i, or ~1 when malformed *)
fun fchk s i =
  if i >= str_size s then 0 - 1
  else if str_sub s i = #">" then
    let val a = fchk s (i + 1) in
      if a < 0 then 0 - 1 else fchk s a
    end
  else if is_atom (str_sub s i) then i + 1
  else 0 - 1;
fun is_formula s = str_size s > 0 andalso fchk s 0 = str_size s;
(* K: s = ">" a ">" b a *)
fun is_k s =
  if is_formula s andalso str_sub s 0 = #">" then
    let val a_end = fchk s 1 in
      if a_end > 0 andalso a_end < str_size s andalso
         str_sub s a_end = #">" then
        let
          val b_end = fchk s (a_end + 1)
          val a = substring s 1 (a_end - 1)
        in
          b_end > 0 andalso
          s = ">" ^ a ^ ">" ^
              substring s (a_end + 1) (b_end - a_end - 1) ^ a
        end
      else false
    end
  else false;
(* S: s = ">>" a ">" b c ">>" a b ">" a c *)
fun is_s s =
  if is_formula s andalso str_size s >= 2 andalso
     str_sub s 0 = #">" andalso str_sub s 1 = #">" then
    let val a_end = fchk s 2 in
      if a_end > 0 andalso a_end < str_size s andalso
         str_sub s a_end = #">" then
        let val b_end = fchk s (a_end + 1) in
          if b_end > 0 then
            let
              val c_end = fchk s b_end
              val a = substring s 2 (a_end - 2)
              val b = substring s (a_end + 1) (b_end - a_end - 1)
            in
              c_end > 0 andalso
              (let val c = substring s b_end (c_end - b_end) in
                 s = ">>" ^ a ^ ">" ^ b ^ c ^ ">>" ^ a ^ b ^ ">" ^ a ^ c
               end)
            end
          else false
        end
      else false
    end
  else false;
(* modus ponens: sj = ">" si f; returns f or "" *)
fun mp si sj =
  if str_size sj > str_size si + 1 andalso str_sub sj 0 = #">" andalso
     substring sj 1 (str_size si) = si then
    substring sj (1 + str_size si) (str_size sj - 1 - str_size si)
  else "";
fun nth_or l i =
  case l of [] => "" | h :: t => if i = 1 then h else nth_or t (i - 1);
fun s2i_aux s i acc =
  if i >= str_size s then acc
  else s2i_aux s (i + 1) (acc * 10 + (ord (str_sub s i) - 48));
fun s2i s = s2i_aux s 0 0;
fun check_lines lns proved n =
  case lns of
    [] => "VALID\n"
  | l :: rest =>
      let
        val ts = tokens is_space l
        val proven =
          case ts of
            [] => "skip"
          | cmd :: args =>
              if cmd = "K" then
                (case args of
                   [f] => if is_k f then f else ""
                 | _ => "")
              else if cmd = "S" then
                (case args of
                   [f] => if is_s f then f else ""
                 | _ => "")
              else if cmd = "M" then
                (case args of
                   [i, j] =>
                     let
                       val si = nth_or proved (s2i i)
                       val sj = nth_or proved (s2i j)
                     in
                       if si = "" orelse sj = "" then "" else mp si sj
                     end
                 | _ => "")
              else ""
      in
        if proven = "" then "INVALID " ^ int_to_string n ^ "\n"
        else if proven = "skip" then check_lines rest proved (n + 1)
        else check_lines rest (append proved [proven]) (n + 1)
      end;
val input = input_all ()
val _ = print (check_lines (lines input) [] 1)
)CML";
}

const char *silver::stack::tinCompilerSource() {
  // The bootstrapped compiler: Tin (assignments, print, + - * integer
  // expressions) to a textual stack machine.
  return R"CML(
fun is_digit c = ord c >= 48 andalso ord c <= 57;
fun is_alpha c =
  (ord c >= 97 andalso ord c <= 122) orelse
  (ord c >= 65 andalso ord c <= 90);
fun lex s =
  let
    val n = str_size s
    fun span p i = if i < n andalso p (str_sub s i) then span p (i + 1)
                   else i
    fun go i =
      if i >= n then []
      else if is_space (str_sub s i) then go (i + 1)
      else if is_digit (str_sub s i) then
        let val j = span is_digit i in substring s i (j - i) :: go j end
      else if is_alpha (str_sub s i) then
        let val j = span is_alpha i in substring s i (j - i) :: go j end
      else str (str_sub s i) :: go (i + 1)
  in go 0 end;
fun p_atom ts =
  case ts of
    [] => (false, ([], []))
  | t :: rest =>
      if t = "(" then
        (case p_expr rest of
           (ok, (code, r2)) =>
             if not ok then (false, ([], []))
             else
               (case r2 of
                  tk :: r3 =>
                    if tk = ")" then (true, (code, r3))
                    else (false, ([], []))
                | [] => (false, ([], []))))
      else if is_digit (str_sub t 0) then (true, (["PUSH " ^ t], rest))
      else if is_alpha (str_sub t 0) then (true, (["LOAD " ^ t], rest))
      else (false, ([], []))
and p_term ts =
  (case p_atom ts of
     (ok, (code, rest)) =>
       if ok then p_term_rest code rest else (false, ([], [])))
and p_term_rest acc ts =
  case ts of
    [] => (true, (acc, []))
  | t :: rest =>
      if t = "*" then
        (case p_atom rest of
           (ok, (code, r2)) =>
             if ok then p_term_rest (append acc (append code ["MUL"])) r2
             else (false, ([], [])))
      else (true, (acc, ts))
and p_expr ts =
  (case p_term ts of
     (ok, (code, rest)) =>
       if ok then p_expr_rest code rest else (false, ([], [])))
and p_expr_rest acc ts =
  case ts of
    [] => (true, (acc, []))
  | t :: rest =>
      if t = "+" orelse t = "-" then
        (case p_term rest of
           (ok, (code, r2)) =>
             if ok then
               p_expr_rest
                 (append acc
                    (append code [if t = "+" then "ADD" else "SUB"])) r2
             else (false, ([], [])))
      else (true, (acc, ts));
fun p_stmt ts =
  case ts of
    [] => (false, ([], []))
  | t :: rest =>
      if t = "print" then
        (case p_expr rest of
           (ok, (code, r2)) =>
             if ok then (true, (append code ["PRINT"], r2))
             else (false, ([], [])))
      else if is_alpha (str_sub t 0) then
        (case rest of
           eq :: r2 =>
             if eq = "=" then
               (case p_expr r2 of
                  (ok, (code, r3)) =>
                    if ok then (true, (append code ["STORE " ^ t], r3))
                    else (false, ([], [])))
             else (false, ([], []))
         | [] => (false, ([], [])))
      else (false, ([], []));
fun p_prog ts =
  case ts of
    [] => (true, [])
  | _ =>
      (case p_stmt ts of
         (ok, (code, rest)) =>
           if not ok then (false, [])
           else
             (case rest of
                [] => (true, code)
              | semi :: r2 =>
                  if semi = ";" then
                    (case p_prog r2 of
                       (ok2, code2) =>
                         if ok2 then (true, append code code2)
                         else (false, []))
                  else (false, [])));
val input = input_all ()
val _ =
  print
    (case p_prog (lex input) of
       (ok, code) =>
         if ok then concat (map (fn l => l ^ "\n") code) else "ERROR\n")
)CML";
}

// --- specification functions -------------------------------------------------

static bool specIsSpace(unsigned char C) {
  return C == 32 || (C >= 9 && C <= 13);
}

static std::vector<std::string> specTokens(const std::string &Input,
                                           bool (*IsSep)(unsigned char)) {
  std::vector<std::string> Out;
  std::string Current;
  for (unsigned char C : Input) {
    if (IsSep(C)) {
      if (!Current.empty())
        Out.push_back(Current);
      Current.clear();
    } else {
      Current.push_back(static_cast<char>(C));
    }
  }
  if (!Current.empty())
    Out.push_back(Current);
  return Out;
}

std::string silver::stack::wcSpec(const std::string &Input) {
  return std::to_string(specTokens(Input, specIsSpace).size()) + "\n";
}

std::string silver::stack::sortSpec(const std::string &Input) {
  auto IsNewline = [](unsigned char C) { return C == '\n'; };
  std::vector<std::string> Lines = specTokens(Input, IsNewline);
  std::stable_sort(Lines.begin(), Lines.end());
  std::string Out;
  for (const std::string &L : Lines)
    Out += L + "\n";
  return Out;
}

std::string silver::stack::catSpec(const std::string &Input) { return Input; }

// --- proof checker spec -------------------------------------------------------

namespace {

int fchk(const std::string &S, int I) {
  if (I >= static_cast<int>(S.size()))
    return -1;
  if (S[I] == '>') {
    int A = fchk(S, I + 1);
    return A < 0 ? -1 : fchk(S, A);
  }
  if (S[I] >= 'a' && S[I] <= 'z')
    return I + 1;
  return -1;
}

bool isFormula(const std::string &S) {
  return !S.empty() && fchk(S, 0) == static_cast<int>(S.size());
}

bool isK(const std::string &S) {
  if (!isFormula(S) || S[0] != '>')
    return false;
  int AEnd = fchk(S, 1);
  if (AEnd <= 0 || AEnd >= static_cast<int>(S.size()) || S[AEnd] != '>')
    return false;
  int BEnd = fchk(S, AEnd + 1);
  if (BEnd <= 0)
    return false;
  std::string A = S.substr(1, AEnd - 1);
  std::string B = S.substr(AEnd + 1, BEnd - AEnd - 1);
  return S == ">" + A + ">" + B + A;
}

bool isS(const std::string &S) {
  if (!isFormula(S) || S.size() < 2 || S[0] != '>' || S[1] != '>')
    return false;
  int AEnd = fchk(S, 2);
  if (AEnd <= 0 || AEnd >= static_cast<int>(S.size()) || S[AEnd] != '>')
    return false;
  int BEnd = fchk(S, AEnd + 1);
  if (BEnd <= 0)
    return false;
  int CEnd = fchk(S, BEnd);
  if (CEnd <= 0)
    return false;
  std::string A = S.substr(2, AEnd - 2);
  std::string B = S.substr(AEnd + 1, BEnd - AEnd - 1);
  std::string C = S.substr(BEnd, CEnd - BEnd);
  return S == ">>" + A + ">" + B + C + ">>" + A + B + ">" + A + C;
}

std::string mp(const std::string &Si, const std::string &Sj) {
  if (Sj.size() > Si.size() + 1 && Sj[0] == '>' &&
      Sj.compare(1, Si.size(), Si) == 0)
    return Sj.substr(1 + Si.size());
  return "";
}

} // namespace

std::string silver::stack::proofSpec(const std::string &Input) {
  auto IsNewline = [](unsigned char C) { return C == '\n'; };
  std::vector<std::string> Lines = specTokens(Input, IsNewline);
  std::vector<std::string> Proved;
  int N = 1;
  for (const std::string &Line : Lines) {
    std::vector<std::string> Ts = specTokens(Line, specIsSpace);
    std::string Proven;
    bool Skip = false;
    if (Ts.empty()) {
      Skip = true;
    } else if (Ts[0] == "K" && Ts.size() == 2 && isK(Ts[1])) {
      Proven = Ts[1];
    } else if (Ts[0] == "S" && Ts.size() == 2 && isS(Ts[1])) {
      Proven = Ts[1];
    } else if (Ts[0] == "M" && Ts.size() == 3) {
      auto Num = [](const std::string &T) {
        int V = 0;
        for (char C : T)
          V = V * 10 + (C - '0');
        return V;
      };
      int I = Num(Ts[1]), J = Num(Ts[2]);
      std::string Si =
          I >= 1 && I <= static_cast<int>(Proved.size()) ? Proved[I - 1]
                                                         : "";
      std::string Sj =
          J >= 1 && J <= static_cast<int>(Proved.size()) ? Proved[J - 1]
                                                         : "";
      if (!Si.empty() && !Sj.empty())
        Proven = mp(Si, Sj);
    }
    if (Skip) {
      ++N;
      continue;
    }
    if (Proven.empty())
      return "INVALID " + std::to_string(N) + "\n";
    Proved.push_back(Proven);
    ++N;
  }
  return "VALID\n";
}

std::string silver::stack::sampleValidProof() {
  // Derives p -> p from K, S, and modus ponens.
  return "K >p>>ppp\n"
         "S >>p>>ppp>>p>pp>pp\n"
         "M 1 2\n"
         "K >p>pp\n"
         "M 4 3\n";
}

std::string silver::stack::sampleInvalidProof() {
  return "K >p>qq\n";
}

// --- Tin spec ------------------------------------------------------------------

namespace {

struct TinParser {
  std::vector<std::string> Ts;
  size_t Pos = 0;
  std::vector<std::string> Code;
  bool Failed = false;

  bool atEnd() const { return Pos >= Ts.size(); }
  const std::string &peek() const { return Ts[Pos]; }

  void expr();
  void term();
  void atom();
  void stmt();
};

void TinParser::atom() {
  if (Failed || atEnd()) {
    Failed = true;
    return;
  }
  std::string T = Ts[Pos++];
  if (T == "(") {
    expr();
    if (Failed || atEnd() || Ts[Pos++] != ")")
      Failed = true;
    return;
  }
  if (std::isdigit(static_cast<unsigned char>(T[0]))) {
    Code.push_back("PUSH " + T);
    return;
  }
  if (std::isalpha(static_cast<unsigned char>(T[0]))) {
    Code.push_back("LOAD " + T);
    return;
  }
  Failed = true;
}

void TinParser::term() {
  atom();
  while (!Failed && !atEnd() && peek() == "*") {
    ++Pos;
    atom();
    Code.push_back("MUL");
  }
}

void TinParser::expr() {
  term();
  while (!Failed && !atEnd() && (peek() == "+" || peek() == "-")) {
    std::string Op = Ts[Pos++];
    term();
    Code.push_back(Op == "+" ? "ADD" : "SUB");
  }
}

void TinParser::stmt() {
  if (Failed || atEnd()) {
    Failed = true;
    return;
  }
  std::string T = Ts[Pos++];
  if (T == "print") {
    expr();
    Code.push_back("PRINT");
    return;
  }
  if (!T.empty() && std::isalpha(static_cast<unsigned char>(T[0]))) {
    if (atEnd() || Ts[Pos++] != "=") {
      Failed = true;
      return;
    }
    expr();
    Code.push_back("STORE " + T);
    return;
  }
  Failed = true;
}

} // namespace

std::string silver::stack::tinSpec(const std::string &Source) {
  // Lex.
  std::vector<std::string> Ts;
  for (size_t I = 0; I < Source.size();) {
    unsigned char C = Source[I];
    if (specIsSpace(C)) {
      ++I;
      continue;
    }
    if (std::isdigit(C) || std::isalpha(C)) {
      size_t J = I;
      auto Same = std::isdigit(C) ? +[](unsigned char X) {
        return std::isdigit(X) != 0;
      }
                                  : +[](unsigned char X) {
        return std::isalpha(X) != 0;
      };
      while (J < Source.size() &&
             Same(static_cast<unsigned char>(Source[J])))
        ++J;
      Ts.push_back(Source.substr(I, J - I));
      I = J;
      continue;
    }
    Ts.push_back(std::string(1, Source[I]));
    ++I;
  }
  // Parse statement list separated by ';'.
  TinParser P;
  P.Ts = Ts;
  if (!P.Ts.empty()) {
    P.stmt();
    while (!P.Failed && !P.atEnd()) {
      if (P.Ts[P.Pos++] != ";") {
        P.Failed = true;
        break;
      }
      if (P.atEnd())
        break; // trailing separator? Tin requires a statement after ';'
      P.stmt();
    }
    // A trailing ';' with nothing after it is a parse error in the
    // MiniCake compiler as well (p_prog demands a statement).
  }
  if (P.Failed)
    return "ERROR\n";
  std::string Out;
  for (const std::string &L : P.Code)
    Out += L + "\n";
  return Out;
}

std::string silver::stack::sampleTinProgram(unsigned Statements) {
  // Deterministic round-robin over variables and expression shapes.
  std::string Out;
  const char Vars[] = {'a', 'b', 'c', 'd'};
  for (unsigned I = 0; I != Statements; ++I) {
    char V = Vars[I % 4];
    if (I == 0) {
      Out += "a = 1";
    } else if (I % 3 == 0) {
      Out += std::string("print ") + Vars[(I + 1) % 4];
    } else {
      Out += std::string(1, V) + " = " + std::string(1, Vars[(I + 3) % 4]) +
             " * " + std::to_string(I % 9 + 1) + " + (" +
             std::to_string(I % 7) + " - " + std::string(1, Vars[I % 4]) +
             ")";
    }
    Out += I + 1 == Statements ? "\n" : ";\n";
  }
  return Out;
}

std::string silver::stack::randomLines(unsigned LineCount, unsigned Seed) {
  Rng R(Seed * 0x9e3779b9u + 1);
  std::string Out;
  for (unsigned L = 0; L != LineCount; ++L) {
    unsigned Words = 1 + R.below(6);
    for (unsigned W = 0; W != Words; ++W) {
      if (W)
        Out.push_back(' ');
      unsigned Len = 1 + R.below(8);
      for (unsigned I = 0; I != Len; ++I)
        Out.push_back(static_cast<char>('a' + R.below(26)));
    }
    Out.push_back('\n');
  }
  return Out;
}
