//===- stack/Apps.h - The paper's demonstration applications ----*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniCake sources for the applications the paper runs on Silver (§1,
/// §7): word count (wc), sort, a proof checker (standing in for the
/// OpenTheory checker), hello, cat — and the Tin compiler, a small
/// compiler written in MiniCake that reproduces the shape of the
/// "compiler running on the verified processor" experiment (§7: CakeML
/// compiling hello-world on Silver vs on an Intel machine).
///
/// Specification functions (the paper's wc_spec/sort_spec/...; §2.1) are
/// provided as C++ reference implementations so tests and benches can
/// state end-to-end conformance exactly as theorem (8) does.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_STACK_APPS_H
#define SILVER_STACK_APPS_H

#include <string>
#include <vector>

namespace silver {
namespace stack {

/// MiniCake sources.
const char *helloSource();
const char *catSource();   ///< copies stdin to stdout
const char *wcSource();    ///< prints |tokens is_space input|
const char *sortSource();  ///< sorts the lines of stdin
const char *proofCheckerSource(); ///< Hilbert-style propositional checker
const char *tinCompilerSource();  ///< the bootstrapped Tin compiler

/// Specification functions (higher-order-logic specs, transcribed).
/// wc_spec input = number of maximal nonspace runs in input.
std::string wcSpec(const std::string &Input);
/// sort_spec input = the lines of input, sorted, each with a newline.
std::string sortSpec(const std::string &Input);
/// cat_spec input = input.
std::string catSpec(const std::string &Input);
/// proof_spec input = "VALID\n" or "INVALID <line>\n" per the checker's
/// rules (axiom schemas K and S, modus ponens).
std::string proofSpec(const std::string &Input);
/// tin_spec source = the stack-machine assembly the Tin compiler emits,
/// or "error: ..." diagnostics.
std::string tinSpec(const std::string &Source);

/// A sample valid proof and an invalid one (for tests and benches).
std::string sampleValidProof();
std::string sampleInvalidProof();

/// A sample Tin program of \p Statements statements (workload
/// generator for the bootstrap experiment).
std::string sampleTinProgram(unsigned Statements);

/// Deterministic line-oriented text (workload generator for wc/sort).
std::string randomLines(unsigned LineCount, unsigned Seed);

} // namespace stack
} // namespace silver

#endif // SILVER_STACK_APPS_H
