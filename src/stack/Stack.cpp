//===- stack/Stack.cpp - End-to-end verified-stack runner --------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "stack/Stack.h"

#include "cml/Interp.h"
#include "cml/Parser.h"
#include "hdl/compile/Build.h"
#include "isa/jit/Jit.h"
#include "stack/Executor.h"
#include "support/StringUtils.h"

using namespace silver;
using namespace silver::stack;

const char *silver::stack::backendKindName(BackendKind B) {
  switch (B) {
  case BackendKind::Interp:
    return "interp";
  case BackendKind::Jit:
    return "jit";
  }
  return "?";
}

bool silver::stack::parseBackendKind(const std::string &Name,
                                     BackendKind &Out) {
  if (Name == "interp") {
    Out = BackendKind::Interp;
    return true;
  }
  if (Name == "jit") {
    Out = BackendKind::Jit;
    return true;
  }
  return false;
}

bool silver::stack::backendSupported(BackendKind B) {
  return B == BackendKind::Interp || isa::jit::hostSupported();
}

const char *silver::stack::hdlBackendKindName(HdlBackendKind B) {
  switch (B) {
  case HdlBackendKind::Interp:
    return "interp";
  case HdlBackendKind::Compiled:
    return "compiled";
  }
  return "?";
}

bool silver::stack::parseHdlBackendKind(const std::string &Name,
                                        HdlBackendKind &Out) {
  if (Name == "interp") {
    Out = HdlBackendKind::Interp;
    return true;
  }
  if (Name == "compiled") {
    Out = HdlBackendKind::Compiled;
    return true;
  }
  return false;
}

bool silver::stack::hdlBackendSupported(HdlBackendKind B) {
  return B == HdlBackendKind::Interp || hdl::compiledSimAvailable();
}

const char *silver::stack::levelName(Level L) {
  switch (L) {
  case Level::Spec:
    return "spec";
  case Level::Machine:
    return "machine-sem";
  case Level::Isa:
    return "isa";
  case Level::Rtl:
    return "rtl";
  case Level::Verilog:
    return "verilog";
  }
  return "?";
}

Result<Prepared> silver::stack::prepare(const RunSpec &Spec) {
  Result<cml::Compiled> Compiled =
      cml::compileProgram(Spec.Source, Spec.Compile);
  if (!Compiled)
    return Compiled.error();
  Prepared P;
  P.Program = Compiled.take();
  P.Image.CommandLine = Spec.CommandLine;
  P.Image.StdinData = Spec.StdinData;
  P.Image.Program = P.Program.Program;
  P.Image.Params = Spec.Compile.Layout;
  return P;
}

Result<analysis::AuditReport>
silver::stack::auditPrepared(const Prepared &P) {
  Result<sys::MemoryImage> Image = sys::buildImage(P.Image);
  if (!Image)
    return Image.error();
  return analysis::auditImage(*Image,
                              static_cast<Word>(P.Image.Program.size()));
}

Result<analysis::AuditReport>
silver::stack::auditPrepared(const Prepared &P,
                             const analysis::SummaryObligations &O) {
  Result<analysis::AuditReport> Report = auditPrepared(P);
  if (!Report)
    return Report;
  analysis::ImageSummary Summary = analysis::summarizeImage(*Report);
  for (analysis::AuditDiag &D : analysis::checkObligations(Summary, O))
    Report->Diags.push_back(std::move(D));
  return Report;
}

Result<Observed> silver::stack::runSpecLevel(const RunSpec &Spec) {
  Result<cml::Program> Prog =
      cml::parseProgram(cml::withPrelude(Spec.Source));
  if (!Prog)
    return Error("parse error: " + Prog.error().str());
  cml::RunOutput Out = cml::interpretProgram(*Prog, Spec.CommandLine,
                                             Spec.StdinData, 0);
  if (!Out.Ok)
    return Error("interpreter error: " + Out.ErrorMessage);
  Observed O;
  O.StdoutData = Out.StdoutData;
  O.StderrData = Out.StderrData;
  O.ExitCode = Out.ExitCode;
  O.Terminated = true;
  O.Instructions = Out.Steps;
  return O;
}

Result<Observed> silver::stack::runLevel(const RunSpec &Spec,
                                         const Prepared &P, Level L) {
  Executor Exec = Executor::fromPrepared(Spec, P);
  Result<Outcome> Out = Exec.run(L);
  if (!Out)
    return Out.error();
  return Out->Behaviour;
}

Result<Observed> silver::stack::run(const RunSpec &Spec, Level L) {
  if (L == Level::Spec)
    return runSpecLevel(Spec);
  Result<Executor> Exec = Executor::create(Spec);
  if (!Exec)
    return Exec.error();
  Result<Outcome> Out = Exec->run(L);
  if (!Out)
    return Out.error();
  return Out->Behaviour;
}

Result<std::vector<Observed>>
silver::stack::checkEndToEnd(const RunSpec &Spec,
                             const std::vector<Level> &Levels) {
  Result<Prepared> P = prepare(Spec);
  if (!P)
    return P.error();

  // The reference semantics is the yardstick.
  Result<Observed> SpecRun = runSpecLevel(Spec);
  if (!SpecRun)
    return SpecRun.error();

  std::vector<Observed> Results;
  for (Level L : Levels) {
    Result<Observed> R = L == Level::Spec
                             ? Result<Observed>(*SpecRun)
                             : runLevel(Spec, *P, L);
    if (!R)
      return Error(std::string(levelName(L)) + ": " + R.error().str());
    const Observed &O = *R;
    if (!O.Terminated)
      return Error(std::string(levelName(L)) +
                   ": did not terminate within the step budget");
    bool Oom = O.ExitCode == machine::OomExitCode &&
               SpecRun->ExitCode != machine::OomExitCode;
    if (Oom) {
      // extend_with_oom: premature OOM termination with a prefix of the
      // specified output is within the compiler's contract.
      if (!startsWith(SpecRun->StdoutData, O.StdoutData))
        return Error(std::string(levelName(L)) +
                     ": OOM output is not a prefix of the spec output");
    } else {
      if (O.StdoutData != SpecRun->StdoutData)
        return Error(std::string(levelName(L)) + ": stdout mismatch: \"" +
                     escapeString(O.StdoutData) + "\" vs spec \"" +
                     escapeString(SpecRun->StdoutData) + "\"");
      if (O.StderrData != SpecRun->StderrData)
        return Error(std::string(levelName(L)) + ": stderr mismatch");
      if (O.ExitCode != SpecRun->ExitCode)
        return Error(std::string(levelName(L)) + ": exit code " +
                     std::to_string(O.ExitCode) + " vs spec " +
                     std::to_string(SpecRun->ExitCode));
    }
    Results.push_back(O);
  }
  return Results;
}
