//===- stack/PrepareCache.h - Memoized stack::prepare -----------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU cache in front of stack::prepare for the serving layer
/// (svc::Service): repeated submissions of the same program skip the
/// MiniCake compilation entirely.  Compilation depends only on the
/// source text and the compile options, so those are the key; the
/// per-run image fields (command line, stdin) are rebuilt on every call
/// from the RunSpec, exactly as stack::prepare does.
///
/// Thread-safe: lookups, inserts and stats take an internal mutex, but
/// a miss compiles *outside* the lock, so one slow compilation never
/// blocks concurrent hits on other programs (two concurrent misses on
/// the same key may both compile; the second insert wins harmlessly —
/// compilation is deterministic).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_STACK_PREPARECACHE_H
#define SILVER_STACK_PREPARECACHE_H

#include "stack/Stack.h"

#include <list>
#include <mutex>
#include <unordered_map>

namespace silver {
namespace stack {

class PrepareCache {
public:
  explicit PrepareCache(size_t Capacity = 32)
      : Capacity(Capacity ? Capacity : 1) {}

  /// Cache-aware stack::prepare: returns a Prepared whose compiled
  /// program comes from the cache when the (source, options) key was
  /// seen before.
  Result<Prepared> prepare(const RunSpec &Spec);

  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    size_t Entries = 0;
  };
  CacheStats stats() const;
  void clear();

  /// Canonical key: the source text plus a serialization of every
  /// compile-relevant option (exact, not a hash — a collision would
  /// silently serve the wrong program).  Public because the cluster
  /// dispatcher routes jobs by this key, so every submission of the
  /// same program lands on the shard whose cache is already hot.
  static std::string keyOf(const RunSpec &Spec);

private:
  size_t Capacity;
  mutable std::mutex Mu;
  CacheStats Stats;
  /// Front = most recently used.
  std::list<std::pair<std::string, cml::Compiled>> Lru;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, cml::Compiled>>::iterator>
      Index;
};

} // namespace stack
} // namespace silver

#endif // SILVER_STACK_PREPARECACHE_H
