//===- stack/PrepareCache.cpp - Memoized stack::prepare ----------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "stack/PrepareCache.h"

using namespace silver;
using namespace silver::stack;

std::string PrepareCache::keyOf(const RunSpec &Spec) {
  const cml::CompileOptions &C = Spec.Compile;
  std::string Key;
  Key.reserve(Spec.Source.size() + 64);
  Key += Spec.Source;
  Key.push_back('\0');
  auto Num = [&Key](uint64_t V) {
    Key += std::to_string(V);
    Key.push_back(',');
  };
  Num(C.Opt.ConstantFold);
  Num(C.Opt.DeadLetElim);
  Num(C.Opt.Inline);
  Num(C.Opt.InlineSizeLimit);
  Num(C.IncludePrelude);
  Num(C.Layout.MemSize);
  Num(C.Layout.CmdlineCap);
  Num(C.Layout.StdinCap);
  Num(C.Layout.OutBufCap);
  Num(C.Layout.SyscallCodeCap);
  Num(C.Layout.StartupCap);
  // The backend is part of the key even though compilation ignores it:
  // the serving layer keys sessions and artifacts off this string, and
  // keeping per-backend streams distinct means a jit/interp A-B
  // comparison never aliases in the cache.
  Num(static_cast<uint64_t>(Spec.Exec.Backend));
  Num(static_cast<uint64_t>(Spec.Exec.Hdl));
  return Key;
}

Result<Prepared> PrepareCache::prepare(const RunSpec &Spec) {
  std::string Key = keyOf(Spec);

  auto Assemble = [&Spec](cml::Compiled Program) {
    Prepared P;
    P.Program = std::move(Program);
    P.Image.CommandLine = Spec.CommandLine;
    P.Image.StdinData = Spec.StdinData;
    P.Image.Program = P.Program.Program;
    P.Image.Params = Spec.Compile.Layout;
    return P;
  };

  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      ++Stats.Hits;
      Lru.splice(Lru.begin(), Lru, It->second);
      return Assemble(It->second->second);
    }
    ++Stats.Misses;
  }

  // Miss: compile outside the lock.
  Result<cml::Compiled> Compiled =
      cml::compileProgram(Spec.Source, Spec.Compile);
  if (!Compiled)
    return Compiled.error();

  std::lock_guard<std::mutex> Lock(Mu);
  if (Index.find(Key) == Index.end()) {
    Lru.emplace_front(Key, *Compiled);
    Index[Key] = Lru.begin();
    while (Lru.size() > Capacity) {
      Index.erase(Lru.back().first);
      Lru.pop_back();
      ++Stats.Evictions;
    }
  }
  return Assemble(Compiled.take());
}

PrepareCache::CacheStats PrepareCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheStats S = Stats;
  S.Entries = Lru.size();
  return S;
}

void PrepareCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Lru.clear();
  Index.clear();
  Stats.Entries = 0;
}
