//===- stack/Executor.cpp - Observable execution engine ----------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "stack/Executor.h"

#include "cpu/Check.h"
#include "ffi/BasisFfi.h"
#include "isa/jit/Jit.h"

#include <algorithm>

using namespace silver;
using namespace silver::stack;

const char *silver::stack::runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::Completed:
    return "completed";
  case RunStatus::Paused:
    return "paused";
  case RunStatus::Timeout:
    return "timeout";
  }
  return "?";
}

static obs::ExecLevel toExecLevel(Level L) {
  switch (L) {
  case Level::Spec:
    return obs::ExecLevel::Spec;
  case Level::Machine:
    return obs::ExecLevel::Machine;
  case Level::Isa:
    return obs::ExecLevel::Isa;
  case Level::Rtl:
    return obs::ExecLevel::Rtl;
  case Level::Verilog:
    return obs::ExecLevel::Verilog;
  }
  return obs::ExecLevel::Spec;
}

//===----------------------------------------------------------------------===//
// Per-level sessions
//===----------------------------------------------------------------------===//

struct Executor::SessionBase {
  virtual ~SessionBase() = default;
  /// Runs at most \p MaxInstructions more instructions.  Completed means
  /// the program is over; Paused means the quota ran out first; Timeout
  /// means a level-internal budget (cycles, wedge watchdog) ran out.
  virtual Result<RunStatus> step(uint64_t MaxInstructions) = 0;
  /// Instructions retired so far (the Executor charges its global
  /// instruction budget from the deltas of this).
  virtual uint64_t instructions() const = 0;
  /// Snapshots the observable behaviour.
  virtual Observed collect() const = 0;
  /// Snapshots the architectural state (Executor::sessionState).
  virtual StateDigest digest() const = 0;
  /// Grants more of the level-internal budget (cycles at the hardware
  /// levels; a no-op for the interpreters) and clears a level-internal
  /// Timeout so step() can continue (Executor::replenish).
  virtual void addCycles(uint64_t /*ExtraCycles*/) {}
};

namespace {

/// The execution backend a session steps with.  Jit silently degrades
/// to the interpreter on unsupported hosts (the CLIs surface the
/// degradation as a diagnostic before the run starts).
std::unique_ptr<isa::ExecBackend> makeSessionBackend(const ExecOptions &E) {
  if (E.Backend == BackendKind::Jit && isa::jit::hostSupported()) {
    isa::jit::JitOptions Opts;
    if (E.JitHotThreshold)
      Opts.HotThreshold = E.JitHotThreshold;
    return isa::jit::makeJitBackend(Opts);
  }
  return isa::makeInterpBackend();
}

StateDigest digestOf(const isa::MachineState &S) {
  StateDigest D;
  D.Pc = S.PC;
  D.Carry = S.CarryFlag;
  D.Overflow = S.OverflowFlag;
  D.Regs = S.Regs;
  D.MemoryHash = fnv1a64(S.Memory.data(), S.Memory.size());
  D.MemoryBytes = S.Memory.size();
  return D;
}

/// Isa level: the Silver ISA Next function with the real system-call
/// code (sys::SysEnv reacting to Interrupt).  The startup prefix retires
/// under the observer too, so the retire stream lines up with the RTL
/// levels, which execute the startup code on the core from reset.
struct IsaSession final : Executor::SessionBase {
  sys::BootResult Boot;
  sys::SysEnv Env;
  isa::ObsHooks Hooks;
  /// Session-lifetime execution backend: a paused-and-resumed run keeps
  /// its derived state — decoded slots, and compiled blocks at the Jit
  /// backend (stores invalidate what they overwrite, so self-modifying
  /// code stays correct at every backend).
  std::unique_ptr<isa::ExecBackend> Backend;
  uint64_t Steps = 0; ///< post-startup ISA steps
  bool Halted = false;

  IsaSession(sys::BootResult B, const ExecOptions &E, obs::Observer *Obs)
      : Boot(std::move(B)), Env(Boot.Image.Layout),
        Backend(makeSessionBackend(E)) {
    Hooks.Obs = Obs;
    Hooks.RetireIndexBase = Boot.StartupSteps;
    Hooks.FfiEntryPc = Boot.Image.Layout.SyscallCodeBase;
    Hooks.FfiRegionBegin = Boot.Image.Layout.SyscallCodeBase;
    Hooks.FfiRegionEnd = Boot.Image.Layout.HeapBase;
  }

  Result<RunStatus> step(uint64_t MaxInstructions) override {
    if (Halted)
      return RunStatus::Completed;
    // The null-observer test happens once per step() call, not per
    // retire: the uninstrumented branch runs the predecoded NullEmit
    // loop, which does no virtual dispatch at all.
    isa::RunResult R =
        Hooks.Obs ? Backend->run(Boot.State, Env, MaxInstructions, Hooks)
                  : Backend->run(Boot.State, Env, MaxInstructions);
    Steps += R.Steps;
    if (R.Fault != isa::StepFault::None)
      return Error("ISA execution faulted");
    Halted = R.Halted;
    return Halted ? RunStatus::Completed : RunStatus::Paused;
  }

  // Matches collect().Instructions (startup prefix included): the
  // service journals one and replays against the other, so the two
  // counts must be the same coordinate system.
  uint64_t instructions() const override { return Steps + Boot.StartupSteps; }

  Observed collect() const override {
    Observed O;
    O.Terminated = Halted;
    O.Instructions = Steps + Boot.StartupSteps;
    O.StdoutData = Env.collectedStdout();
    O.StderrData = Env.collectedStderr();
    sys::ExitStatus S = sys::readExitStatus(Boot.State, Boot.Image.Layout);
    O.ExitCode = S.Exited ? S.Code : 0;
    return O;
  }

  StateDigest digest() const override { return digestOf(Boot.State); }
};

/// Machine level: machine_sem with the FFI interference oracle.  As in
/// the pre-redesign API, Instructions counts machine steps only (the
/// startup prefix runs unobserved before the semantics takes over), so
/// the observer's retire count matches Observed.Instructions.
struct MachineSession final : Executor::SessionBase {
  machine::MachineSem Sem;
  uint64_t Steps = 0;
  machine::Behaviour Last;
  bool Done = false;

  MachineSession(sys::BootResult B, const RunSpec &Spec, obs::Observer *Obs)
      : Sem(std::move(B.State),
            ffi::BasisFfi(Spec.CommandLine,
                          ffi::Filesystem::withStdin(Spec.StdinData)),
            B.Image.Layout, makeSessionBackend(Spec.Exec)) {
    if (Obs)
      Sem.attachObserver(Obs);
  }

  Result<RunStatus> step(uint64_t MaxInstructions) override {
    if (Done)
      return RunStatus::Completed;
    machine::Behaviour B = Sem.run(MaxInstructions);
    Steps += B.Steps;
    if (B.Kind == machine::BehaviourKind::Failed)
      return Error(B.OracleRejected ? machine::OracleRejectedMessage
                                    : "machine-sem execution failed");
    Last = B;
    Done = B.Kind == machine::BehaviourKind::Terminated;
    return Done ? RunStatus::Completed : RunStatus::Paused;
  }

  uint64_t instructions() const override { return Steps; }

  Observed collect() const override {
    Observed O;
    O.Terminated = Done;
    O.ExitCode = Last.ExitCode;
    O.Instructions = Steps;
    O.StdoutData = Sem.ffi().getStdout();
    O.StderrData = Sem.ffi().getStderr();
    return O;
  }

  StateDigest digest() const override { return digestOf(Sem.state()); }
};

/// Rtl / Verilog levels: the Silver core in the lab environment, driven
/// through the resumable cpu::CoreRunner.  Subject to the cycle budget
/// and the wedge watchdog on top of the instruction budget.
struct RtlSession final : Executor::SessionBase {
  std::unique_ptr<cpu::CoreRunner> Runner;
  uint64_t CycleBudgetLeft;
  bool TimedOut = false;

  RtlSession(std::unique_ptr<cpu::CoreRunner> R, uint64_t CycleBudget)
      : Runner(std::move(R)), CycleBudgetLeft(CycleBudget) {}

  Result<RunStatus> step(uint64_t MaxInstructions) override {
    if (Runner->halted())
      return RunStatus::Completed;
    if (TimedOut)
      return RunStatus::Timeout;
    uint64_t CyclesBefore = Runner->cycles();
    Result<cpu::CoreStop> S = Runner->advance(MaxInstructions, CycleBudgetLeft);
    uint64_t Used = Runner->cycles() - CyclesBefore;
    CycleBudgetLeft -= std::min(Used, CycleBudgetLeft);
    if (!S)
      return S.error();
    switch (*S) {
    case cpu::CoreStop::Halted:
      return RunStatus::Completed;
    case cpu::CoreStop::InstructionBudget:
      return RunStatus::Paused;
    case cpu::CoreStop::CycleBudget:
    case cpu::CoreStop::NoRetireProgress:
      TimedOut = true;
      return RunStatus::Timeout;
    }
    return RunStatus::Paused;
  }

  uint64_t instructions() const override { return Runner->instructions(); }

  void addCycles(uint64_t ExtraCycles) override {
    CycleBudgetLeft = ExtraCycles > UINT64_MAX - CycleBudgetLeft
                          ? UINT64_MAX
                          : CycleBudgetLeft + ExtraCycles;
    TimedOut = false;
  }

  Observed collect() const override {
    cpu::CoreRunResult R = Runner->result();
    Observed O;
    O.Terminated = R.Halted;
    O.Cycles = R.Cycles;
    O.Instructions = R.Instructions;
    O.StdoutData = R.StdoutData;
    O.StderrData = R.StderrData;
    O.ExitCode = R.Exit.Exited ? R.Exit.Code : 0;
    return O;
  }

  StateDigest digest() const override {
    cpu::ArchState A = Runner->archState();
    StateDigest D;
    D.Pc = A.Pc;
    D.Carry = A.Carry;
    D.Overflow = A.Overflow;
    D.Regs = A.Regs;
    const std::vector<uint8_t> &M = Runner->memory();
    D.MemoryHash = fnv1a64(M.data(), M.size());
    D.MemoryBytes = M.size();
    return D;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Executor
//===----------------------------------------------------------------------===//

Executor::Executor(RunSpec SpecIn, Prepared PrepIn)
    : Spec(std::move(SpecIn)), Prep(std::move(PrepIn)) {}

Executor::Executor(Executor &&) noexcept = default;
Executor &Executor::operator=(Executor &&) noexcept = default;
Executor::~Executor() = default;

Result<Executor> Executor::create(RunSpec Spec) {
  Result<Prepared> P = prepare(Spec);
  if (!P)
    return P.error();
  return Executor(std::move(Spec), P.take());
}

Executor Executor::fromPrepared(RunSpec Spec, Prepared P) {
  return Executor(std::move(Spec), std::move(P));
}

Result<obs::RegionMap> Executor::regionMap() const {
  Result<sys::MemoryLayout> L = sys::MemoryLayout::compute(
      Prep.Image.Params, static_cast<Word>(Prep.Image.Program.size()));
  if (!L)
    return L.error();
  obs::RegionMap M;
  M.add(L->StartupBase, L->DescriptorBase, obs::Region::Startup);
  M.add(L->DescriptorBase, L->CmdlineBase, obs::Region::Descriptor);
  M.add(L->CmdlineBase, L->StdinBase, obs::Region::Cmdline);
  M.add(L->StdinBase, L->OutBufBase, obs::Region::Stdin);
  M.add(L->OutBufBase, L->SyscallIdAddr, obs::Region::OutBuf);
  M.add(L->SyscallIdAddr, L->HeapBase, obs::Region::SyscallCode);
  M.add(L->HeapBase, L->HeapEnd, obs::Region::Heap);
  M.add(L->CodeBase, L->Params.MemSize, obs::Region::Code);
  return M;
}

const std::vector<std::string> &Executor::ffiNames() {
  return ffi::BasisFfi::callNames();
}

uint64_t Executor::cycleBudget() const {
  if (Spec.Exec.MaxCycles)
    return Spec.Exec.MaxCycles;
  // Derived: a generous cycles-per-instruction bound over the
  // instruction budget (the core retires one instruction every few
  // cycles; 16 leaves slack for memory latency), saturating.
  const uint64_t Cap = UINT64_MAX / 16;
  return Spec.Exec.MaxSteps > Cap ? UINT64_MAX : Spec.Exec.MaxSteps * 16;
}

Result<void> Executor::begin(Level L) {
  if (Session)
    return Error("an execution session is already active");
  if (L == Level::Spec)
    return Error("the spec level has no machine steps; use run()");

  InstrBudgetLeft = Spec.Exec.MaxSteps;
  LastStatus = RunStatus::Paused;
  if (Obs)
    Obs->onRunBegin(toExecLevel(L));
  // Balance onRunBegin even when session setup fails.
  auto Fail = [&](const Error &E) -> Result<void> {
    if (Obs)
      Obs->onRunEnd();
    return E;
  };

  switch (L) {
  case Level::Isa: {
    Result<sys::BootResult> Boot = sys::boot(Prep.Image, Obs);
    if (!Boot)
      return Fail(Boot.error());
    Session =
        std::make_unique<IsaSession>(Boot.take(), Spec.Exec, Obs);
    break;
  }
  case Level::Machine: {
    Result<sys::BootResult> Boot = sys::boot(Prep.Image);
    if (!Boot)
      return Fail(Boot.error());
    Session = std::make_unique<MachineSession>(Boot.take(), Spec, Obs);
    break;
  }
  case Level::Rtl:
  case Level::Verilog: {
    Result<sys::MemoryImage> Image = sys::buildImage(Prep.Image);
    if (!Image)
      return Fail(Image.error());
    // The effective cycle budget is resolved once here into a plain
    // integer; the per-cycle/per-step paths only ever compare counters.
    uint64_t Cycles = cycleBudget();
    cpu::RunOptions Options;
    Options.Level =
        L == Level::Verilog ? cpu::SimLevel::Verilog : cpu::SimLevel::Circuit;
    Options.MaxCycles = Cycles;
    Options.Obs = Obs;
    Options.CompiledVerilog = L == Level::Verilog &&
                              Spec.Exec.Hdl == HdlBackendKind::Compiled;
    Result<std::unique_ptr<cpu::CoreRunner>> Runner =
        cpu::CoreRunner::create(*Image, Options);
    if (!Runner)
      return Fail(Runner.error());
    Session = std::make_unique<RtlSession>(Runner.take(), Cycles);
    break;
  }
  case Level::Spec:
    break; // unreachable; rejected above
  }
  return {};
}

Result<RunStatus> Executor::step(uint64_t MaxInstructions) {
  if (!Session)
    return Error("no active execution session: call begin() first");
  if (LastStatus != RunStatus::Paused)
    return LastStatus; // over; finish() collects the outcome

  uint64_t Quota = std::min(MaxInstructions, InstrBudgetLeft);
  uint64_t Before = Session->instructions();
  Result<RunStatus> S = Session->step(Quota);
  if (!S) {
    // A fault ends the session; balance the observer stream.
    if (Obs)
      Obs->onRunEnd();
    Session.reset();
    return S.error();
  }
  uint64_t Used = Session->instructions() - Before;
  InstrBudgetLeft -= std::min(Used, InstrBudgetLeft);
  LastStatus = *S;
  if (LastStatus == RunStatus::Paused && InstrBudgetLeft == 0)
    LastStatus = RunStatus::Timeout; // the global budget, not the quota
  return LastStatus;
}

Result<StateDigest> Executor::sessionState() const {
  if (!Session)
    return Error("no active execution session: call begin() first");
  return Session->digest();
}

Result<uint64_t> Executor::sessionInstructions() const {
  if (!Session)
    return Error("no active execution session: call begin() first");
  return Session->instructions();
}

Result<Observed> Executor::sessionBehaviour() const {
  if (!Session)
    return Error("no active execution session: call begin() first");
  return Session->collect();
}

Result<void> Executor::replenish(uint64_t ExtraInstructions,
                                 uint64_t ExtraCycles) {
  if (!Session)
    return Error("no active execution session: call begin() first");
  if (LastStatus == RunStatus::Completed)
    return Error("session already completed; nothing to replenish");
  InstrBudgetLeft = ExtraInstructions > UINT64_MAX - InstrBudgetLeft
                        ? UINT64_MAX
                        : InstrBudgetLeft + ExtraInstructions;
  if (ExtraCycles == 0) {
    const uint64_t Cap = UINT64_MAX / 16;
    ExtraCycles =
        ExtraInstructions > Cap ? UINT64_MAX : ExtraInstructions * 16;
  }
  Session->addCycles(ExtraCycles);
  LastStatus = RunStatus::Paused;
  return {};
}

Result<Outcome> Executor::finish() {
  if (!Session)
    return Error("no active execution session: call begin() first");
  Outcome Out;
  Out.Status = LastStatus;
  Out.Behaviour = Session->collect();
  if (Obs)
    Obs->onRunEnd();
  Session.reset();
  return Out;
}

Result<Outcome> Executor::run(Level L) {
  if (L == Level::Spec) {
    // The reference interpreter: no machine steps, a single observable
    // behaviour.  Bracketed so counters/traces still see the run.
    if (Obs)
      Obs->onRunBegin(obs::ExecLevel::Spec);
    Result<Observed> R = runSpecLevel(Spec);
    if (Obs)
      Obs->onRunEnd();
    if (!R)
      return R.error();
    Outcome Out;
    Out.Status = RunStatus::Completed;
    Out.Behaviour = *R;
    return Out;
  }
  if (Result<void> B = begin(L); !B)
    return B.error();
  if (Result<RunStatus> S = step(UINT64_MAX); !S)
    return S.error(); // step() already tore the session down
  return finish();
}
