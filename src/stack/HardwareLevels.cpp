//===- stack/HardwareLevels.cpp - Rtl/Verilog level runners ------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "cpu/Check.h"
#include "stack/Stack.h"

using namespace silver;
using namespace silver::stack;

// Runs the compiled image on the Silver core — cycle-accurate circuit
// simulation, or the generated Verilog AST under verilog_sem.  This is
// the execution the paper's theorem (8) speaks about: the same memory
// image, the hardware implementation, the lab environment.
Result<Observed> silver::stack::runRtlLevel(const RunSpec &Spec,
                                            const Prepared &P,
                                            bool ThroughVerilog) {
  Result<sys::MemoryImage> Image = sys::buildImage(P.Image);
  if (!Image)
    return Image.error();

  cpu::RunOptions Options;
  Options.Level =
      ThroughVerilog ? cpu::SimLevel::Verilog : cpu::SimLevel::Circuit;
  // A generous cycles-per-instruction bound over the ISA step budget.
  Options.MaxCycles = Spec.MaxSteps;

  Result<cpu::CoreRunResult> R = cpu::runCore(*Image, Options);
  if (!R)
    return R.error();

  Observed O;
  O.Terminated = R->Halted;
  O.Cycles = R->Cycles;
  O.Instructions = R->Instructions;
  O.StdoutData = R->StdoutData;
  O.StderrData = R->StderrData;
  O.ExitCode = R->Exit.Exited ? R->Exit.Code : 0;
  return O;
}
