//===- stack/HardwareLevels.cpp - Rtl/Verilog level runners ------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "stack/Executor.h"
#include "stack/Stack.h"

using namespace silver;
using namespace silver::stack;

// Runs the compiled image on the Silver core — cycle-accurate circuit
// simulation, or the generated Verilog AST under verilog_sem.  This is
// the execution the paper's theorem (8) speaks about: the same memory
// image, the hardware implementation, the lab environment.  A thin
// deprecated wrapper over stack::Executor, which owns the runner
// (budgets, wedge watchdog, observer hookup) for all levels.
Result<Observed> silver::stack::runRtlLevel(const RunSpec &Spec,
                                            const Prepared &P,
                                            bool ThroughVerilog) {
  Executor Exec = Executor::fromPrepared(Spec, P);
  Result<Outcome> Out =
      Exec.run(ThroughVerilog ? Level::Verilog : Level::Rtl);
  if (!Out)
    return Out.error();
  return Out->Behaviour;
}
