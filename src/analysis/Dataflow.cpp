//===- analysis/Dataflow.cpp - Worklist dataflow over machine Cfgs ---------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "isa/Abi.h"
#include "isa/Effects.h"
#include "isa/Interp.h"

#include <algorithm>

using namespace silver;
using namespace silver::analysis;
using assembler::DecodedInstr;
using isa::Func;
using isa::Opcode;

// --- constant propagation ---------------------------------------------------

std::optional<Word> ConstProp::operandValue(const isa::Operand &Op,
                                            const Value &V) {
  if (Op.IsImm)
    return Op.immValue();
  return V.Regs[Op.Value];
}

bool ConstProp::join(Value &Into, const Value &From) const {
  bool Changed = false;
  for (unsigned R = 0; R != isa::NumRegs; ++R) {
    if (!Into.Regs[R])
      continue;
    if (!From.Regs[R] || *From.Regs[R] != *Into.Regs[R]) {
      Into.Regs[R] = std::nullopt;
      Changed = true;
    }
  }
  return Changed;
}

/// Whether evalAlu(F, ...) is a pure function of its register operands
/// (i.e. does not read the carry/overflow flags, which we do not track).
static bool flagFree(Func F) {
  return F != Func::AddCarry && F != Func::Carry && F != Func::Overflow;
}

/// Which operands the ALU function actually consumes.
static bool usesA(Func F) { return F != Func::Snd && flagFree(F); }
static bool usesB(Func F) {
  return F != Func::Inc && F != Func::Dec && flagFree(F);
}

void ConstProp::transfer(const DecodedInstr &D, Value &V) const {
  if (!D.Valid)
    return;
  const isa::Instruction &I = D.Instr;
  switch (I.Op) {
  case Opcode::Normal: {
    std::optional<Word> A = operandValue(I.A, V);
    std::optional<Word> B = operandValue(I.B, V);
    bool Known = flagFree(I.F) && (!usesA(I.F) || A) && (!usesB(I.F) || B);
    V.Regs[I.WReg] =
        Known ? std::optional<Word>(
                    isa::evalAlu(I.F, A.value_or(0), B.value_or(0),
                                 /*CarryIn=*/false, /*OverflowIn=*/false)
                        .Value)
              : std::nullopt;
    break;
  }
  case Opcode::Shift: {
    std::optional<Word> A = operandValue(I.A, V);
    std::optional<Word> B = operandValue(I.B, V);
    V.Regs[I.WReg] = (A && B)
                         ? std::optional<Word>(isa::evalShift(I.Sh, *A, *B))
                         : std::nullopt;
    break;
  }
  case Opcode::LoadMEM:
  case Opcode::LoadMEMByte:
  case Opcode::In:
    V.Regs[I.WReg] = std::nullopt;
    break;
  case Opcode::LoadConstant:
    V.Regs[I.WReg] = I.Negate ? (0u - I.Imm) : I.Imm;
    break;
  case Opcode::LoadUpperConstant:
    V.Regs[I.WReg] =
        V.Regs[I.WReg]
            ? std::optional<Word>((I.Imm << 21) | (*V.Regs[I.WReg] & 0x1fffff))
            : std::nullopt;
    break;
  case Opcode::Jump:
    V.Regs[I.WReg] = D.Addr + 4; // the link value
    break;
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNotZero:
  case Opcode::StoreMEM:
  case Opcode::StoreMEMByte:
  case Opcode::Interrupt:
  case Opcode::Out:
    break;
  }
}

ConstProp::Value ConstProp::edgeValue(const Cfg &G, size_t FromBlock,
                                      size_t ToBlock,
                                      const Value &Out) const {
  const BasicBlock &B = G.Blocks[FromBlock];
  Flow F = flowOf(G.Instrs[B.Last]);
  if (F.Kind != FlowKind::Call)
    return Out;
  // The fallthrough edge of a call is the return point: the callee may
  // have changed everything except the info registers r1-r4, which the
  // clobber discipline (audited for the syscall code) keeps intact.
  Word ReturnAddr = G.addrOf(B.Last) + 4;
  if (G.addrOf(G.Blocks[ToBlock].First) != ReturnAddr)
    return Out; // the call-target edge, not the return point
  Value Havocked;
  for (unsigned R = abi::MemStartReg; R <= abi::LayoutReg; ++R)
    Havocked.Regs[R] = Out.Regs[R];
  return Havocked;
}

ConstPropResult silver::analysis::runConstProp(const Cfg &G,
                                               const RegState &Entry) {
  ConstPropResult R;
  ConstProp D;
  R.Solved = solveForward(G, D, Entry);
  R.InstrIn.assign(G.Instrs.size(), RegState());
  for (size_t BI = 0, BE = G.Blocks.size(); BI != BE; ++BI) {
    if (!R.Solved.Reachable[BI])
      continue;
    RegState V = R.Solved.BlockIn[BI];
    const BasicBlock &B = G.Blocks[BI];
    for (size_t I = B.First; I <= B.Last; ++I) {
      R.InstrIn[I] = V;
      D.transfer(G.Instrs[I], V);
    }
  }
  return R;
}

// --- summaries --------------------------------------------------------------

void silver::analysis::accumulateDefUse(const isa::Instruction &I,
                                        RegSummary &S) {
  // The decoder-side effect metadata (isa/Effects.h) is the shared
  // source of truth; this summary only folds it into region-level masks.
  isa::EffectInfo E = isa::effectsOf(I);
  S.Defs |= E.RegWrites;
  S.Uses |= E.RegReads;
  S.DefsFlags |= E.WritesFlags;
  S.UsesFlags |= E.ReadsFlags;
}

RegSummary
silver::analysis::summarizeRegion(const Cfg &G,
                                  const std::vector<bool> &Reachable) {
  RegSummary S;
  for (size_t BI = 0, BE = G.Blocks.size(); BI != BE; ++BI) {
    if (!Reachable[BI])
      continue;
    const BasicBlock &B = G.Blocks[BI];
    for (size_t I = B.First; I <= B.Last; ++I)
      if (G.Instrs[I].Valid)
        accumulateDefUse(G.Instrs[I].Instr, S);
  }
  return S;
}

// --- region analysis --------------------------------------------------------

/// Resolves a computed jump's target from the register state before it.
static std::optional<Word> resolveJump(const DecodedInstr &D,
                                       const RegState &In) {
  const isa::Instruction &I = D.Instr;
  std::optional<Word> A = ConstProp::operandValue(I.A, In);
  if (!A || !flagFree(I.F))
    return std::nullopt;
  return isa::evalAlu(I.F, D.Addr, *A, false, false).Value;
}

RegionAnalysis silver::analysis::analyzeRegion(
    const std::vector<uint8_t> &Bytes, Word Base, Word Entry,
    const RegState &EntryRegs, unsigned MaxIterations) {
  RegionAnalysis R;
  std::vector<std::pair<Word, Word>> Edges;
  for (unsigned Iter = 0; Iter != MaxIterations; ++Iter) {
    R.G = Cfg::build(Bytes, Base, Entry, Edges);
    R.Consts = runConstProp(R.G, EntryRegs);
    R.Resolved.clear();

    bool Grew = false;
    for (size_t I = 0, E = R.G.Instrs.size(); I != E; ++I) {
      if (!R.instrReachable(I) || !R.G.Instrs[I].Valid)
        continue;
      Flow F = flowOf(R.G.Instrs[I]);
      bool Unresolved = (F.Kind == FlowKind::Computed ||
                         F.Kind == FlowKind::Call) &&
                        !F.Target;
      if (!Unresolved)
        continue;
      std::optional<Word> Target =
          resolveJump(R.G.Instrs[I], R.Consts.InstrIn[I]);
      if (!Target)
        continue;
      R.Resolved.push_back(
          {R.G.addrOf(I), *Target, F.Kind == FlowKind::Call});
      if (!R.G.instrAt(*Target))
        continue; // out of region (or misaligned): the audit's concern
      std::pair<Word, Word> Edge{R.G.addrOf(I), *Target};
      if (std::find(Edges.begin(), Edges.end(), Edge) == Edges.end()) {
        Edges.push_back(Edge);
        Grew = true;
      }
    }
    if (!Grew)
      break;
  }
  return R;
}
