//===- analysis/VerilogLint.cpp - Linter for the Verilog subset ------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/VerilogLint.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

using namespace silver;
using namespace silver::hdl;
using namespace silver::analysis;

const char *silver::analysis::lintRuleId(LintRule R) {
  switch (R) {
  case LintRule::MultiDriver:
    return "hdl-multi-driver";
  case LintRule::MixedAssign:
    return "hdl-mixed-assign";
  case LintRule::NonLocalIntermediate:
    return "hdl-nonlocal-intermediate";
  case LintRule::ReadBeforeWrite:
    return "hdl-read-before-write";
  case LintRule::WidthMismatch:
    return "hdl-width-mismatch";
  case LintRule::Undeclared:
    return "hdl-undeclared";
  case LintRule::InputWrite:
    return "hdl-input-write";
  case LintRule::MemBounds:
    return "hdl-mem-bounds";
  case LintRule::TypeError:
    return "hdl-type-error";
  }
  return "hdl-unknown";
}

std::string silver::analysis::formatDiag(const LintDiag &D) {
  std::string Out = lintRuleId(D.Rule);
  if (D.Process >= 0) {
    Out += " @ process ";
    Out += std::to_string(D.Process);
    Out += ' ';
    Out += D.Path;
  }
  Out += ": ";
  Out += D.Message;
  return Out;
}

namespace {

/// Per-process fact collection for the cross-process checks.
struct ProcessFacts {
  std::set<std::string> BlockWr; ///< blocking-assigned variables
  std::set<std::string> NbWr;    ///< non-blocking / memory-write targets
  std::set<std::string> Reads;   ///< every variable or memory read
};

class Linter {
public:
  explicit Linter(const VModule &M) : M(M) {}

  std::vector<LintDiag> run();

private:
  const VModule &M;
  std::map<std::string, VType> Types;
  std::set<std::string> InputNames;
  std::vector<LintDiag> Diags;

  // Walk-local state (valid while linting one process).
  int Proc = -1;
  std::vector<std::string> Path;
  ProcessFacts *Facts = nullptr;
  std::set<std::string> Definite; ///< blocking vars assigned so far

  void diag(LintRule R, std::string Message) {
    LintDiag D;
    D.Rule = R;
    D.Process = Proc;
    for (const std::string &P : Path) {
      if (!D.Path.empty())
        D.Path += '/';
      D.Path += P;
    }
    D.Message = std::move(Message);
    Diags.push_back(std::move(D));
  }

  /// Collects the write sets of a statement (pre-pass, no diagnostics).
  static void collectWrites(const VStmt &S, ProcessFacts &F);

  std::optional<VType> typeOf(const VExp &E);
  void checkStmt(const VStmt &S);
};

void Linter::collectWrites(const VStmt &S, ProcessFacts &F) {
  switch (S.Kind) {
  case VStmtKind::Block:
    for (const VStmtPtr &Sub : S.Stmts)
      collectWrites(*Sub, F);
    return;
  case VStmtKind::If:
    collectWrites(*S.Then, F);
    if (S.Else)
      collectWrites(*S.Else, F);
    return;
  case VStmtKind::BlockingAssign:
    F.BlockWr.insert(S.Lhs);
    return;
  case VStmtKind::NonBlockingAssign:
  case VStmtKind::MemWrite:
    F.NbWr.insert(S.Lhs);
    return;
  }
}

std::optional<VType> Linter::typeOf(const VExp &E) {
  switch (E.Kind) {
  case VExpKind::ConstBool:
    return VType::boolean();
  case VExpKind::ConstVec:
    return VType::vec(E.Width);
  case VExpKind::Var: {
    Facts->Reads.insert(E.Name);
    auto It = Types.find(E.Name);
    if (It == Types.end()) {
      diag(LintRule::Undeclared, "read of undeclared variable '" + E.Name +
                                     "'");
      return std::nullopt;
    }
    if (It->second.K == VType::Kind::Mem) {
      diag(LintRule::TypeError,
           "memory '" + E.Name + "' used as a plain variable");
      return std::nullopt;
    }
    if (Facts->BlockWr.count(E.Name) && !Definite.count(E.Name))
      diag(LintRule::ReadBeforeWrite,
           "blocking intermediate '" + E.Name +
               "' read before it is assigned in this process");
    return It->second;
  }
  case VExpKind::MemRead: {
    Facts->Reads.insert(E.Name);
    auto It = Types.find(E.Name);
    if (It == Types.end()) {
      diag(LintRule::Undeclared,
           "memory read of undeclared '" + E.Name + "'");
      return std::nullopt;
    }
    if (It->second.K != VType::Kind::Mem) {
      diag(LintRule::TypeError,
           "memory read of non-memory '" + E.Name + "'");
      return std::nullopt;
    }
    std::optional<VType> Idx = typeOf(*E.Args[0]);
    if (Idx && Idx->K != VType::Kind::Vec)
      diag(LintRule::TypeError, "memory index must be a vector");
    if (E.Args[0]->Kind == VExpKind::ConstVec &&
        E.Args[0]->Bits >= It->second.Depth)
      diag(LintRule::MemBounds,
           "constant index " + std::to_string(E.Args[0]->Bits) +
               " out of range for '" + E.Name + "' (depth " +
               std::to_string(It->second.Depth) + ")");
    return VType::vec(It->second.Width);
  }
  case VExpKind::Binary: {
    std::optional<VType> A = typeOf(*E.Args[0]);
    std::optional<VType> B = typeOf(*E.Args[1]);
    if (!A || !B)
      return std::nullopt;
    bool BoolOk = E.BOp == BinaryOp::And || E.BOp == BinaryOp::Or ||
                  E.BOp == BinaryOp::Xor || E.BOp == BinaryOp::Eq;
    if (A->K == VType::Kind::Bool || B->K == VType::Kind::Bool) {
      if (!(A->K == VType::Kind::Bool && B->K == VType::Kind::Bool &&
            BoolOk)) {
        diag(LintRule::TypeError, "boolean operand in a vector operator");
        return std::nullopt;
      }
      return E.BOp == BinaryOp::Eq ? VType::boolean() : *A;
    }
    bool ShiftOp = E.BOp == BinaryOp::Shl || E.BOp == BinaryOp::ShrL ||
                   E.BOp == BinaryOp::ShrA;
    if (!ShiftOp && A->Width != B->Width)
      diag(LintRule::WidthMismatch,
           "width mismatch in binary operator: " +
               std::to_string(A->Width) + " vs " +
               std::to_string(B->Width));
    if (E.BOp == BinaryOp::Eq || E.BOp == BinaryOp::LtU ||
        E.BOp == BinaryOp::LtS)
      return VType::boolean();
    return *A;
  }
  case VExpKind::Unary: {
    std::optional<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return std::nullopt;
    if (E.UOp == UnaryOp::LogicNot)
      return VType::boolean();
    return *A;
  }
  case VExpKind::Slice: {
    if (E.Args[0]->Kind != VExpKind::Var &&
        E.Args[0]->Kind != VExpKind::MemRead) {
      diag(LintRule::TypeError,
           "slice base must be a variable (synthesisable subset)");
      return std::nullopt;
    }
    std::optional<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return std::nullopt;
    if (A->K != VType::Kind::Vec || E.Hi < E.Lo || E.Hi >= A->Width) {
      diag(LintRule::TypeError, "bad slice bounds");
      return std::nullopt;
    }
    return VType::vec(E.Hi - E.Lo + 1);
  }
  case VExpKind::Concat: {
    std::optional<VType> A = typeOf(*E.Args[0]);
    std::optional<VType> B = typeOf(*E.Args[1]);
    if (!A || !B)
      return std::nullopt;
    if (A->K != VType::Kind::Vec || B->K != VType::Kind::Vec ||
        A->Width + B->Width > 64) {
      diag(LintRule::TypeError, "bad concatenation");
      return std::nullopt;
    }
    return VType::vec(A->Width + B->Width);
  }
  case VExpKind::Cond: {
    std::optional<VType> C = typeOf(*E.Args[0]);
    if (C && C->K != VType::Kind::Bool)
      diag(LintRule::TypeError, "condition must be boolean");
    std::optional<VType> T = typeOf(*E.Args[1]);
    std::optional<VType> F = typeOf(*E.Args[2]);
    if (!T || !F)
      return std::nullopt;
    if (!(*T == *F)) {
      if (T->K == VType::Kind::Vec && F->K == VType::Kind::Vec)
        diag(LintRule::WidthMismatch,
             "conditional branches have widths " +
                 std::to_string(T->Width) + " vs " +
                 std::to_string(F->Width));
      else
        diag(LintRule::TypeError,
             "conditional branches have different types");
    }
    return *T;
  }
  case VExpKind::ZeroExt:
  case VExpKind::SignExt: {
    std::optional<VType> A = typeOf(*E.Args[0]);
    if (!A)
      return std::nullopt;
    if (A->K != VType::Kind::Vec || E.Width < A->Width || E.Width > 64) {
      diag(LintRule::TypeError, "bad width extension");
      return std::nullopt;
    }
    return VType::vec(E.Width);
  }
  case VExpKind::BoolToVec: {
    std::optional<VType> A = typeOf(*E.Args[0]);
    if (A && A->K != VType::Kind::Bool)
      diag(LintRule::TypeError, "bool-to-vec of a non-boolean");
    return VType::vec(1);
  }
  case VExpKind::VecToBool: {
    std::optional<VType> A = typeOf(*E.Args[0]);
    if (A && A->K != VType::Kind::Vec)
      diag(LintRule::TypeError, "vec-to-bool of a non-vector");
    return VType::boolean();
  }
  }
  return std::nullopt;
}

void Linter::checkStmt(const VStmt &S) {
  switch (S.Kind) {
  case VStmtKind::Block: {
    for (size_t I = 0; I != S.Stmts.size(); ++I) {
      Path.push_back("s" + std::to_string(I));
      checkStmt(*S.Stmts[I]);
      Path.pop_back();
    }
    return;
  }
  case VStmtKind::If: {
    std::optional<VType> C = typeOf(*S.Cond);
    if (C && C->K == VType::Kind::Mem)
      diag(LintRule::TypeError, "memory used as a condition");
    std::set<std::string> Before = Definite;
    Path.push_back("then");
    checkStmt(*S.Then);
    Path.pop_back();
    std::set<std::string> AfterThen = std::move(Definite);
    Definite = std::move(Before);
    if (S.Else) {
      Path.push_back("else");
      checkStmt(*S.Else);
      Path.pop_back();
    }
    // Definitely assigned after the If: assigned on both paths.
    std::set<std::string> Meet;
    std::set_intersection(AfterThen.begin(), AfterThen.end(),
                          Definite.begin(), Definite.end(),
                          std::inserter(Meet, Meet.begin()));
    Definite = std::move(Meet);
    return;
  }
  case VStmtKind::BlockingAssign:
  case VStmtKind::NonBlockingAssign: {
    std::optional<VType> RT = typeOf(*S.Rhs);
    auto It = Types.find(S.Lhs);
    if (It == Types.end()) {
      diag(LintRule::Undeclared,
           "assignment to undeclared '" + S.Lhs + "'");
      return;
    }
    if (InputNames.count(S.Lhs))
      diag(LintRule::InputWrite,
           "assignment to input port '" + S.Lhs + "'");
    if (It->second.K == VType::Kind::Mem) {
      diag(LintRule::TypeError,
           "whole-memory assignment to '" + S.Lhs + "'");
      return;
    }
    if (RT && !(*RT == It->second)) {
      if (RT->K == VType::Kind::Vec && It->second.K == VType::Kind::Vec)
        diag(LintRule::WidthMismatch,
             "assignment to '" + S.Lhs + "' ([" +
                 std::to_string(It->second.Width) + "]) from width " +
                 std::to_string(RT->Width));
      else
        diag(LintRule::TypeError,
             "assignment type mismatch on '" + S.Lhs + "'");
    }
    if (S.Kind == VStmtKind::BlockingAssign)
      Definite.insert(S.Lhs);
    return;
  }
  case VStmtKind::MemWrite: {
    auto It = Types.find(S.Lhs);
    if (It == Types.end()) {
      diag(LintRule::Undeclared,
           "memory write to undeclared '" + S.Lhs + "'");
      return;
    }
    if (It->second.K != VType::Kind::Mem) {
      diag(LintRule::TypeError,
           "memory write to non-memory '" + S.Lhs + "'");
      return;
    }
    typeOf(*S.Index);
    if (S.Index->Kind == VExpKind::ConstVec &&
        S.Index->Bits >= It->second.Depth)
      diag(LintRule::MemBounds,
           "constant index " + std::to_string(S.Index->Bits) +
               " out of range for '" + S.Lhs + "' (depth " +
               std::to_string(It->second.Depth) + ")");
    std::optional<VType> RT = typeOf(*S.Rhs);
    if (RT && (RT->K != VType::Kind::Vec || RT->Width != It->second.Width))
      diag(LintRule::WidthMismatch,
           "memory write width mismatch on '" + S.Lhs + "'");
    return;
  }
  }
}

std::vector<LintDiag> Linter::run() {
  // Module level: declaration table.
  for (const VPort &P : M.Ports) {
    if (P.Type.K == VType::Kind::Mem)
      diag(LintRule::TypeError, "memory-typed port '" + P.Name + "'");
    if (!Types.emplace(P.Name, P.Type).second)
      diag(LintRule::TypeError, "duplicate port '" + P.Name + "'");
    if (P.D == VPort::Dir::Input)
      InputNames.insert(P.Name);
  }
  for (const VDecl &D : M.Decls)
    if (!Types.emplace(D.Name, D.Type).second)
      diag(LintRule::TypeError, "duplicate declaration '" + D.Name + "'");

  // Per process.
  std::vector<ProcessFacts> AllFacts(M.Processes.size());
  for (size_t I = 0; I != M.Processes.size(); ++I) {
    Proc = static_cast<int>(I);
    Facts = &AllFacts[I];
    collectWrites(*M.Processes[I].Body, *Facts);
    Path = {"body"};
    Definite.clear();
    checkStmt(*M.Processes[I].Body);
  }
  Proc = -1;
  Path.clear();

  // Cross-process checks, deterministic by variable name.
  std::map<std::string, std::vector<size_t>> Writers;
  std::map<std::string, std::vector<size_t>> BlockWriters;
  std::map<std::string, std::vector<size_t>> NbWriters;
  for (size_t I = 0; I != AllFacts.size(); ++I) {
    for (const std::string &Name : AllFacts[I].BlockWr) {
      Writers[Name].push_back(I);
      BlockWriters[Name].push_back(I);
    }
    for (const std::string &Name : AllFacts[I].NbWr) {
      if (!AllFacts[I].BlockWr.count(Name))
        Writers[Name].push_back(I);
      NbWriters[Name].push_back(I);
    }
  }
  for (const auto &[Name, Procs] : Writers)
    if (Procs.size() > 1) {
      std::string Which;
      for (size_t P : Procs)
        Which += (Which.empty() ? "" : ", ") + std::to_string(P);
      diag(LintRule::MultiDriver, "variable '" + Name +
                                      "' driven by processes " + Which);
    }
  for (const auto &[Name, BProcs] : BlockWriters) {
    if (NbWriters.count(Name))
      diag(LintRule::MixedAssign,
           "variable '" + Name +
               "' written both blocking (intermediate) and non-blocking "
               "(state)");
    for (size_t I = 0; I != AllFacts.size(); ++I)
      if (AllFacts[I].Reads.count(Name) &&
          std::find(BProcs.begin(), BProcs.end(), I) == BProcs.end())
        diag(LintRule::NonLocalIntermediate,
             "blocking intermediate '" + Name +
                 "' written by process " + std::to_string(BProcs[0]) +
                 " but read by process " + std::to_string(I));
  }
  return std::move(Diags);
}

} // namespace

std::vector<LintDiag> silver::analysis::lintModule(const VModule &M) {
  return Linter(M).run();
}
