//===- analysis/Dataflow.h - Worklist dataflow over machine Cfgs -*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic forward worklist solver over analysis::Cfg, plus the two
/// instances the image audit needs: register constant propagation (which
/// resolves the assembler's load-address-then-jump sequences to static
/// targets and store instructions to static addresses) and register
/// def/use/clobber summaries (the static counterpart of the FFI clobber
/// discipline checked dynamically by machine::checkInterferenceImpl).
///
/// A Domain provides:
///   using Value = ...;                       // a join-semilattice element
///   bool join(Value &Into, const Value &From);  // returns true on change
///   void transfer(const assembler::DecodedInstr &I, Value &V);
///   Value edgeValue(const Cfg &G, size_t FromBlock, size_t ToBlock,
///                   const Value &Out);       // per-edge adjustment
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ANALYSIS_DATAFLOW_H
#define SILVER_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"
#include "isa/Instruction.h"

#include <array>
#include <deque>
#include <optional>

namespace silver {
namespace analysis {

/// Solver output: per-block in-values plus the reachable set (a block is
/// reachable when the solver ever visited it from the entry).
template <typename Domain> struct DataflowResult {
  std::vector<typename Domain::Value> BlockIn;
  std::vector<bool> Reachable;
};

/// Forward worklist iteration from the Cfg entry to a fixpoint.  Values
/// propagate only along intra-region edges; computed or external exits
/// contribute nothing (the audit validates their targets separately).
template <typename Domain>
DataflowResult<Domain> solveForward(const Cfg &G, Domain &D,
                                    typename Domain::Value EntryValue) {
  DataflowResult<Domain> R;
  R.BlockIn.assign(G.Blocks.size(), typename Domain::Value());
  R.Reachable.assign(G.Blocks.size(), false);
  if (G.Blocks.empty())
    return R;

  std::deque<size_t> Worklist;
  std::vector<bool> Queued(G.Blocks.size(), false);
  R.BlockIn[G.EntryBlock] = std::move(EntryValue);
  R.Reachable[G.EntryBlock] = true;
  Worklist.push_back(G.EntryBlock);
  Queued[G.EntryBlock] = true;

  while (!Worklist.empty()) {
    size_t BI = Worklist.front();
    Worklist.pop_front();
    Queued[BI] = false;

    typename Domain::Value Out = R.BlockIn[BI];
    const BasicBlock &B = G.Blocks[BI];
    for (size_t I = B.First; I <= B.Last; ++I)
      D.transfer(G.Instrs[I], Out);

    for (size_t Succ : B.Succs) {
      typename Domain::Value Edge = D.edgeValue(G, BI, Succ, Out);
      bool Changed = !R.Reachable[Succ] || D.join(R.BlockIn[Succ], Edge);
      if (!R.Reachable[Succ]) {
        R.BlockIn[Succ] = std::move(Edge);
        R.Reachable[Succ] = true;
      }
      if (Changed && !Queued[Succ]) {
        Worklist.push_back(Succ);
        Queued[Succ] = true;
      }
    }
  }
  return R;
}

// --- constant propagation ---------------------------------------------------

/// Per-register lattice: a known 32-bit constant or no information.
struct RegState {
  std::array<std::optional<Word>, isa::NumRegs> Regs;

  bool operator==(const RegState &O) const { return Regs == O.Regs; }
};

/// Constant propagation.  Registers seeded with entry constants (the
/// installed-state info registers r1-r4) stay constant until written; at
/// a call's return point every register except r1-r4 is havocked, since
/// the callee's effect is unknown (keeping r1-r4 encodes the convention,
/// audited for the syscall code, that they are never clobbered).
class ConstProp {
public:
  using Value = RegState;

  bool join(Value &Into, const Value &From) const;
  void transfer(const assembler::DecodedInstr &D, Value &V) const;
  Value edgeValue(const Cfg &G, size_t FromBlock, size_t ToBlock,
                  const Value &Out) const;

  /// The value a register-or-immediate operand evaluates to, if known.
  static std::optional<Word> operandValue(const isa::Operand &Op,
                                          const Value &V);
};

/// Runs constant propagation and pre-computes, for every instruction of a
/// reachable block, the register state just before it executes.
struct ConstPropResult {
  DataflowResult<ConstProp> Solved;
  std::vector<RegState> InstrIn; ///< indexed like Cfg::Instrs

  bool reachable(const Cfg &G, size_t InstrIdx) const {
    return Solved.Reachable[G.BlockOf[InstrIdx]];
  }
};
ConstPropResult runConstProp(const Cfg &G, const RegState &Entry);

// --- summaries --------------------------------------------------------------

/// Register def/use sets over the reachable part of a region, as 64-bit
/// masks (bit r = register r).
struct RegSummary {
  uint64_t Defs = 0;
  uint64_t Uses = 0;
  bool DefsFlags = false; ///< executes an Add/AddCarry/Sub ALU operation
  bool UsesFlags = false; ///< executes AddCarry/Carry/Overflow

  bool defs(unsigned Reg) const { return (Defs >> Reg) & 1; }
  bool uses(unsigned Reg) const { return (Uses >> Reg) & 1; }
};

/// Accumulates defs/uses of a single instruction into \p S.
void accumulateDefUse(const isa::Instruction &I, RegSummary &S);

/// Summary over every instruction of a reachable block.
RegSummary summarizeRegion(const Cfg &G, const std::vector<bool> &Reachable);

// --- region analysis (Cfg + constprop to a mutual fixpoint) -----------------

/// The computed jumps constant propagation managed to resolve.
struct ResolvedJump {
  Word FromAddr = 0;
  Word Target = 0;
  bool IsCall = false;
};

/// A fully analysed region: constant propagation resolves computed jumps,
/// resolved in-region targets become new block leaders, and the pair is
/// re-run until no new edges appear (bounded; the bound is generous
/// compared to real call-graph depths).
struct RegionAnalysis {
  Cfg G;
  ConstPropResult Consts;
  std::vector<ResolvedJump> Resolved;

  bool instrReachable(size_t Idx) const { return Consts.reachable(G, Idx); }
};

RegionAnalysis analyzeRegion(const std::vector<uint8_t> &Bytes, Word Base,
                             Word Entry, const RegState &EntryRegs,
                             unsigned MaxIterations = 32);

} // namespace analysis
} // namespace silver

#endif // SILVER_ANALYSIS_DATAFLOW_H
