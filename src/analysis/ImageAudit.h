//===- analysis/ImageAudit.h - Static audit of bootable images -*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static, executable approximation of the paper's `installed`
/// predicate (§5) over a built sys::MemoryImage.  Where
/// sys::validateInstalled inspects a post-startup *dynamic* machine
/// state, the audit inspects the image itself, before any instruction
/// runs:
///
///   - the Fig. 2 regions are word-aligned, ordered, and non-overlapping
///     (installed (ii)/(iii));
///   - every machine instruction reachable from the startup, syscall, and
///     program entry points decodes (installed (iv): "code in memory");
///   - every reachable static or constant-resolvable jump/call lands in a
///     code region, and cross-region transfers hit that region's sole
///     entry point (installed (i): r3 addresses the FFI entry);
///   - no reachable store with a constant-resolvable address targets
///     reachable instruction bytes — a static W^X discipline;
///   - the syscall code's register-def summary stays inside the clobber
///     set permitted to the interference oracle (installed (v), checked
///     dynamically by machine::checkInterferenceImpl).
///
/// Reachability and address resolution come from analysis/Cfg.h and
/// analysis/Dataflow.h; the audit is conservative in the usual static
/// sense — it validates everything it can resolve and stays silent on
/// register-indirect transfers it cannot (closure calls, returns).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ANALYSIS_IMAGEAUDIT_H
#define SILVER_ANALYSIS_IMAGEAUDIT_H

#include "analysis/Dataflow.h"
#include "sys/Image.h"

#include <string>
#include <vector>

namespace silver {
namespace analysis {

/// Audit rule identifiers; see DESIGN.md for the paper-side-condition map.
enum class AuditRule : uint8_t {
  Layout,         ///< regions misplaced, misaligned, or overlapping
  Decode,         ///< a reachable instruction does not decode
  JumpTarget,     ///< a resolvable transfer leaves the code regions
  WriteToCode,    ///< a resolvable store targets instruction bytes (W^X)
  SyscallClobber, ///< syscall code writes outside its permitted set
  // Opt-in obligations derived from the symbolic block summaries
  // (BlockSummary.h); enforced by stack::auditPrepared on request.
  StackDiscipline, ///< a program block leaves the stack pointer unknown
  RawIo,           ///< a program block does In/Out/Interrupt directly
};

/// The stable string identifier of a rule (e.g. "img-layout").
const char *auditRuleId(AuditRule R);

/// The three code regions of Fig. 2.
enum class CodeRegion : uint8_t { Startup, Syscall, Program };

const char *regionName(CodeRegion R);

/// One diagnostic.
struct AuditDiag {
  AuditRule Rule = AuditRule::Layout;
  CodeRegion Region = CodeRegion::Startup;
  bool HasRegion = false; ///< false for image-level (layout) diagnostics
  Word Addr = 0;          ///< offending instruction address (when HasRegion)
  std::string Message;
};

/// Renders "rule @ region addr: message".
std::string formatDiag(const AuditDiag &D);

/// The audit result: diagnostics plus the per-region analyses, exposed so
/// callers (the silver-lint tool, tests) can report coverage statistics.
struct AuditReport {
  std::vector<AuditDiag> Diags;
  sys::MemoryLayout Layout; ///< the audited image's layout
  RegionAnalysis Startup;
  RegionAnalysis Syscall;
  RegionAnalysis Program;
  RegSummary SyscallSummary; ///< def/use over the reachable syscall code

  bool ok() const { return Diags.empty(); }
};

/// Audits \p Image.  \p ProgramSize bounds the program region's decoded
/// extent (bytes from CodeBase); pass the built program's size, or 0 to
/// decode up to the end of memory.
AuditReport auditImage(const sys::MemoryImage &Image, Word ProgramSize = 0);

} // namespace analysis
} // namespace silver

#endif // SILVER_ANALYSIS_IMAGEAUDIT_H
