//===- analysis/VerilogLint.h - Linter for the Verilog subset ---*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A collecting linter for hdl::VModule.  Where hdl::typeCheck stops at
/// the first violation of the paper's vars_has_type / non-interference
/// obligations (§3), the linter keeps going and reports every violation
/// with a rule identifier, the offending process index, and a statement
/// path — the shape a CI gate or an editor integration wants.  It also
/// checks properties the fail-fast checker does not: blocking
/// intermediates must be written before they are read within their
/// process (the subset's processes run over cycle-start state, so a
/// read-before-write silently sees last cycle's leftover), state and
/// intermediates must not share a variable, blocking intermediates are
/// process-local, and constant memory indices must be in range.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ANALYSIS_VERILOGLINT_H
#define SILVER_ANALYSIS_VERILOGLINT_H

#include "hdl/Verilog.h"

#include <string>
#include <vector>

namespace silver {
namespace analysis {

/// Lint rule identifiers.  Each corresponds to a side condition of the
/// paper's Verilog subset (§3) — see DESIGN.md's static-analysis section
/// for the mapping.
enum class LintRule : uint8_t {
  MultiDriver,          ///< variable written by two processes
  MixedAssign,          ///< same variable written blocking and non-blocking
  NonLocalIntermediate, ///< blocking intermediate read by another process
  ReadBeforeWrite,      ///< blocking intermediate read before assigned
  WidthMismatch,        ///< vector widths disagree (operator or assignment)
  Undeclared,           ///< read or write of an undeclared variable
  InputWrite,           ///< assignment to an input port
  MemBounds,            ///< constant memory index out of range
  TypeError,            ///< other type violation (kind mismatch, bad slice)
};

/// The stable string identifier of a rule (e.g. "hdl-multi-driver").
const char *lintRuleId(LintRule R);

/// One diagnostic.
struct LintDiag {
  LintRule Rule = LintRule::TypeError;
  int Process = -1;    ///< process index; -1 for module-level diagnostics
  std::string Path;    ///< statement path, e.g. "body/s3/then/s0"
  std::string Message; ///< human-readable description
};

/// Renders "rule @ process N path: message".
std::string formatDiag(const LintDiag &D);

/// Lints \p M and returns every diagnostic, in deterministic order
/// (module-level first, then by process and statement position, then the
/// cross-process checks).  An empty result implies hdl::typeCheck passes.
std::vector<LintDiag> lintModule(const hdl::VModule &M);

} // namespace analysis
} // namespace silver

#endif // SILVER_ANALYSIS_VERILOGLINT_H
