//===- analysis/JitReadiness.h - JIT-readiness report -----------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregates an image's block summaries (BlockSummary.h) into the
/// tracked JIT-readiness metric: per region, how many reachable blocks
/// the baseline JIT may translate, how many must stay on the
/// interpreter and why (a reasons histogram), how many exit through a
/// computed target, and how many leave the stack pointer unknown.  The
/// JSON serialisation is byte-deterministic — the committed
/// reports/jit-readiness/*.json files are diffed against regenerated
/// output by the CI analysis gate, so a compiler or analysis change that
/// shifts a block's classification fails the build visibly.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ANALYSIS_JITREADINESS_H
#define SILVER_ANALYSIS_JITREADINESS_H

#include "analysis/BlockSummary.h"
#include "analysis/Diagnostic.h"
#include "isa/MachineState.h"

#include <array>
#include <string>
#include <vector>

namespace silver {
namespace analysis {

/// Readiness counts over one region's *reachable* blocks (unreachable
/// blocks are dead bytes — usually data decoded as code — and would
/// drown the metric).
struct RegionReadiness {
  std::string Name;
  size_t Blocks = 0;       ///< reachable blocks
  size_t Translatable = 0;
  size_t ComputedExits = 0; ///< blocks whose successor set is inexact
  size_t UnknownStack = 0;  ///< blocks leaving the stack pointer unknown
  std::array<size_t, NumInterpReasons> Reasons{}; ///< indexed by InterpReason
};

/// The per-image readiness report.
struct JitReadinessReport {
  std::vector<RegionReadiness> Regions; ///< startup, syscall, program

  size_t totalBlocks() const;
  size_t totalTranslatable() const;
  /// Translatable fraction over all reachable blocks (1 when empty).
  double fraction() const;
};

/// Aggregates \p S into the report.
JitReadinessReport jitReadiness(const ImageSummary &S);

/// Byte-deterministic JSON rendering (fixed key order, all histogram
/// keys present, fraction with four decimals).
std::string toJson(const JitReadinessReport &R);

/// Advisory diagnostics for the front ends: one "jit-interpreter-only"
/// note per reachable InterpreterOnly block, listing its reasons.
std::vector<Diagnostic> readinessDiagnostics(const ImageSummary &S);

/// Cross-checks the static classification against the JIT's actual
/// block scan (isa::jit::probeBlock shares the compiler's code path):
/// one "jit-bailout" note per reachable block the summaries classify
/// Translatable but the JIT refuses at compile time, with the stable
/// refusal reason.  \p State is the booted image the summaries describe
/// (sys::initialState); the probe is pure C++ and host-independent, so
/// the notes — and the committed reports containing them — are
/// byte-identical across hosts.
std::vector<Diagnostic> jitBailoutDiagnostics(const ImageSummary &S,
                                              const isa::MachineState &State);

} // namespace analysis
} // namespace silver

#endif // SILVER_ANALYSIS_JITREADINESS_H
