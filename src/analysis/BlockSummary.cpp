//===- analysis/BlockSummary.cpp - Symbolic basic-block summaries ----------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/BlockSummary.h"

#include "isa/Abi.h"
#include "isa/Interp.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace silver;
using namespace silver::analysis;
using assembler::DecodedInstr;
using isa::Func;
using isa::Opcode;

// --- rendering --------------------------------------------------------------

std::string silver::analysis::toString(const SymValue &V) {
  switch (V.K) {
  case SymValue::Kind::Top:
    return "?";
  case SymValue::Kind::Const:
    return toHex(V.Off);
  case SymValue::Kind::RegPlus: {
    std::string Out = "r" + std::to_string(V.Reg);
    if (V.Off == 0)
      return Out;
    int32_t Off = static_cast<int32_t>(V.Off);
    Out += Off < 0 ? "-" : "+";
    Out += toHex(static_cast<Word>(Off < 0 ? -Off : Off));
    return Out;
  }
  }
  return "?";
}

/// Renders a signed interval bound compactly ("-0x8", "0x10").
static std::string offsetString(Word V) {
  int32_t S = static_cast<int32_t>(V);
  if (S < 0)
    return "-" + toHex(static_cast<Word>(-S));
  return toHex(V);
}

std::string silver::analysis::toString(const MemRange &R) {
  switch (R.K) {
  case MemRange::Kind::None:
    return "none";
  case MemRange::Kind::Unbounded:
    return "*/" + std::to_string(R.Align);
  case MemRange::Kind::Absolute:
    return "[" + toHex(R.Lo) + "," + toHex(R.Hi) + "]/" +
           std::to_string(R.Align);
  case MemRange::Kind::RegRel:
    return "r" + std::to_string(R.Reg) + "+[" + offsetString(R.Lo) + "," +
           offsetString(R.Hi) + "]/" + std::to_string(R.Align);
  }
  return "none";
}

const char *silver::analysis::interpReasonId(InterpReason R) {
  switch (R) {
  case InterpReason::IllegalInstruction:
    return "illegal-instruction";
  case InterpReason::SelfModifying:
    return "self-modifying";
  case InterpReason::UnresolvedSuccessor:
    return "unresolved-successor";
  case InterpReason::FfiBoundary:
    return "ffi-boundary";
  case InterpReason::Io:
    return "io";
  }
  return "?";
}

// --- the memory-range lattice -----------------------------------------------

MemRange MemRange::ofAccess(const SymValue &Addr, uint8_t Size) {
  // A word access that retires is 4-aligned by the ISA semantics (a
  // misaligned address faults), so the alignment claim is the size.
  uint8_t Align = Size;
  switch (Addr.K) {
  case SymValue::Kind::Const:
    return absolute(Addr.Off, Addr.Off + Size - 1, Align);
  case SymValue::Kind::RegPlus:
    return regRel(Addr.Reg, Addr.Off, Addr.Off + Size - 1, Align);
  case SymValue::Kind::Top:
    return unbounded(Align);
  }
  return unbounded(Align);
}

MemRange MemRange::join(const MemRange &A, const MemRange &B) {
  if (A.K == Kind::None)
    return B;
  if (B.K == Kind::None)
    return A;
  uint8_t Align = std::min(A.Align, B.Align);
  if (A.K == Kind::Absolute && B.K == Kind::Absolute)
    return absolute(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi), Align);
  if (A.K == Kind::RegRel && B.K == Kind::RegRel && A.Reg == B.Reg) {
    // Offsets are signed displacements from the base register.
    auto SLo = std::min(static_cast<int32_t>(A.Lo), static_cast<int32_t>(B.Lo));
    auto SHi = std::max(static_cast<int32_t>(A.Hi), static_cast<int32_t>(B.Hi));
    return regRel(A.Reg, static_cast<Word>(SLo), static_cast<Word>(SHi),
                  Align);
  }
  return unbounded(Align);
}

bool MemRange::contains(Word Addr, uint8_t Size,
                        const std::array<Word, isa::NumRegs> &Entry) const {
  switch (K) {
  case Kind::None:
    return false;
  case Kind::Unbounded:
    break;
  case Kind::Absolute:
  case Kind::RegRel: {
    // All arithmetic mod 2^32: walking up from Lo covers signed RegRel
    // displacements and absolute intervals alike.
    Word Base = K == Kind::RegRel ? Entry[Reg] : 0;
    Word Start = Base + Lo;
    Word Span = Hi - Lo;
    Word First = Addr - Start;
    Word Last = First + Size - 1;
    if (First > Span || Last > Span)
      return false;
    break;
  }
  }
  return Align <= 1 || Addr % Align == 0;
}

// --- the symbolic value lattice ---------------------------------------------

static SymValue symAdd(const SymValue &A, const SymValue &B) {
  if (A.isConst() && B.isConst())
    return SymValue::constant(A.Off + B.Off);
  if (A.isRegPlus() && B.isConst())
    return SymValue::regPlus(A.Reg, A.Off + B.Off);
  if (A.isConst() && B.isRegPlus())
    return SymValue::regPlus(B.Reg, B.Off + A.Off);
  return SymValue::top();
}

static SymValue symSub(const SymValue &A, const SymValue &B) {
  if (A.isConst() && B.isConst())
    return SymValue::constant(A.Off - B.Off);
  if (A.isRegPlus() && B.isConst())
    return SymValue::regPlus(A.Reg, A.Off - B.Off);
  if (A.isRegPlus() && B.isRegPlus() && A.Reg == B.Reg)
    return SymValue::constant(A.Off - B.Off);
  return SymValue::top();
}

/// The ALU over symbolic values.  Add/Sub/Inc/Dec/Snd stay affine; every
/// other function folds only when fully constant.
static SymValue aluValue(Func F, const SymValue &A, const SymValue &B,
                         const FlagOut &Carry, const FlagOut &Overflow) {
  switch (F) {
  case Func::Add:
    return symAdd(A, B);
  case Func::Sub:
    return symSub(A, B);
  case Func::Inc:
    return symAdd(A, SymValue::constant(1));
  case Func::Dec:
    return symSub(A, SymValue::constant(1));
  case Func::Snd:
    return B;
  case Func::AddCarry:
    if (A.isConst() && B.isConst() && Carry.K == FlagOut::Kind::Const)
      return SymValue::constant(
          isa::evalAlu(F, A.Off, B.Off, Carry.Value, false).Value);
    return SymValue::top();
  case Func::Carry:
    if (Carry.K == FlagOut::Kind::Const)
      return SymValue::constant(Carry.Value ? 1 : 0);
    return SymValue::top();
  case Func::Overflow:
    if (Overflow.K == FlagOut::Kind::Const)
      return SymValue::constant(Overflow.Value ? 1 : 0);
    return SymValue::top();
  default:
    if (A.isConst() && B.isConst())
      return SymValue::constant(
          isa::evalAlu(F, A.Off, B.Off, false, false).Value);
    return SymValue::top();
  }
}

/// Flag update of one ALU operation (only Add/AddCarry/Sub write flags).
static void aluFlags(Func F, const SymValue &A, const SymValue &B,
                     FlagOut &Carry, FlagOut &Overflow) {
  if (!isa::funcWritesFlags(F))
    return;
  bool CarryKnown = F != Func::AddCarry || Carry.K == FlagOut::Kind::Const;
  if (A.isConst() && B.isConst() && CarryKnown) {
    bool CarryIn = F == Func::AddCarry && Carry.Value;
    isa::AluResult R = isa::evalAlu(F, A.Off, B.Off, CarryIn, false);
    Carry = FlagOut{FlagOut::Kind::Const, R.Carry};
    Overflow = FlagOut{FlagOut::Kind::Const, R.Overflow};
  } else {
    Carry = FlagOut{FlagOut::Kind::Unknown, false};
    Overflow = FlagOut{FlagOut::Kind::Unknown, false};
  }
}

namespace {

/// The in-block abstract state.
struct SymState {
  std::array<SymValue, isa::NumRegs> Regs;
  FlagOut Carry;
  FlagOut Overflow;
};

SymValue evalOperand(const isa::Operand &Op, const SymState &S) {
  if (Op.IsImm)
    return SymValue::constant(Op.immValue());
  return S.Regs[Op.Value];
}

/// The symbolic transfer function, mirroring isa execImpl.
void applyInsn(const isa::Instruction &I, Word Addr, SymState &S) {
  switch (I.Op) {
  case Opcode::Normal: {
    SymValue A = evalOperand(I.A, S);
    SymValue B = evalOperand(I.B, S);
    SymValue R = aluValue(I.F, A, B, S.Carry, S.Overflow);
    aluFlags(I.F, A, B, S.Carry, S.Overflow);
    S.Regs[I.WReg] = R;
    break;
  }
  case Opcode::Shift: {
    SymValue A = evalOperand(I.A, S);
    SymValue B = evalOperand(I.B, S);
    S.Regs[I.WReg] =
        A.isConst() && B.isConst()
            ? SymValue::constant(isa::evalShift(I.Sh, A.Off, B.Off))
            : SymValue::top();
    break;
  }
  case Opcode::LoadMEM:
  case Opcode::LoadMEMByte:
  case Opcode::In:
    S.Regs[I.WReg] = SymValue::top();
    break;
  case Opcode::LoadConstant:
    S.Regs[I.WReg] = SymValue::constant(I.Negate ? (0u - I.Imm) : I.Imm);
    break;
  case Opcode::LoadUpperConstant:
    S.Regs[I.WReg] =
        S.Regs[I.WReg].isConst()
            ? SymValue::constant((I.Imm << 21) | (S.Regs[I.WReg].Off &
                                                  0x1fffff))
            : SymValue::top();
    break;
  case Opcode::Jump: {
    // Flags update from alu(F, PC, a) (execImpl), then the link value.
    SymValue A = evalOperand(I.A, S);
    aluFlags(I.F, SymValue::constant(Addr), A, S.Carry, S.Overflow);
    S.Regs[I.WReg] = SymValue::constant(Addr + 4);
    break;
  }
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNotZero: {
    SymValue A = evalOperand(I.A, S);
    SymValue B = evalOperand(I.B, S);
    aluFlags(I.F, A, B, S.Carry, S.Overflow);
    break;
  }
  case Opcode::StoreMEM:
  case Opcode::StoreMEMByte:
  case Opcode::Interrupt:
  case Opcode::Out:
    break;
  }
}

} // namespace

// --- the summary context ----------------------------------------------------

void SummaryContext::addRegion(const RegionAnalysis &A) {
  const Cfg &G = A.G;
  for (size_t BI = 0, BE = G.Blocks.size(); BI != BE; ++BI) {
    if (!A.Consts.Solved.Reachable[BI])
      continue;
    const BasicBlock &B = G.Blocks[BI];
    Word Lo = G.addrOf(B.First);
    Word Hi = G.addrOf(B.Last) + 4;
    if (!CodeIntervals.empty() && CodeIntervals.back().second == Lo)
      CodeIntervals.back().second = Hi; // coalesce adjacent blocks
    else
      CodeIntervals.push_back({Lo, Hi});
  }
  std::sort(CodeIntervals.begin(), CodeIntervals.end());
}

bool SummaryContext::hitsCode(Word Lo, Word Hi) const {
  for (const std::pair<Word, Word> &I : CodeIntervals)
    if (Lo < I.second && Hi >= I.first)
      return true;
  return false;
}

// --- the per-block pass -----------------------------------------------------

BlockSummary silver::analysis::summarizeBlock(const RegionAnalysis &A,
                                              size_t BlockIdx,
                                              const SummaryContext &Ctx) {
  const Cfg &G = A.G;
  const BasicBlock &B = G.Blocks[BlockIdx];

  BlockSummary S;
  S.BlockIndex = BlockIdx;
  S.EntryAddr = G.addrOf(B.First);
  S.InstrCount = B.Last - B.First + 1;
  S.Reachable = A.Consts.Solved.Reachable[BlockIdx];
  S.ExitTarget = SymValue::top();

  // Seed the abstract state: region constprop facts become Const, the
  // rest is the block-entry register itself.
  SymState Sym;
  const RegState &In = A.Consts.Solved.BlockIn[BlockIdx];
  for (unsigned R = 0; R != isa::NumRegs; ++R) {
    std::optional<Word> C = S.Reachable ? In.Regs[R] : std::nullopt;
    S.EntryConsts[R] = C;
    Sym.Regs[R] = C ? SymValue::constant(*C) : SymValue::entry(R);
  }

  bool SawIllegal = false;
  bool SawSelfMod = false;
  bool SawIo = false;

  for (size_t I = B.First; I <= B.Last; ++I) {
    const DecodedInstr &D = G.Instrs[I];
    InsnEffect E;
    E.Addr = G.addrOf(I);
    if (!D.Valid) {
      // Execution faults here; the Cfg makes invalid words terminators,
      // so nothing in this block runs after it.
      SawIllegal = true;
      S.Insns.push_back(E);
      break;
    }
    const isa::Instruction &Ins = D.Instr;
    E.Info = isa::effectsOf(Ins);
    if (E.Info.Mem == isa::MemAccessKind::Read)
      E.Access = MemRange::ofAccess(evalOperand(Ins.A, Sym), E.Info.MemSize);
    if (E.Info.Mem == isa::MemAccessKind::Write) {
      E.Access = MemRange::ofAccess(evalOperand(Ins.B, Sym), E.Info.MemSize);
      if (E.Access.K == MemRange::Kind::Absolute &&
          Ctx.hitsCode(E.Access.Lo, E.Access.Hi))
        SawSelfMod = true;
    }
    if (E.Info.IsIo)
      SawIo = true;
    S.RegWrites |= E.Info.RegWrites;
    S.RegReads |= E.Info.RegReads;

    // The terminator's computed target is a function of the pre-step
    // state (execImpl reads the operand before writing the link).
    if (I == B.Last && Ins.Op == Opcode::Jump)
      S.ExitTarget = aluValue(Ins.F, SymValue::constant(E.Addr),
                              evalOperand(Ins.A, Sym), Sym.Carry,
                              Sym.Overflow);

    applyInsn(Ins, E.Addr, Sym);
    S.Insns.push_back(E);
  }

  S.RegOut = Sym.Regs;
  S.CarryOut = Sym.Carry;
  S.OverflowOut = Sym.Overflow;
  for (const InsnEffect &E : S.Insns) {
    if (E.Info.Mem == isa::MemAccessKind::Read)
      S.Reads = MemRange::join(S.Reads, E.Access);
    if (E.Info.Mem == isa::MemAccessKind::Write)
      S.Writes = MemRange::join(S.Writes, E.Access);
  }

  // Dynamic successor set: the addresses the terminator can hand to the
  // fetch unit.  Unlike the Cfg's dataflow edges, a call's successor is
  // its target — the return point is reached by the callee's exit.
  Word LastAddr = G.addrOf(B.Last);
  Flow F = flowOf(G.Instrs[B.Last]);
  bool Unresolved = false;
  switch (F.Kind) {
  case FlowKind::Fall:
    S.Succs = {LastAddr + 4};
    break;
  case FlowKind::Branch:
    S.Succs = {*F.Target, LastAddr + 4};
    break;
  case FlowKind::Goto:
    S.Succs = {*F.Target};
    break;
  case FlowKind::Halt:
    S.Succs = {LastAddr}; // the self-jump spins in place
    break;
  case FlowKind::Invalid:
    break; // faults: no successor
  case FlowKind::Call:
  case FlowKind::Computed: {
    if (F.Target) {
      S.Succs = {*F.Target};
      break;
    }
    if (std::optional<Word> C = S.ExitTarget.asConst()) {
      S.Succs = {*C};
      break;
    }
    for (const ResolvedJump &J : A.Resolved)
      if (J.FromAddr == LastAddr) {
        S.Succs = {J.Target};
        break;
      }
    if (S.Succs.empty()) {
      S.SuccsExact = false;
      // A RegPlus target (a return through a live link value) is still
      // a checkable claim; only a Top target is unresolved.
      Unresolved = S.ExitTarget.isTop();
    }
    break;
  }
  }

  // Classification (DESIGN.md §12).
  if (SawIllegal)
    S.Reasons.push_back(InterpReason::IllegalInstruction);
  if (SawSelfMod)
    S.Reasons.push_back(InterpReason::SelfModifying);
  if (Unresolved)
    S.Reasons.push_back(InterpReason::UnresolvedSuccessor);
  if (Ctx.FfiEntry) {
    bool ToFfi = std::find(S.Succs.begin(), S.Succs.end(), *Ctx.FfiEntry) !=
                 S.Succs.end();
    if (ToFfi)
      S.Reasons.push_back(InterpReason::FfiBoundary);
  }
  if (SawIo)
    S.Reasons.push_back(InterpReason::Io);
  S.Translatable = S.Reasons.empty();
  return S;
}

RegionSummary silver::analysis::summarizeBlocks(const RegionAnalysis &A,
                                                const SummaryContext &Ctx) {
  RegionSummary R;
  R.Blocks.reserve(A.G.Blocks.size());
  for (size_t BI = 0, BE = A.G.Blocks.size(); BI != BE; ++BI)
    R.Blocks.push_back(summarizeBlock(A, BI, Ctx));
  return R;
}

const BlockSummary *RegionSummary::atEntry(const Cfg &G, Word Addr) const {
  std::optional<size_t> Idx = G.instrAt(Addr);
  if (!Idx)
    return nullptr;
  size_t BI = G.BlockOf[*Idx];
  if (BI >= Blocks.size() || Blocks[BI].EntryAddr != Addr)
    return nullptr;
  return &Blocks[BI];
}

ImageSummary silver::analysis::summarizeImage(const AuditReport &Report) {
  ImageSummary S;
  S.Ctx.addRegion(Report.Startup);
  S.Ctx.addRegion(Report.Syscall);
  S.Ctx.addRegion(Report.Program);
  S.Ctx.FfiEntry = Report.Layout.SyscallCodeBase;
  S.Startup = summarizeBlocks(Report.Startup, S.Ctx);
  S.Syscall = summarizeBlocks(Report.Syscall, S.Ctx);
  S.Program = summarizeBlocks(Report.Program, S.Ctx);
  return S;
}

std::vector<AuditDiag>
silver::analysis::checkObligations(const ImageSummary &S,
                                   const SummaryObligations &O) {
  std::vector<AuditDiag> Out;
  auto Diag = [&Out](AuditRule Rule, Word Addr, std::string Message) {
    AuditDiag D;
    D.Rule = Rule;
    D.Region = CodeRegion::Program;
    D.HasRegion = true;
    D.Addr = Addr;
    D.Message = std::move(Message);
    Out.push_back(std::move(D));
  };
  for (const BlockSummary &B : S.Program.Blocks) {
    if (!B.Reachable)
      continue;
    if (O.StackDiscipline && B.RegOut[abi::StackReg].isTop())
      Diag(AuditRule::StackDiscipline, B.EntryAddr,
           "block leaves the stack pointer at an unknown value");
    if (O.NoRawIo && B.hasReason(InterpReason::Io))
      Diag(AuditRule::RawIo, B.EntryAddr,
           "block interacts with the environment outside the syscall code");
  }
  return Out;
}
