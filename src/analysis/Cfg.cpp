//===- analysis/Cfg.cpp - Machine-code control-flow graphs -----------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include "isa/Abi.h"

#include <algorithm>
#include <map>

using namespace silver;
using namespace silver::analysis;
using assembler::DecodedInstr;
using isa::Opcode;

Flow silver::analysis::flowOf(const DecodedInstr &D) {
  Flow F;
  if (!D.Valid) {
    F.Kind = FlowKind::Invalid;
    return F;
  }
  const isa::Instruction &I = D.Instr;
  switch (I.Op) {
  case Opcode::Jump: {
    bool IsCall = I.WReg != abi::TmpReg;
    if (I.isSelfJump() && !IsCall) {
      F.Kind = FlowKind::Halt;
      return F;
    }
    if (I.A.IsImm && I.F == isa::Func::Add)
      F.Target = D.Addr + I.A.immValue();
    else if (I.A.IsImm && I.F == isa::Func::Snd)
      F.Target = I.A.immValue();
    F.Kind = IsCall ? FlowKind::Call
                    : (F.Target ? FlowKind::Goto : FlowKind::Computed);
    return F;
  }
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNotZero:
    F.Kind = FlowKind::Branch;
    F.Target = D.Addr + static_cast<Word>(I.Offset) * 4;
    return F;
  default:
    F.Kind = FlowKind::Fall;
    return F;
  }
}

Cfg Cfg::build(const std::vector<uint8_t> &Bytes, Word Base, Word Entry,
               const std::vector<std::pair<Word, Word>> &ExtraEdges) {
  Cfg G;
  G.Base = Base;
  G.Instrs = assembler::decodeRegion(Bytes, Base);
  if (G.Instrs.empty())
    return G;

  // Leaders: the entry, every static target, everything after a
  // terminator, and the externally resolved targets.
  std::vector<bool> Leader(G.Instrs.size(), false);
  auto MarkLeader = [&](Word Addr) {
    if (std::optional<size_t> Idx = G.instrAt(Addr))
      Leader[*Idx] = true;
  };
  MarkLeader(Entry);
  Leader[0] = true;
  std::map<Word, std::vector<Word>> EdgesFrom;
  for (const auto &[From, To] : ExtraEdges) {
    EdgesFrom[From].push_back(To);
    MarkLeader(To);
  }
  for (size_t I = 0, E = G.Instrs.size(); I != E; ++I) {
    Flow F = flowOf(G.Instrs[I]);
    if (F.Target)
      MarkLeader(*F.Target);
    if (F.Kind != FlowKind::Fall && I + 1 != E)
      Leader[I + 1] = true;
  }

  // Blocks: [leader, next leader) with the flow-derived terminator.
  G.BlockOf.assign(G.Instrs.size(), 0);
  for (size_t I = 0, E = G.Instrs.size(); I != E;) {
    size_t First = I;
    for (++I; I != E && !Leader[I]; ++I)
      ;
    BasicBlock B;
    B.First = First;
    B.Last = I - 1;
    for (size_t J = First; J != I; ++J)
      G.BlockOf[J] = G.Blocks.size();
    G.Blocks.push_back(std::move(B));
  }

  // Edges.
  for (size_t BI = 0, BE = G.Blocks.size(); BI != BE; ++BI) {
    BasicBlock &B = G.Blocks[BI];
    Flow F = flowOf(G.Instrs[B.Last]);
    auto AddEdge = [&](Word Addr) {
      std::optional<size_t> Idx = G.instrAt(Addr);
      if (!Idx) {
        B.HasExternalExit = true;
        return;
      }
      size_t Succ = G.BlockOf[*Idx];
      if (std::find(B.Succs.begin(), B.Succs.end(), Succ) == B.Succs.end())
        B.Succs.push_back(Succ);
    };
    if (F.Target)
      AddEdge(*F.Target);
    if (F.HasFallthrough() && B.Last + 1 != G.Instrs.size())
      AddEdge(G.addrOf(B.Last + 1));
    if (F.Kind == FlowKind::Computed ||
        (F.Kind == FlowKind::Call && !F.Target))
      B.HasComputedExit = true;
    if (auto It = EdgesFrom.find(G.addrOf(B.Last)); It != EdgesFrom.end())
      for (Word To : It->second)
        AddEdge(To);
  }
  for (size_t BI = 0, BE = G.Blocks.size(); BI != BE; ++BI)
    for (size_t Succ : G.Blocks[BI].Succs)
      G.Blocks[Succ].Preds.push_back(BI);

  if (std::optional<size_t> Idx = G.instrAt(Entry))
    G.EntryBlock = G.BlockOf[*Idx];
  return G;
}
