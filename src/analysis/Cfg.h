//===- analysis/Cfg.h - Machine-code control-flow graphs -------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic-block control-flow graphs over decoded Silver machine code.  A
/// Cfg is built for one code region (startup, system-call, or compiled
/// program code; paper Fig. 2) from the asm::Disassembler's decoded view.
/// Static successors come from the instruction alone (PC-relative jumps
/// and conditional branches); computed jumps through registers are marked
/// and can later be resolved by the constant-propagation pass in
/// analysis/Dataflow.h, which re-enters the builder with extra leaders.
///
/// The convention that distinguishes calls from gotos follows the whole
/// code base (assembler, code generator, system-call routines): a Jump
/// whose link register is abi::TmpReg discards the return address (goto,
/// return, halt), while any other link register is a call whose successor
/// set includes the return point.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ANALYSIS_CFG_H
#define SILVER_ANALYSIS_CFG_H

#include "asm/Disassembler.h"

#include <optional>
#include <utility>
#include <vector>

namespace silver {
namespace analysis {

/// How control leaves an instruction.
enum class FlowKind : uint8_t {
  Fall,     ///< falls through to the next instruction
  Branch,   ///< conditional: fallthrough plus a static PC-relative target
  Goto,     ///< unconditional static jump, no fallthrough
  Call,     ///< jump with a live link register: target plus return point
  Computed, ///< register jump discarding the link: target unknown
  Halt,     ///< unconditional self-jump (the is_halted fixpoint)
  Invalid,  ///< the word does not decode; execution would fault
};

/// The statically visible control flow of one instruction.
struct Flow {
  FlowKind Kind = FlowKind::Fall;
  std::optional<Word> Target; ///< static target (Branch/Goto/Call)
  bool HasFallthrough() const {
    return Kind == FlowKind::Fall || Kind == FlowKind::Branch ||
           Kind == FlowKind::Call;
  }
};

/// Classifies \p D at its address.  Pure function of the instruction.
Flow flowOf(const assembler::DecodedInstr &D);

/// A maximal straight-line run of instructions.
struct BasicBlock {
  size_t First = 0; ///< index of the first instruction (into Cfg::Instrs)
  size_t Last = 0;  ///< index of the terminator (inclusive)
  std::vector<size_t> Succs; ///< successor block indices, in-region
  std::vector<size_t> Preds;
  bool HasComputedExit = false; ///< terminator target unknown statically
  bool HasExternalExit = false; ///< static target outside this region
};

/// A control-flow graph over one contiguous code region.
class Cfg {
public:
  Word Base = 0; ///< address of Instrs[0]
  std::vector<assembler::DecodedInstr> Instrs;
  std::vector<BasicBlock> Blocks;
  std::vector<size_t> BlockOf; ///< instruction index -> owning block
  size_t EntryBlock = 0;

  /// Builds the graph for \p Bytes loaded at \p Base with entry point
  /// \p Entry.  \p ExtraEdges adds control-flow edges discovered
  /// externally (computed jumps resolved by constant propagation), as
  /// (jump address, target address) pairs; targets become leaders, and
  /// out-of-region targets mark the source block's external exit.
  static Cfg build(const std::vector<uint8_t> &Bytes, Word Base, Word Entry,
                   const std::vector<std::pair<Word, Word>> &ExtraEdges = {});

  Word endAddr() const {
    return Base + static_cast<Word>(Instrs.size()) * 4;
  }
  bool contains(Word Addr) const { return Addr >= Base && Addr < endAddr(); }

  /// Index of the instruction at \p Addr; nullopt when out of region or
  /// misaligned.
  std::optional<size_t> instrAt(Word Addr) const {
    if (!contains(Addr) || !isAligned(Addr - Base, 4))
      return std::nullopt;
    return (Addr - Base) / 4;
  }

  Word addrOf(size_t InstrIdx) const {
    return Base + static_cast<Word>(InstrIdx) * 4;
  }
};

} // namespace analysis
} // namespace silver

#endif // SILVER_ANALYSIS_CFG_H
