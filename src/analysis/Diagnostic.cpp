//===- analysis/Diagnostic.cpp - Unified analysis diagnostics --------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostic.h"

#include "support/StringUtils.h"

using namespace silver;
using namespace silver::analysis;

const char *silver::analysis::severityName(Diagnostic::Level L) {
  switch (L) {
  case Diagnostic::Level::Error:
    return "error";
  case Diagnostic::Level::Note:
    return "note";
  }
  return "?";
}

std::string silver::analysis::formatDiagnostic(const Diagnostic &D) {
  std::string Out = severityName(D.Severity);
  Out += ": ";
  Out += D.Id;
  if (!D.Subject.empty() || D.HasAddr) {
    Out += " @";
    if (!D.Subject.empty()) {
      Out += ' ';
      Out += D.Subject;
    }
    if (D.HasAddr) {
      Out += ' ';
      Out += toHex(D.Addr);
    }
  }
  Out += ": ";
  Out += D.Message;
  return Out;
}

std::string silver::analysis::diagnosticJson(const Diagnostic &D) {
  std::string Out = "{\"id\":";
  Out += jsonQuote(D.Id);
  Out += ",\"severity\":";
  Out += jsonQuote(severityName(D.Severity));
  if (!D.Subject.empty()) {
    Out += ",\"subject\":";
    Out += jsonQuote(D.Subject);
  }
  if (D.HasAddr) {
    Out += ",\"addr\":";
    Out += jsonQuote(toHex(D.Addr));
  }
  Out += ",\"message\":";
  Out += jsonQuote(D.Message);
  Out += '}';
  return Out;
}

std::string
silver::analysis::diagnosticsJson(const std::vector<Diagnostic> &Diags) {
  std::string Out = "[";
  for (size_t I = 0; I != Diags.size(); ++I) {
    Out += I ? ",\n " : "\n ";
    Out += diagnosticJson(Diags[I]);
  }
  Out += Diags.empty() ? "]" : "\n]";
  return Out;
}

Diagnostic silver::analysis::toDiagnostic(const AuditDiag &D) {
  Diagnostic Out;
  Out.Id = auditRuleId(D.Rule);
  Out.Severity = Diagnostic::Level::Error;
  if (D.HasRegion) {
    Out.Subject = regionName(D.Region);
    Out.HasAddr = true;
    Out.Addr = D.Addr;
  }
  Out.Message = D.Message;
  return Out;
}

Diagnostic silver::analysis::toDiagnostic(const LintDiag &D) {
  Diagnostic Out;
  Out.Id = lintRuleId(D.Rule);
  Out.Severity = Diagnostic::Level::Error;
  if (D.Process >= 0) {
    Out.Subject = "process " + std::to_string(D.Process);
    if (!D.Path.empty())
      Out.Subject += ' ' + D.Path;
  } else if (!D.Path.empty()) {
    Out.Subject = D.Path;
  }
  Out.Message = D.Message;
  return Out;
}

std::vector<Diagnostic>
silver::analysis::toDiagnostics(const std::vector<AuditDiag> &Diags) {
  std::vector<Diagnostic> Out;
  Out.reserve(Diags.size());
  for (const AuditDiag &D : Diags)
    Out.push_back(toDiagnostic(D));
  return Out;
}

std::vector<Diagnostic>
silver::analysis::toDiagnostics(const std::vector<LintDiag> &Diags) {
  std::vector<Diagnostic> Out;
  Out.reserve(Diags.size());
  for (const LintDiag &D : Diags)
    Out.push_back(toDiagnostic(D));
  return Out;
}
