//===- analysis/JitReadiness.cpp - JIT-readiness report --------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/JitReadiness.h"

#include "isa/Abi.h"
#include "isa/jit/Jit.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace silver;
using namespace silver::analysis;

size_t JitReadinessReport::totalBlocks() const {
  size_t N = 0;
  for (const RegionReadiness &R : Regions)
    N += R.Blocks;
  return N;
}

size_t JitReadinessReport::totalTranslatable() const {
  size_t N = 0;
  for (const RegionReadiness &R : Regions)
    N += R.Translatable;
  return N;
}

double JitReadinessReport::fraction() const {
  size_t Blocks = totalBlocks();
  return Blocks ? static_cast<double>(totalTranslatable()) / Blocks : 1.0;
}

static RegionReadiness aggregate(const char *Name, const RegionSummary &S) {
  RegionReadiness R;
  R.Name = Name;
  for (const BlockSummary &B : S.Blocks) {
    if (!B.Reachable)
      continue;
    ++R.Blocks;
    if (B.Translatable)
      ++R.Translatable;
    if (!B.SuccsExact)
      ++R.ComputedExits;
    if (B.RegOut[abi::StackReg].isTop())
      ++R.UnknownStack;
    for (InterpReason Reason : B.Reasons)
      ++R.Reasons[static_cast<size_t>(Reason)];
  }
  return R;
}

JitReadinessReport silver::analysis::jitReadiness(const ImageSummary &S) {
  JitReadinessReport R;
  R.Regions.push_back(aggregate("startup", S.Startup));
  R.Regions.push_back(aggregate("syscall", S.Syscall));
  R.Regions.push_back(aggregate("program", S.Program));
  return R;
}

std::string silver::analysis::toJson(const JitReadinessReport &R) {
  std::string Out = "{\n \"regions\": [";
  for (size_t I = 0; I != R.Regions.size(); ++I) {
    const RegionReadiness &Rg = R.Regions[I];
    Out += I ? ",\n  " : "\n  ";
    Out += "{\"name\": " + jsonQuote(Rg.Name);
    Out += ", \"blocks\": " + std::to_string(Rg.Blocks);
    Out += ", \"translatable\": " + std::to_string(Rg.Translatable);
    Out += ", \"computed_exits\": " + std::to_string(Rg.ComputedExits);
    Out += ", \"unknown_stack\": " + std::to_string(Rg.UnknownStack);
    Out += ", \"reasons\": {";
    for (unsigned Reason = 0; Reason != NumInterpReasons; ++Reason) {
      if (Reason)
        Out += ", ";
      Out += jsonQuote(interpReasonId(static_cast<InterpReason>(Reason)));
      Out += ": " + std::to_string(Rg.Reasons[Reason]);
    }
    Out += "}}";
  }
  Out += "\n ],\n \"blocks\": " + std::to_string(R.totalBlocks());
  Out += ",\n \"translatable\": " + std::to_string(R.totalTranslatable());
  char Fraction[16];
  std::snprintf(Fraction, sizeof(Fraction), "%.4f", R.fraction());
  Out += ",\n \"fraction\": ";
  Out += Fraction;
  Out += "\n}";
  return Out;
}

std::vector<Diagnostic>
silver::analysis::readinessDiagnostics(const ImageSummary &S) {
  std::vector<Diagnostic> Out;
  const struct {
    const char *Name;
    const RegionSummary *Summary;
  } Regions[] = {{"startup", &S.Startup},
                 {"syscall", &S.Syscall},
                 {"program", &S.Program}};
  for (const auto &Region : Regions) {
    for (const BlockSummary &B : Region.Summary->Blocks) {
      if (!B.Reachable || B.Translatable)
        continue;
      Diagnostic D;
      D.Id = "jit-interpreter-only";
      D.Severity = Diagnostic::Level::Note;
      D.Subject = Region.Name;
      D.HasAddr = true;
      D.Addr = B.EntryAddr;
      D.Message = "block is interpreter-only:";
      for (size_t I = 0; I != B.Reasons.size(); ++I) {
        D.Message += I ? ", " : " ";
        D.Message += interpReasonId(B.Reasons[I]);
      }
      Out.push_back(std::move(D));
    }
  }
  return Out;
}

std::vector<Diagnostic>
silver::analysis::jitBailoutDiagnostics(const ImageSummary &S,
                                        const isa::MachineState &State) {
  std::vector<Diagnostic> Out;
  const struct {
    const char *Name;
    const RegionSummary *Summary;
  } Regions[] = {{"startup", &S.Startup},
                 {"syscall", &S.Syscall},
                 {"program", &S.Program}};
  for (const auto &Region : Regions) {
    for (const BlockSummary &B : Region.Summary->Blocks) {
      if (!B.Reachable || !B.Translatable)
        continue;
      isa::jit::BlockProbe P = isa::jit::probeBlock(State, B.EntryAddr);
      if (P.Compilable)
        continue;
      Diagnostic D;
      D.Id = "jit-bailout";
      D.Severity = Diagnostic::Level::Note;
      D.Subject = Region.Name;
      D.HasAddr = true;
      D.Addr = B.EntryAddr;
      D.Message = std::string("block is Translatable but the JIT refuses"
                              " it: ") +
                  isa::jit::refuseReasonId(P.Refused) + " after " +
                  std::to_string(P.Instrs) + " instructions";
      Out.push_back(std::move(D));
    }
  }
  return Out;
}
