//===- analysis/ImageAudit.cpp - Static audit of bootable images -----------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/ImageAudit.h"

#include "isa/Abi.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace silver;
using namespace silver::analysis;
using sys::MemoryLayout;

const char *silver::analysis::auditRuleId(AuditRule R) {
  switch (R) {
  case AuditRule::Layout:
    return "img-layout";
  case AuditRule::Decode:
    return "img-decode";
  case AuditRule::JumpTarget:
    return "img-jump-target";
  case AuditRule::WriteToCode:
    return "img-write-to-code";
  case AuditRule::SyscallClobber:
    return "img-syscall-clobber";
  case AuditRule::StackDiscipline:
    return "img-stack-discipline";
  case AuditRule::RawIo:
    return "img-raw-io";
  }
  return "img-unknown";
}

const char *silver::analysis::regionName(CodeRegion R) {
  switch (R) {
  case CodeRegion::Startup:
    return "startup";
  case CodeRegion::Syscall:
    return "syscall";
  case CodeRegion::Program:
    return "program";
  }
  return "?";
}

std::string silver::analysis::formatDiag(const AuditDiag &D) {
  std::string Out = auditRuleId(D.Rule);
  if (D.HasRegion) {
    Out += " @ ";
    Out += regionName(D.Region);
    Out += ' ';
    Out += toHex(D.Addr);
  }
  Out += ": ";
  Out += D.Message;
  return Out;
}

namespace {

/// The audit pass over one image.
class Auditor {
public:
  Auditor(const sys::MemoryImage &Image, Word ProgramSize)
      : Image(Image), L(Image.Layout), ProgramSize(ProgramSize) {}

  AuditReport run();

private:
  const sys::MemoryImage &Image;
  const MemoryLayout &L;
  Word ProgramSize;
  AuditReport R;

  void layoutDiag(std::string Message) {
    AuditDiag D;
    D.Rule = AuditRule::Layout;
    D.Message = std::move(Message);
    R.Diags.push_back(std::move(D));
  }
  void diag(AuditRule Rule, CodeRegion Region, Word Addr,
            std::string Message) {
    AuditDiag D;
    D.Rule = Rule;
    D.Region = Region;
    D.HasRegion = true;
    D.Addr = Addr;
    D.Message = std::move(Message);
    R.Diags.push_back(std::move(D));
  }

  void checkLayout();
  std::vector<uint8_t> slice(Word Base, Word End) const;
  const RegionAnalysis &analysisOf(CodeRegion Region) const;
  std::optional<CodeRegion> regionOf(Word Addr) const;
  bool hitsReachableCode(Word Addr, Word Len) const;
  void checkTarget(CodeRegion From, Word FromAddr, Word Target);
  void checkRegion(CodeRegion Region);
};

void Auditor::checkLayout() {
  const sys::LayoutParams &P = L.Params;
  if (Image.Memory.size() != P.MemSize)
    layoutDiag("image is " + std::to_string(Image.Memory.size()) +
               " bytes but the layout expects " + std::to_string(P.MemSize));

  struct NamedRegion {
    const char *Name;
    Word Base, End;
  };
  const NamedRegion Regions[] = {
      {"startup", L.StartupBase, L.StartupBase + P.StartupCap},
      {"descriptor", L.DescriptorBase, L.DescriptorBase + 8 * 4},
      {"exit-flag", L.ExitFlagAddr, L.ExitFlagAddr + 4},
      {"exit-code", L.ExitCodeAddr, L.ExitCodeAddr + 4},
      {"cmdline", L.CmdlineBase, L.CmdlineBase + 4 + P.CmdlineCap},
      {"stdin", L.StdinBase, L.StdinBase + 8 + P.StdinCap},
      {"outbuf", L.OutBufBase, L.OutBufBase + 8 + P.OutBufCap},
      {"syscall-id", L.SyscallIdAddr, L.SyscallIdAddr + 4},
      {"syscall-code", L.SyscallCodeBase,
       L.SyscallCodeBase + P.SyscallCodeCap},
      {"usable", L.HeapBase, L.HeapEnd},
      {"program", L.CodeBase, P.MemSize},
  };
  for (const NamedRegion &Rg : Regions) {
    if (!isAligned(Rg.Base, 4))
      layoutDiag(std::string(Rg.Name) + " region base " + toHex(Rg.Base) +
                 " is not word-aligned");
    if (Rg.End < Rg.Base || Rg.End > P.MemSize)
      layoutDiag(std::string(Rg.Name) + " region [" + toHex(Rg.Base) + ", " +
                 toHex(Rg.End) + ") exceeds memory");
  }
  for (size_t I = 0; I + 1 < std::size(Regions); ++I)
    if (Regions[I].End > Regions[I + 1].Base)
      layoutDiag(std::string(Regions[I].Name) + " region overlaps " +
                 Regions[I + 1].Name + " (" + toHex(Regions[I].End) + " > " +
                 toHex(Regions[I + 1].Base) + ")");
  if (L.HeapEnd != L.CodeBase)
    layoutDiag("usable memory must end exactly at the program region");
}

std::vector<uint8_t> Auditor::slice(Word Base, Word End) const {
  Base = std::min<Word>(Base, static_cast<Word>(Image.Memory.size()));
  End = std::min<Word>(End, static_cast<Word>(Image.Memory.size()));
  if (End < Base)
    End = Base;
  return {Image.Memory.begin() + Base, Image.Memory.begin() + End};
}

const RegionAnalysis &Auditor::analysisOf(CodeRegion Region) const {
  switch (Region) {
  case CodeRegion::Startup:
    return R.Startup;
  case CodeRegion::Syscall:
    return R.Syscall;
  case CodeRegion::Program:
    return R.Program;
  }
  return R.Startup;
}

std::optional<CodeRegion> Auditor::regionOf(Word Addr) const {
  for (CodeRegion Region :
       {CodeRegion::Startup, CodeRegion::Syscall, CodeRegion::Program})
    if (analysisOf(Region).G.contains(Addr))
      return Region;
  return std::nullopt;
}

bool Auditor::hitsReachableCode(Word Addr, Word Len) const {
  for (CodeRegion Region :
       {CodeRegion::Startup, CodeRegion::Syscall, CodeRegion::Program}) {
    const RegionAnalysis &A = analysisOf(Region);
    const Cfg &G = A.G;
    if (G.Instrs.empty() || Addr + Len <= G.Base || Addr >= G.endAddr())
      continue;
    size_t Lo = Addr <= G.Base ? 0 : (Addr - G.Base) / 4;
    size_t Hi = std::min<size_t>(G.Instrs.size() - 1,
                                 (std::min(Addr + Len, G.endAddr()) - 1 -
                                  G.Base) /
                                     4);
    for (size_t I = Lo; I <= Hi; ++I)
      if (A.instrReachable(I))
        return true;
  }
  return false;
}

void Auditor::checkTarget(CodeRegion From, Word FromAddr, Word Target) {
  std::optional<CodeRegion> To = regionOf(Target);
  if (!To) {
    diag(AuditRule::JumpTarget, From, FromAddr,
         "transfer to " + toHex(Target) + " lands outside the code regions");
    return;
  }
  if (*To == From) {
    if (!analysisOf(From).G.instrAt(Target))
      diag(AuditRule::JumpTarget, From, FromAddr,
           "transfer to misaligned address " + toHex(Target));
    return;
  }
  // Cross-region transfers must enter at the region's sole entry point:
  // the FFI dispatch for the syscall code (installed (i)), the program's
  // first instruction for the program region (the startup handoff).
  // Nothing may jump back into the startup code.
  std::optional<Word> Entry;
  if (*To == CodeRegion::Syscall)
    Entry = L.SyscallCodeBase;
  else if (*To == CodeRegion::Program)
    Entry = L.CodeBase;
  if (!Entry || Target != *Entry)
    diag(AuditRule::JumpTarget, From, FromAddr,
         "transfer to " + toHex(Target) + " enters the " +
             regionName(*To) + " region away from its entry point");
}

void Auditor::checkRegion(CodeRegion Region) {
  const RegionAnalysis &A = analysisOf(Region);
  const Cfg &G = A.G;
  for (size_t I = 0, E = G.Instrs.size(); I != E; ++I) {
    if (!A.instrReachable(I))
      continue;
    const assembler::DecodedInstr &D = G.Instrs[I];
    if (!D.Valid) {
      diag(AuditRule::Decode, Region, D.Addr,
           "reachable word " + toHex(D.Encoded) + " does not decode");
      continue;
    }
    if (Flow F = flowOf(D); F.Target)
      checkTarget(Region, D.Addr, *F.Target);
    if (D.Instr.Op == isa::Opcode::StoreMEM ||
        D.Instr.Op == isa::Opcode::StoreMEMByte) {
      Word Len = D.Instr.Op == isa::Opcode::StoreMEM ? 4 : 1;
      if (std::optional<Word> Addr = ConstProp::operandValue(
              D.Instr.B, A.Consts.InstrIn[I]))
        if (hitsReachableCode(*Addr, Len))
          diag(AuditRule::WriteToCode, Region, D.Addr,
               "store to " + toHex(*Addr) +
                   " targets reachable instruction bytes");
    }
  }
  for (const ResolvedJump &J : A.Resolved)
    checkTarget(Region, J.FromAddr, J.Target);
}

AuditReport Auditor::run() {
  R.Layout = L;
  checkLayout();

  // Constants established by the startup code (installed (i)): the info
  // registers seed the syscall and program analyses, which is what lets
  // constant propagation resolve `jump snd r3` FFI call sequences.
  RegState Installed;
  Installed.Regs[abi::MemStartReg] = L.HeapBase;
  Installed.Regs[abi::MemEndReg] = L.HeapEnd;
  Installed.Regs[abi::FfiTableReg] = L.SyscallCodeBase;
  Installed.Regs[abi::LayoutReg] = L.DescriptorBase;

  const sys::LayoutParams &P = L.Params;
  R.Startup = analyzeRegion(slice(L.StartupBase, L.StartupBase + P.StartupCap),
                            L.StartupBase, L.StartupBase, RegState());
  R.Syscall =
      analyzeRegion(slice(L.SyscallCodeBase,
                          L.SyscallCodeBase + P.SyscallCodeCap),
                    L.SyscallCodeBase, L.SyscallCodeBase, Installed);
  Word ProgramEnd =
      ProgramSize ? L.CodeBase + alignUp(ProgramSize, 4) : P.MemSize;
  R.Program = analyzeRegion(slice(L.CodeBase, ProgramEnd), L.CodeBase,
                            L.CodeBase, Installed);

  for (CodeRegion Region :
       {CodeRegion::Startup, CodeRegion::Syscall, CodeRegion::Program})
    checkRegion(Region);

  // The syscall code's register footprint must stay inside the clobber
  // set the interference oracle is allowed (paper §6; the dynamic check
  // is machine::checkInterferenceImpl).
  R.SyscallSummary =
      summarizeRegion(R.Syscall.G, R.Syscall.Consts.Solved.Reachable);
  uint64_t Permitted = 0;
  for (unsigned Reg : sys::syscallClobberedRegs())
    Permitted |= uint64_t(1) << Reg;
  uint64_t Bad = R.SyscallSummary.Defs & ~Permitted;
  for (unsigned Reg = 0; Reg != isa::NumRegs; ++Reg)
    if ((Bad >> Reg) & 1)
      diag(AuditRule::SyscallClobber, CodeRegion::Syscall,
           L.SyscallCodeBase,
           "syscall code writes r" + std::to_string(Reg) +
               ", outside the permitted clobber set");
  return std::move(R);
}

} // namespace

AuditReport silver::analysis::auditImage(const sys::MemoryImage &Image,
                                         Word ProgramSize) {
  return Auditor(Image, ProgramSize).run();
}
