//===- analysis/Diagnostic.h - Unified analysis diagnostics ----*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One diagnostic shape for every static analysis in the tree.  The image
/// audit (ImageAudit.h), the Verilog linter (VerilogLint.h), and the
/// block-summary pass (BlockSummary.h) each have their own internal
/// diagnostic structs tuned to what they check; this module converts all
/// of them to a single `Diagnostic` with a stable rule identifier, an
/// optional subject (code region, HDL process) and address, and a
/// severity — so silver-lint and silverc --analyze print and serialise
/// them identically, and their `--json` outputs are parsed by one schema.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ANALYSIS_DIAGNOSTIC_H
#define SILVER_ANALYSIS_DIAGNOSTIC_H

#include "analysis/ImageAudit.h"
#include "analysis/VerilogLint.h"

#include <string>
#include <vector>

namespace silver {
namespace analysis {

/// One analysis finding in the unified shape.
struct Diagnostic {
  /// Errors fail the producing tool (non-zero exit); notes are
  /// advisory — e.g. a block classified InterpreterOnly is a fact about
  /// JIT readiness, not a defect of the image.
  enum class Level : uint8_t { Error, Note };

  std::string Id;       ///< stable rule id, e.g. "img-layout"
  Level Severity = Level::Error;
  std::string Subject;  ///< region/process/app context ("" when none)
  bool HasAddr = false;
  Word Addr = 0;        ///< offending address (when HasAddr)
  std::string Message;
};

const char *severityName(Diagnostic::Level L);

/// Renders "severity: id @ subject 0xADDR: message" (parts omitted when
/// absent), the one human-readable line format of both front ends.
std::string formatDiagnostic(const Diagnostic &D);

/// Serialises one diagnostic as a JSON object (stable key order:
/// id, severity, subject, addr, message; subject/addr omitted as absent).
std::string diagnosticJson(const Diagnostic &D);

/// Serialises a list as a JSON array, one object per line.
std::string diagnosticsJson(const std::vector<Diagnostic> &Diags);

/// Conversions from the per-analysis diagnostic structs.
Diagnostic toDiagnostic(const AuditDiag &D);
Diagnostic toDiagnostic(const LintDiag &D);

std::vector<Diagnostic> toDiagnostics(const std::vector<AuditDiag> &Diags);
std::vector<Diagnostic> toDiagnostics(const std::vector<LintDiag> &Diags);

} // namespace analysis
} // namespace silver

#endif // SILVER_ANALYSIS_DIAGNOSTIC_H
