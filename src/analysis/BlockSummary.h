//===- analysis/BlockSummary.h - Symbolic basic-block summaries -*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic execution of decoded Silver basic blocks, in the
/// translation-validation style of decompilation-into-logic binary
/// verification (Sewell/Myreen/Klein, PAPERS.md): each block of a
/// region's Cfg is abstractly interpreted once, yielding a BlockSummary —
/// the block's register effects as affine symbolic values over the
/// block-entry register file, its memory reads and writes as
/// interval+alignment abstractions, its dynamic successor set, and a
/// safety classification that says whether the ROADMAP's baseline JIT may
/// translate the block (`Translatable`) or must leave it to the
/// interpreter (`InterpreterOnly`, with machine-readable reasons).
///
/// Abstraction domains (DESIGN.md §12):
///
///   SymValue  =  Top  |  Const c  |  RegPlus r c      (value lattice)
///   MemRange  =  None |  Absolute [lo,hi] align
///                     |  RegRel r [lo,hi] align  |  Unbounded align
///
/// Entry seeding makes the summaries region-contextual: registers the
/// constant-propagation solver (Dataflow.h) proves constant at block
/// entry start as Const, everything else as RegPlus(r, 0).  Every claim a
/// summary makes is therefore conditional only on those recorded entry
/// constants (BlockSummary::EntryConsts) — which is exactly what the
/// fuzzer's containment level (fuzz/Containment.h) checks concretely
/// before holding a replayed execution to the summary's claims.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_ANALYSIS_BLOCKSUMMARY_H
#define SILVER_ANALYSIS_BLOCKSUMMARY_H

#include "analysis/ImageAudit.h"
#include "isa/Effects.h"

#include <array>
#include <optional>
#include <string>
#include <vector>

namespace silver {
namespace analysis {

/// A symbolic word value over the block-entry register file.
struct SymValue {
  enum class Kind : uint8_t {
    Top,     ///< no information
    Const,   ///< the constant Off
    RegPlus, ///< entry value of register Reg, plus Off (mod 2^32)
  };
  Kind K = Kind::Top;
  uint8_t Reg = 0;
  Word Off = 0;

  static SymValue top() { return SymValue(); }
  static SymValue constant(Word C) {
    SymValue V;
    V.K = Kind::Const;
    V.Off = C;
    return V;
  }
  static SymValue regPlus(unsigned R, Word Off) {
    SymValue V;
    V.K = Kind::RegPlus;
    V.Reg = static_cast<uint8_t>(R);
    V.Off = Off;
    return V;
  }
  /// The identity value of register \p R (its own entry value).
  static SymValue entry(unsigned R) { return regPlus(R, 0); }

  bool isTop() const { return K == Kind::Top; }
  bool isConst() const { return K == Kind::Const; }
  bool isRegPlus() const { return K == Kind::RegPlus; }

  /// The constant, when K == Const.
  std::optional<Word> asConst() const {
    return isConst() ? std::optional<Word>(Off) : std::nullopt;
  }

  /// Concrete value under the given block-entry register file; nullopt
  /// for Top.
  std::optional<Word> eval(const std::array<Word, isa::NumRegs> &Entry) const {
    switch (K) {
    case Kind::Top:
      return std::nullopt;
    case Kind::Const:
      return Off;
    case Kind::RegPlus:
      return Entry[Reg] + Off;
    }
    return std::nullopt;
  }

  bool operator==(const SymValue &O) const {
    return K == O.K && (K != Kind::RegPlus || Reg == O.Reg) &&
           (K == Kind::Top || Off == O.Off);
  }
};

/// Renders "?", "0x...", or "r7+0x..." (for golden tests and reports).
std::string toString(const SymValue &V);

/// Exit state of one ALU flag relative to block entry.
struct FlagOut {
  enum class Kind : uint8_t {
    Preserved, ///< equal to its entry value
    Const,     ///< the constant Value
    Unknown,   ///< written with an unpredictable value
  };
  Kind K = Kind::Preserved;
  bool Value = false;

  /// Concrete exit value given the entry value; nullopt when Unknown.
  std::optional<bool> eval(bool EntryValue) const {
    switch (K) {
    case Kind::Preserved:
      return EntryValue;
    case Kind::Const:
      return Value;
    case Kind::Unknown:
      return std::nullopt;
    }
    return std::nullopt;
  }
  bool operator==(const FlagOut &O) const {
    return K == O.K && (K != Kind::Const || Value == O.Value);
  }
};

/// An abstract byte interval accessed by a load or store.  Lo/Hi are
/// inclusive byte offsets — absolute addresses (Absolute) or offsets from
/// the entry value of a base register (RegRel).  Align is the guaranteed
/// alignment of every access start within the range (word accesses that
/// retire are 4-aligned by the ISA semantics, so Align is at least the
/// access size).
struct MemRange {
  enum class Kind : uint8_t { None, Absolute, RegRel, Unbounded };
  Kind K = Kind::None;
  uint8_t Reg = 0; ///< RegRel base register (entry value)
  Word Lo = 0;
  Word Hi = 0;
  uint8_t Align = 1;

  static MemRange none() { return MemRange(); }
  static MemRange unbounded(uint8_t Align) {
    MemRange R;
    R.K = Kind::Unbounded;
    R.Align = Align;
    return R;
  }
  static MemRange absolute(Word Lo, Word Hi, uint8_t Align) {
    MemRange R;
    R.K = Kind::Absolute;
    R.Lo = Lo;
    R.Hi = Hi;
    R.Align = Align;
    return R;
  }
  static MemRange regRel(unsigned Reg, Word Lo, Word Hi, uint8_t Align) {
    MemRange R;
    R.K = Kind::RegRel;
    R.Reg = static_cast<uint8_t>(Reg);
    R.Lo = Lo;
    R.Hi = Hi;
    R.Align = Align;
    return R;
  }

  /// The range of an access of \p Size bytes at symbolic address \p Addr.
  static MemRange ofAccess(const SymValue &Addr, uint8_t Size);

  /// Interval hull of two ranges (same kind and base required; anything
  /// else widens to Unbounded).  None is the identity.
  static MemRange join(const MemRange &A, const MemRange &B);

  /// Whether a concrete access of \p Size bytes at \p Addr is inside the
  /// range under the given block-entry register file.  All interval
  /// arithmetic is modulo 2^32, matching the ISA's address arithmetic.
  bool contains(Word Addr, uint8_t Size,
                const std::array<Word, isa::NumRegs> &Entry) const;

  bool operator==(const MemRange &O) const {
    if (K != O.K || Align != O.Align)
      return false;
    if (K == Kind::None || K == Kind::Unbounded)
      return true;
    return Lo == O.Lo && Hi == O.Hi && (K != Kind::RegRel || Reg == O.Reg);
  }
};

/// Renders "none", "*", "[0x..,0x..]/4", or "r60+[-8,-5]/4".
std::string toString(const MemRange &R);

/// Static effects of one instruction inside its block: the decoder-side
/// metadata plus the abstract address range of its data-memory access.
struct InsnEffect {
  Word Addr = 0;
  isa::EffectInfo Info;
  MemRange Access; ///< meaningful when Info.Mem != None
};

/// Why a block cannot be handed to the JIT.
enum class InterpReason : uint8_t {
  IllegalInstruction,  ///< a reachable word in the block does not decode
  SelfModifying,       ///< a store's resolved range overlaps reachable code
  UnresolvedSuccessor, ///< computed exit whose target is symbolically Top
  FfiBoundary,         ///< block transfers into the FFI dispatch code
  Io,                  ///< Interrupt/In/Out: needs the environment model
};
inline constexpr unsigned NumInterpReasons = 5;

/// The stable string identifier (e.g. "self-modifying").
const char *interpReasonId(InterpReason R);

/// The symbolic summary of one basic block.
struct BlockSummary {
  size_t BlockIndex = 0;
  Word EntryAddr = 0;
  size_t InstrCount = 0;
  bool Reachable = false; ///< unreachable blocks carry no claims

  /// Entry constants inherited from the region's constprop solution;
  /// every other claim below is conditional on exactly these.
  std::array<std::optional<Word>, isa::NumRegs> EntryConsts;

  std::vector<InsnEffect> Insns; ///< one entry per instruction

  /// Exit register file in terms of the entry register file.  Registers
  /// the block does not write are RegPlus(r, 0) by construction.
  std::array<SymValue, isa::NumRegs> RegOut;
  FlagOut CarryOut;
  FlagOut OverflowOut;

  uint64_t RegWrites = 0; ///< union of the per-instruction write masks
  uint64_t RegReads = 0;

  MemRange Reads;  ///< join of all load ranges
  MemRange Writes; ///< join of all store ranges

  /// Dynamic successor set: the addresses the terminator can set the PC
  /// to (a call's successor is its target — the return point belongs to
  /// the callee's exit).  Exact when SuccsExact; otherwise the exit is
  /// computed and ExitTarget describes it symbolically.
  std::vector<Word> Succs;
  bool SuccsExact = true;
  SymValue ExitTarget; ///< terminator target (Top when not computed)

  bool Translatable = true;
  std::vector<InterpReason> Reasons; ///< sorted, deduplicated

  bool hasReason(InterpReason R) const {
    for (InterpReason Have : Reasons)
      if (Have == R)
        return true;
    return false;
  }
};

/// The context a summary pass classifies against: where reachable
/// instruction bytes live (for the self-modification check against the
/// DecodeCache invalidation contract) and where the FFI dispatch entry
/// is (for the oracle-boundary check).
struct SummaryContext {
  /// Intervals [Lo, Hi) of reachable instruction bytes, all regions.
  std::vector<std::pair<Word, Word>> CodeIntervals;
  std::optional<Word> FfiEntry;

  /// Whether the inclusive byte interval [Lo, Hi] overlaps reachable
  /// instruction bytes.
  bool hitsCode(Word Lo, Word Hi) const;

  /// Adds the reachable blocks of \p A as code intervals.
  void addRegion(const RegionAnalysis &A);
};

/// Summaries for every block of one analysed region, indexed like
/// RegionAnalysis::G.Blocks.
struct RegionSummary {
  std::vector<BlockSummary> Blocks;

  /// The summary of the block starting exactly at \p Addr, if any.
  const BlockSummary *atEntry(const Cfg &G, Word Addr) const;
};

/// Summarises one block of \p A.  Exposed for golden tests; most callers
/// want summarizeBlocks.
BlockSummary summarizeBlock(const RegionAnalysis &A, size_t BlockIdx,
                            const SummaryContext &Ctx);

/// Symbolically executes every block of \p A.
RegionSummary summarizeBlocks(const RegionAnalysis &A,
                              const SummaryContext &Ctx);

/// Block summaries for all three code regions of an audited image, under
/// one shared context built from the report's reachable code.
struct ImageSummary {
  SummaryContext Ctx;
  RegionSummary Startup;
  RegionSummary Syscall;
  RegionSummary Program;
};

/// Summarises all regions of \p Report (analysis::auditImage's result).
ImageSummary summarizeImage(const AuditReport &Report);

/// Opt-in obligations derivable from the summaries but too strict to be
/// unconditional audit rules (compiled closures routinely spill the
/// stack pointer, and hand-written images may drive the ports).
struct SummaryObligations {
  /// Every reachable program block must leave the stack pointer at a
  /// known offset from its entry value ("img-stack-discipline").
  bool StackDiscipline = false;
  /// No reachable program block may execute In/Out/Interrupt directly —
  /// environment interaction belongs to the syscall code ("img-raw-io").
  bool NoRawIo = false;
};

/// Checks \p S's program region against the requested obligations,
/// returning one diagnostic per violating block.
std::vector<AuditDiag> checkObligations(const ImageSummary &S,
                                        const SummaryObligations &O);

} // namespace analysis
} // namespace silver

#endif // SILVER_ANALYSIS_BLOCKSUMMARY_H
