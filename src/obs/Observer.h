//===- obs/Observer.h - Unified observability interface ---------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event stream between execution layers.  The paper's end-to-end
/// theorem says every level of Figure 1 produces the same observable
/// behaviour; this interface makes the *stream* of intermediate events —
/// instruction retirements, memory traffic, FFI-call spans, clock cycles —
/// observable at every level, so cross-level divergences surface at the
/// first differing event rather than at the final stdout comparison
/// (compare CompCert's trace-based correctness statement and the
/// interaction-tree semantics for RISC-V, PAPERS.md).
///
/// Dependency discipline: this module depends only on support/, so every
/// execution layer (isa, ffi, hdl, sys, machine, cpu, stack) can emit
/// events without cycles in the library graph.  Events therefore carry
/// raw words — opcode numbers, FFI indices — and the *consumers* that
/// want symbolic names (obs::Counters, obs::TraceSink) are configured
/// with name tables by the layer that owns them (stack::Executor).
///
/// Zero-cost-when-null: layers take an `Observer *` and emit only when it
/// is non-null; the uninstrumented paths (isa::run / isa::step without an
/// observer) are compiled from the same template with a no-op emitter and
/// are bit-identical to the pre-observability code.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_OBS_OBSERVER_H
#define SILVER_OBS_OBSERVER_H

#include "support/Bits.h"

#include <cstdint>
#include <string>
#include <vector>

namespace silver {
namespace obs {

/// Execution level emitting the events (Figure 1).  Mirrors stack::Level
/// (stack sits above obs and converts).
enum class ExecLevel : uint8_t { Spec, Machine, Isa, Rtl, Verilog };
const char *execLevelName(ExecLevel L);

/// Memory-region buckets, following the paper's Figure 2 image layout.
enum class Region : uint8_t {
  Startup,     ///< startup code
  Descriptor,  ///< descriptor table + exit cells
  Cmdline,     ///< command-line region
  Stdin,       ///< pre-filled standard input
  OutBuf,      ///< output buffer
  SyscallCode, ///< system-call code (+ called-id cell)
  Heap,        ///< CakeML-usable memory
  Code,        ///< compiled program code + data
  Other,       ///< outside every mapped region
};
inline constexpr unsigned NumRegions = 9;
const char *regionName(Region R);

/// Address-to-region classifier.  Built from a sys::MemoryLayout by
/// stack::Executor (obs itself is layout-agnostic).
class RegionMap {
public:
  /// Maps [Begin, End) to \p R.  Regions must not overlap.
  void add(Word Begin, Word End, Region R);
  /// Region containing \p Addr, or Region::Other.
  Region classify(Word Addr) const;
  bool empty() const { return Entries.empty(); }

private:
  struct Entry {
    Word Begin;
    Word End;
    Region R;
  };
  std::vector<Entry> Entries; ///< kept sorted by Begin
};

/// One retired instruction.  At the Isa/Machine levels this is one Next
/// step; at the Rtl/Verilog levels it is a retire pulse of the core.  The
/// pc+opcode stream is the cross-level comparison key: all four levels
/// below Spec must produce the same sequence.
struct RetireEvent {
  Word Pc = 0;
  uint8_t Opcode = 0;           ///< isa::Opcode as a raw number
  const char *Mnemonic = nullptr; ///< static opcode name (may be null)
  uint64_t Index = 0;           ///< 0-based retirement index of this run
};

/// One data memory access (loads/stores; not instruction fetches).
struct MemEvent {
  Word Addr = 0;
  uint8_t Size = 0; ///< bytes: 1 or 4
  bool IsWrite = false;
};

/// FFI-call span boundary.  At the machine level the oracle call is
/// instantaneous (entry and exit in the same step); at the Isa/Rtl levels
/// the span covers the hand-written system-call code.
struct FfiEvent {
  unsigned Index = 0; ///< basis call index (sys::FfiIndex order)
  bool Entry = true;
};

/// The observer interface.  All callbacks default to no-ops so observers
/// override only what they consume.  Emitting layers hold a raw pointer
/// and never take ownership.
class Observer {
public:
  virtual ~Observer();

  /// A run at \p L starts.  Always paired with onRunEnd.
  virtual void onRunBegin(ExecLevel L);
  virtual void onRetire(const RetireEvent &E);
  virtual void onMem(const MemEvent &E);
  virtual void onFfi(const FfiEvent &E);
  /// One clock cycle ticked (Rtl/Verilog only).  \p CycleIndex is 0-based.
  virtual void onCycle(uint64_t CycleIndex);
  virtual void onRunEnd();
};

/// Fan-out to several observers (e.g. a TraceSink and a Counters at once).
class MultiObserver : public Observer {
public:
  MultiObserver() = default;
  explicit MultiObserver(std::vector<Observer *> Sinks)
      : Sinks(std::move(Sinks)) {}
  void add(Observer *O) { Sinks.push_back(O); }

  void onRunBegin(ExecLevel L) override;
  void onRetire(const RetireEvent &E) override;
  void onMem(const MemEvent &E) override;
  void onFfi(const FfiEvent &E) override;
  void onCycle(uint64_t CycleIndex) override;
  void onRunEnd() override;

private:
  std::vector<Observer *> Sinks;
};

} // namespace obs
} // namespace silver

#endif // SILVER_OBS_OBSERVER_H
