//===- obs/Counters.cpp - Aggregating performance counters -------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "obs/Counters.h"

#include <cstdio>

using namespace silver;
using namespace silver::obs;

void Counters::reset() {
  Retired = 0;
  Cycles = 0;
  OpcodeCounts.fill(0);
  RegionLoads.fill(0);
  RegionStores.fill(0);
  Ffi.clear();
  InFfi = false;
}

void Counters::mergeFrom(const Counters &Other) {
  Retired += Other.Retired;
  Cycles += Other.Cycles;
  for (size_t I = 0; I != OpcodeCounts.size(); ++I)
    OpcodeCounts[I] += Other.OpcodeCounts[I];
  for (size_t I = 0; I != NumRegions; ++I) {
    RegionLoads[I] += Other.RegionLoads[I];
    RegionStores[I] += Other.RegionStores[I];
  }
  if (Ffi.size() < Other.Ffi.size())
    Ffi.resize(Other.Ffi.size());
  for (size_t I = 0; I != Other.Ffi.size(); ++I) {
    Ffi[I].Calls += Other.Ffi[I].Calls;
    Ffi[I].Instructions += Other.Ffi[I].Instructions;
    Ffi[I].Cycles += Other.Ffi[I].Cycles;
  }
}

void Counters::onRunBegin(ExecLevel L) {
  Level = L;
  InFfi = false;
}

void Counters::onRetire(const RetireEvent &E) {
  ++Retired;
  if (E.Opcode < OpcodeCounts.size())
    ++OpcodeCounts[E.Opcode];
}

void Counters::onMem(const MemEvent &E) {
  unsigned R = static_cast<unsigned>(Map.classify(E.Addr));
  if (E.IsWrite)
    ++RegionStores[R];
  else
    ++RegionLoads[R];
}

void Counters::onFfi(const FfiEvent &E) {
  if (E.Index >= Ffi.size())
    Ffi.resize(E.Index + 1);
  if (E.Entry) {
    ++Ffi[E.Index].Calls;
    InFfi = true;
    FfiIndex = E.Index;
    FfiEntryRetired = Retired;
    FfiEntryCycles = Cycles;
  } else if (InFfi && E.Index == FfiIndex) {
    Ffi[E.Index].Instructions += Retired - FfiEntryRetired;
    Ffi[E.Index].Cycles += Cycles - FfiEntryCycles;
    InFfi = false;
  }
}

void Counters::onCycle(uint64_t) { ++Cycles; }

void Counters::onRunEnd() {
  // An "exit" call halts inside the system-call code, so its span never
  // sees a matching exit event; close it here.
  if (InFfi) {
    Ffi[FfiIndex].Instructions += Retired - FfiEntryRetired;
    Ffi[FfiIndex].Cycles += Cycles - FfiEntryCycles;
    InFfi = false;
  }
}

std::string Counters::ffiLabel(unsigned Index) const {
  if (Index < FfiNames.size())
    return FfiNames[Index];
  return "ffi#" + std::to_string(Index);
}

std::string Counters::report() const {
  char Line[160];
  std::string Out;
  std::snprintf(Line, sizeof(Line),
                "level: %s\ninstructions: %llu\ncycles: %llu\nCPI: %.3f\n",
                execLevelName(Level), (unsigned long long)Retired,
                (unsigned long long)Cycles, cpi());
  Out += Line;
  Out += "region traffic (loads/stores):\n";
  for (unsigned R = 0; R != NumRegions; ++R) {
    if (RegionLoads[R] == 0 && RegionStores[R] == 0)
      continue;
    std::snprintf(Line, sizeof(Line), "  %-10s %12llu %12llu\n",
                  regionName(static_cast<Region>(R)),
                  (unsigned long long)RegionLoads[R],
                  (unsigned long long)RegionStores[R]);
    Out += Line;
  }
  bool AnyFfi = false;
  for (const FfiCost &C : Ffi)
    AnyFfi |= C.Calls != 0;
  if (AnyFfi) {
    Out += "syscall cost (calls/instructions/cycles):\n";
    for (unsigned I = 0; I != Ffi.size(); ++I) {
      if (Ffi[I].Calls == 0)
        continue;
      std::snprintf(Line, sizeof(Line), "  %-14s %8llu %12llu %12llu\n",
                    ffiLabel(I).c_str(), (unsigned long long)Ffi[I].Calls,
                    (unsigned long long)Ffi[I].Instructions,
                    (unsigned long long)Ffi[I].Cycles);
      Out += Line;
    }
  }
  return Out;
}

std::string Counters::toJson() const {
  char Buf[96];
  std::string Out = "{";
  Out += "\"level\":\"" + std::string(execLevelName(Level)) + "\"";
  std::snprintf(Buf, sizeof(Buf), ",\"instructions\":%llu,\"cycles\":%llu",
                (unsigned long long)Retired, (unsigned long long)Cycles);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), ",\"cpi\":%.4f", cpi());
  Out += Buf;
  Out += ",\"regions\":{";
  bool First = true;
  for (unsigned R = 0; R != NumRegions; ++R) {
    if (RegionLoads[R] == 0 && RegionStores[R] == 0)
      continue;
    if (!First)
      Out += ",";
    First = false;
    std::snprintf(Buf, sizeof(Buf), "\"%s\":{\"loads\":%llu,\"stores\":%llu}",
                  regionName(static_cast<Region>(R)),
                  (unsigned long long)RegionLoads[R],
                  (unsigned long long)RegionStores[R]);
    Out += Buf;
  }
  Out += "},\"ffi\":{";
  First = true;
  for (unsigned I = 0; I != Ffi.size(); ++I) {
    if (Ffi[I].Calls == 0)
      continue;
    if (!First)
      Out += ",";
    First = false;
    std::snprintf(Buf, sizeof(Buf),
                  "{\"calls\":%llu,\"instructions\":%llu,\"cycles\":%llu}",
                  (unsigned long long)Ffi[I].Calls,
                  (unsigned long long)Ffi[I].Instructions,
                  (unsigned long long)Ffi[I].Cycles);
    Out += "\"" + ffiLabel(I) + "\":" + Buf;
  }
  Out += "}}";
  return Out;
}
