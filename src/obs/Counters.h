//===- obs/Counters.h - Aggregating performance counters --------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A built-in observer that aggregates the event stream into the numbers
/// the ROADMAP's perf work needs: retired instructions, clock cycles, CPI,
/// per-opcode retirement counts, per-Figure-2-region load/store traffic,
/// and per-FFI-call cost (calls, instructions and cycles spent inside the
/// system-call code).  Deterministic: two identical runs produce
/// byte-identical reports.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_OBS_COUNTERS_H
#define SILVER_OBS_COUNTERS_H

#include "obs/Observer.h"

#include <array>

namespace silver {
namespace obs {

class Counters : public Observer {
public:
  /// \p Map buckets memory traffic by region (empty: everything lands in
  /// Region::Other).  \p FfiNames label the per-call rows of report();
  /// indices beyond the table print as "ffi#N".
  explicit Counters(RegionMap Map = {}, std::vector<std::string> FfiNames = {})
      : Map(std::move(Map)), FfiNames(std::move(FfiNames)) {}

  // -- aggregated state (public: this is a read-out struct) --
  uint64_t Retired = 0; ///< instructions retired
  uint64_t Cycles = 0;  ///< clock cycles ticked (0 at Spec/Machine/Isa)
  std::array<uint64_t, 16> OpcodeCounts{}; ///< by isa::Opcode number
  std::array<uint64_t, NumRegions> RegionLoads{};
  std::array<uint64_t, NumRegions> RegionStores{};

  struct FfiCost {
    uint64_t Calls = 0;
    uint64_t Instructions = 0; ///< retired inside the call span
    uint64_t Cycles = 0;       ///< cycles inside the call span (Rtl/Verilog)
  };
  std::vector<FfiCost> Ffi; ///< indexed by FFI call index

  /// Cycles per retired instruction.  The ISA and machine levels have no
  /// clock, so CPI is 1 by definition there (one Next step per retire).
  double cpi() const {
    return Retired == 0 ? 0.0
           : Cycles == 0 ? 1.0
                         : static_cast<double>(Cycles) / Retired;
  }

  void reset();

  /// Folds \p Other's aggregated state into this counter: plain sums of
  /// the retire/cycle totals, the opcode and region tables, and the FFI
  /// cost rows (the FFI vector grows to the longer of the two).  The
  /// operation is associative and commutative, which is what lets
  /// per-worker counters aggregate into service-wide totals off the hot
  /// path (svc::Service): workers update their own counter lock-free
  /// during a run and merge in a cold section afterwards.  Only settled
  /// state is merged — merge counters between runs, not mid-FFI-span
  /// (the in-progress span bookkeeping stays with each counter).
  void mergeFrom(const Counters &Other);

  /// Human-readable multi-line report.
  std::string report() const;
  /// Single-line JSON object with the same content.
  std::string toJson() const;

  // Observer implementation.
  void onRunBegin(ExecLevel L) override;
  void onRetire(const RetireEvent &E) override;
  void onMem(const MemEvent &E) override;
  void onFfi(const FfiEvent &E) override;
  void onCycle(uint64_t CycleIndex) override;
  void onRunEnd() override;

private:
  std::string ffiLabel(unsigned Index) const;

  RegionMap Map;
  std::vector<std::string> FfiNames;
  ExecLevel Level = ExecLevel::Isa;
  bool InFfi = false;
  unsigned FfiIndex = 0;
  uint64_t FfiEntryRetired = 0;
  uint64_t FfiEntryCycles = 0;
};

} // namespace obs
} // namespace silver

#endif // SILVER_OBS_COUNTERS_H
