//===- obs/TraceSink.cpp - Event-trace recording observer --------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceSink.h"

#include <cstdio>
#include <ostream>

using namespace silver;
using namespace silver::obs;

void TraceSink::onRunBegin(ExecLevel L) {
  Level = L;
  Cycles = 0;
  Retired = 0;
}

void TraceSink::push(const Rec &R) {
  if (Recs.size() >= MaxEvents) {
    ++Dropped;
    return;
  }
  Recs.push_back(R);
}

void TraceSink::onRetire(const RetireEvent &E) {
  push({Rec::Kind::Retire, Cycles, Retired, E.Pc, E.Opcode, false,
        E.Mnemonic});
  ++Retired;
}

void TraceSink::onMem(const MemEvent &E) {
  push({Rec::Kind::Mem, Cycles, Retired, E.Addr, E.Size, E.IsWrite, nullptr});
}

void TraceSink::onFfi(const FfiEvent &E) {
  push({E.Entry ? Rec::Kind::FfiEntry : Rec::Kind::FfiExit, Cycles, Retired,
        0, static_cast<uint8_t>(E.Index), false, nullptr});
}

void TraceSink::onCycle(uint64_t) { ++Cycles; }

void TraceSink::onRunEnd() {}

std::vector<std::pair<Word, uint8_t>> TraceSink::retireStream() const {
  std::vector<std::pair<Word, uint8_t>> Out;
  for (const Rec &R : Recs)
    if (R.K == Rec::Kind::Retire)
      Out.emplace_back(R.Addr, R.Op);
  return Out;
}

std::string TraceSink::ffiLabel(unsigned Index) const {
  if (Index < FfiNames.size())
    return FfiNames[Index];
  return "ffi#" + std::to_string(Index);
}

/// Timestamp of a record: cycles when the run has a clock, else the
/// retirement index.
static uint64_t tsOf(const TraceSink::Rec &R, bool HasClock) {
  return HasClock ? R.Cycle : R.Retire;
}

void TraceSink::writeJsonl(std::ostream &Out) const {
  char Line[192];
  for (const Rec &R : Recs) {
    switch (R.K) {
    case Rec::Kind::Retire:
      std::snprintf(Line, sizeof(Line),
                    "{\"t\":\"retire\",\"i\":%llu,\"pc\":%u,\"op\":%u,"
                    "\"name\":\"%s\",\"cycle\":%llu}\n",
                    (unsigned long long)R.Retire, R.Addr, R.Op,
                    R.Name ? R.Name : "", (unsigned long long)R.Cycle);
      break;
    case Rec::Kind::Mem:
      std::snprintf(Line, sizeof(Line),
                    "{\"t\":\"mem\",\"addr\":%u,\"size\":%u,\"write\":%s,"
                    "\"i\":%llu,\"cycle\":%llu}\n",
                    R.Addr, R.Op, R.IsWrite ? "true" : "false",
                    (unsigned long long)R.Retire,
                    (unsigned long long)R.Cycle);
      break;
    case Rec::Kind::FfiEntry:
    case Rec::Kind::FfiExit:
      std::snprintf(Line, sizeof(Line),
                    "{\"t\":\"ffi\",\"phase\":\"%s\",\"index\":%u,"
                    "\"name\":\"%s\",\"i\":%llu,\"cycle\":%llu}\n",
                    R.K == Rec::Kind::FfiEntry ? "entry" : "exit", R.Op,
                    ffiLabel(R.Op).c_str(), (unsigned long long)R.Retire,
                    (unsigned long long)R.Cycle);
      break;
    }
    Out << Line;
  }
  if (Dropped) {
    std::snprintf(Line, sizeof(Line),
                  "{\"t\":\"truncated\",\"dropped\":%llu}\n",
                  (unsigned long long)Dropped);
    Out << Line;
  }
}

void TraceSink::writeChromeTrace(std::ostream &Out) const {
  bool HasClock = false;
  for (const Rec &R : Recs)
    if (R.Cycle) {
      HasClock = true;
      break;
    }

  char Line[256];
  Out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  std::snprintf(Line, sizeof(Line),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                "\"args\":{\"name\":\"silverstack\"}},\n"
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
                "\"args\":{\"name\":\"%s (%s)\"}}",
                execLevelName(Level), HasClock ? "cycles" : "instructions");
  Out << Line;

  unsigned OpenFfi = 0;
  uint64_t LastTs = 0;
  for (const Rec &R : Recs) {
    uint64_t Ts = tsOf(R, HasClock);
    LastTs = Ts;
    switch (R.K) {
    case Rec::Kind::Retire:
      std::snprintf(Line, sizeof(Line),
                    ",\n{\"name\":\"%s\",\"cat\":\"retire\",\"ph\":\"X\","
                    "\"ts\":%llu,\"dur\":1,\"pid\":1,\"tid\":1,"
                    "\"args\":{\"pc\":%u,\"i\":%llu}}",
                    R.Name ? R.Name : "retire", (unsigned long long)Ts,
                    R.Addr, (unsigned long long)R.Retire);
      break;
    case Rec::Kind::Mem:
      std::snprintf(Line, sizeof(Line),
                    ",\n{\"name\":\"%s\",\"cat\":\"mem\",\"ph\":\"i\","
                    "\"s\":\"t\",\"ts\":%llu,\"pid\":1,\"tid\":1,"
                    "\"args\":{\"addr\":%u,\"size\":%u}}",
                    R.IsWrite ? "store" : "load", (unsigned long long)Ts,
                    R.Addr, R.Op);
      break;
    case Rec::Kind::FfiEntry:
      std::snprintf(Line, sizeof(Line),
                    ",\n{\"name\":\"%s\",\"cat\":\"ffi\",\"ph\":\"B\","
                    "\"ts\":%llu,\"pid\":1,\"tid\":1}",
                    ffiLabel(R.Op).c_str(), (unsigned long long)Ts);
      ++OpenFfi;
      break;
    case Rec::Kind::FfiExit:
      if (OpenFfi == 0)
        continue; // unmatched exit: drop rather than corrupt the nesting
      std::snprintf(Line, sizeof(Line),
                    ",\n{\"name\":\"%s\",\"cat\":\"ffi\",\"ph\":\"E\","
                    "\"ts\":%llu,\"pid\":1,\"tid\":1}",
                    ffiLabel(R.Op).c_str(), (unsigned long long)Ts);
      --OpenFfi;
      break;
    }
    Out << Line;
  }
  // Close any span left open (an "exit" call halts inside the syscall
  // code, so its exit event never fires).
  for (; OpenFfi; --OpenFfi) {
    std::snprintf(Line, sizeof(Line),
                  ",\n{\"name\":\"open-at-end\",\"cat\":\"ffi\",\"ph\":\"E\","
                  "\"ts\":%llu,\"pid\":1,\"tid\":1}",
                  (unsigned long long)(LastTs + 1));
    Out << Line;
  }
  Out << "\n]}\n";
}
