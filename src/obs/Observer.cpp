//===- obs/Observer.cpp - Unified observability interface --------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "obs/Observer.h"

#include <algorithm>

using namespace silver;
using namespace silver::obs;

const char *silver::obs::execLevelName(ExecLevel L) {
  switch (L) {
  case ExecLevel::Spec:
    return "spec";
  case ExecLevel::Machine:
    return "machine-sem";
  case ExecLevel::Isa:
    return "isa";
  case ExecLevel::Rtl:
    return "rtl";
  case ExecLevel::Verilog:
    return "verilog";
  }
  return "?";
}

const char *silver::obs::regionName(Region R) {
  switch (R) {
  case Region::Startup:
    return "startup";
  case Region::Descriptor:
    return "descriptor";
  case Region::Cmdline:
    return "cmdline";
  case Region::Stdin:
    return "stdin";
  case Region::OutBuf:
    return "outbuf";
  case Region::SyscallCode:
    return "syscall";
  case Region::Heap:
    return "heap";
  case Region::Code:
    return "code";
  case Region::Other:
    return "other";
  }
  return "?";
}

void RegionMap::add(Word Begin, Word End, Region R) {
  if (Begin >= End)
    return;
  Entry E{Begin, End, R};
  Entries.insert(std::upper_bound(Entries.begin(), Entries.end(), E,
                                  [](const Entry &A, const Entry &B) {
                                    return A.Begin < B.Begin;
                                  }),
                 E);
}

Region RegionMap::classify(Word Addr) const {
  auto It = std::upper_bound(Entries.begin(), Entries.end(), Addr,
                             [](Word A, const Entry &E) { return A < E.Begin; });
  if (It == Entries.begin())
    return Region::Other;
  --It;
  return Addr < It->End ? It->R : Region::Other;
}

Observer::~Observer() = default;
void Observer::onRunBegin(ExecLevel) {}
void Observer::onRetire(const RetireEvent &) {}
void Observer::onMem(const MemEvent &) {}
void Observer::onFfi(const FfiEvent &) {}
void Observer::onCycle(uint64_t) {}
void Observer::onRunEnd() {}

void MultiObserver::onRunBegin(ExecLevel L) {
  for (Observer *O : Sinks)
    O->onRunBegin(L);
}
void MultiObserver::onRetire(const RetireEvent &E) {
  for (Observer *O : Sinks)
    O->onRetire(E);
}
void MultiObserver::onMem(const MemEvent &E) {
  for (Observer *O : Sinks)
    O->onMem(E);
}
void MultiObserver::onFfi(const FfiEvent &E) {
  for (Observer *O : Sinks)
    O->onFfi(E);
}
void MultiObserver::onCycle(uint64_t CycleIndex) {
  for (Observer *O : Sinks)
    O->onCycle(CycleIndex);
}
void MultiObserver::onRunEnd() {
  for (Observer *O : Sinks)
    O->onRunEnd();
}
