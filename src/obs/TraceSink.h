//===- obs/TraceSink.h - Event-trace recording observer ---------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A built-in observer that records the event stream and serialises it as
/// either JSONL (one JSON object per line; the machine-diffable format the
/// cross-level equality tests use) or the Chrome trace_event format
/// (load the file in chrome://tracing or https://ui.perfetto.dev).  The
/// buffer is bounded: once MaxEvents records are held, further events are
/// counted but dropped, so tracing a long run cannot exhaust memory.
///
/// Timestamps: on the cycle-accurate levels the cycle counter is the
/// clock; on Spec/Machine/Isa the retirement index is used instead (one
/// "microsecond" per instruction in the Chrome view).
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_OBS_TRACESINK_H
#define SILVER_OBS_TRACESINK_H

#include "obs/Observer.h"

#include <iosfwd>

namespace silver {
namespace obs {

class TraceSink : public Observer {
public:
  explicit TraceSink(size_t MaxEvents = 1'000'000) : MaxEvents(MaxEvents) {}

  /// Labels FFI spans with call names (sys::FfiIndex order).
  void setFfiNames(std::vector<std::string> Names) {
    FfiNames = std::move(Names);
  }

  /// Records kept (after the cap) and whether anything was dropped.
  size_t size() const { return Recs.size(); }
  bool truncated() const { return Dropped != 0; }
  uint64_t dropped() const { return Dropped; }

  /// One record of the stream, exposed for tests (the retire-stream
  /// equality test compares pc+opcode sequences across levels).
  struct Rec {
    enum class Kind : uint8_t { Retire, Mem, FfiEntry, FfiExit };
    Kind K;
    uint64_t Cycle;  ///< cycles ticked when the event fired
    uint64_t Retire; ///< instructions retired when the event fired
    Word Addr;       ///< pc (Retire) or address (Mem)
    uint8_t Op;      ///< opcode (Retire), size (Mem), or FFI index
    bool IsWrite;    ///< Mem only
    const char *Name; ///< mnemonic (Retire; may be null)
  };
  const std::vector<Rec> &records() const { return Recs; }

  /// The pc+opcode retire sequence (the cross-level comparison key).
  std::vector<std::pair<Word, uint8_t>> retireStream() const;

  /// Writes one JSON object per line.
  void writeJsonl(std::ostream &Out) const;
  /// Writes a chrome://tracing-loadable JSON document.
  void writeChromeTrace(std::ostream &Out) const;

  // Observer implementation.
  void onRunBegin(ExecLevel L) override;
  void onRetire(const RetireEvent &E) override;
  void onMem(const MemEvent &E) override;
  void onFfi(const FfiEvent &E) override;
  void onCycle(uint64_t CycleIndex) override;
  void onRunEnd() override;

private:
  void push(const Rec &R);
  std::string ffiLabel(unsigned Index) const;

  size_t MaxEvents;
  std::vector<std::string> FfiNames;
  std::vector<Rec> Recs;
  uint64_t Dropped = 0;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  ExecLevel Level = ExecLevel::Isa;
};

} // namespace obs
} // namespace silver

#endif // SILVER_OBS_TRACESINK_H
