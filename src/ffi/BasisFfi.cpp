//===- ffi/BasisFfi.cpp - The CakeML basis FFI model -----------------------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "ffi/BasisFfi.h"

#include <algorithm>
#include <cassert>

using namespace silver;
using namespace silver::ffi;

Filesystem Filesystem::withStdin(std::string Input) {
  Filesystem Fs;
  Fs.StdinData = std::move(Input);
  return Fs;
}

uint64_t Filesystem::openIn(const std::string &Name) {
  auto It = Files.find(Name);
  if (It == Files.end())
    return 0;
  OpenFile F;
  F.Name = Name;
  F.Writable = false;
  uint64_t Fd = NextFd++;
  OpenFds.emplace(Fd, std::move(F));
  return Fd;
}

uint64_t Filesystem::openOut(const std::string &Name) {
  Files[Name].clear();
  OpenFile F;
  F.Name = Name;
  F.Writable = true;
  uint64_t Fd = NextFd++;
  OpenFds.emplace(Fd, std::move(F));
  return Fd;
}

bool Filesystem::close(uint64_t Fd) { return OpenFds.erase(Fd) != 0; }

bool Filesystem::read(uint64_t Fd, size_t Count, std::string &OutData) {
  OutData.clear();
  if (Fd == StdinFd) {
    size_t Remaining = StdinData.size() - StdinOffset;
    size_t Take = std::min(Count, Remaining);
    OutData = StdinData.substr(StdinOffset, Take);
    StdinOffset += Take;
    return true;
  }
  auto It = OpenFds.find(Fd);
  if (It == OpenFds.end() || It->second.Writable)
    return false;
  const std::string &Contents = Files[It->second.Name];
  size_t Remaining =
      It->second.Offset <= Contents.size()
          ? Contents.size() - It->second.Offset
          : 0;
  size_t Take = std::min(Count, Remaining);
  OutData = Contents.substr(It->second.Offset, Take);
  It->second.Offset += Take;
  return true;
}

bool Filesystem::write(uint64_t Fd, const std::string &Data) {
  if (Fd == StdoutFd) {
    StdoutData += Data;
    return true;
  }
  if (Fd == StderrFd) {
    StderrData += Data;
    return true;
  }
  auto It = OpenFds.find(Fd);
  if (It == OpenFds.end() || !It->second.Writable)
    return false;
  Files[It->second.Name] += Data;
  It->second.Offset += Data.size();
  return true;
}

bool Filesystem::operator==(const Filesystem &O) const {
  return StdinData == O.StdinData && StdinOffset == O.StdinOffset &&
         StdoutData == O.StdoutData && StderrData == O.StderrData &&
         Files == O.Files;
}

uint64_t silver::ffi::bytesToU64(const std::vector<uint8_t> &Bytes) {
  uint64_t Value = 0;
  for (uint8_t B : Bytes)
    Value = (Value << 8) | B;
  return Value;
}

uint16_t silver::ffi::bytesToU16(const uint8_t *Bytes) {
  return static_cast<uint16_t>((Bytes[0] << 8) | Bytes[1]);
}

void silver::ffi::u16ToBytes(uint16_t Value, uint8_t *Bytes) {
  Bytes[0] = static_cast<uint8_t>(Value >> 8);
  Bytes[1] = static_cast<uint8_t>(Value);
}

const std::vector<std::string> &BasisFfi::callNames() {
  static const std::vector<std::string> Names = {
      "read",       "write",   "get_arg_count", "get_arg_length",
      "get_arg",    "open_in", "open_out",      "close",
      "exit"};
  return Names;
}

bool BasisFfi::isKnownCall(const std::string &Name) {
  const auto &Names = callNames();
  return std::find(Names.begin(), Names.end(), Name) != Names.end();
}

FfiResult BasisFfi::call(const std::string &Name,
                         const std::vector<uint8_t> &Conf,
                         const std::vector<uint8_t> &Bytes) {
  if (!Obs)
    return callImpl(Name, Conf, Bytes);
  const std::vector<std::string> &Names = callNames();
  unsigned Index = 0;
  while (Index < Names.size() && Names[Index] != Name)
    ++Index;
  obs::FfiEvent E;
  E.Index = Index;
  E.Entry = true;
  Obs->onFfi(E);
  FfiResult R = callImpl(Name, Conf, Bytes);
  E.Entry = false;
  Obs->onFfi(E);
  return R;
}

FfiResult BasisFfi::callImpl(const std::string &Name,
                             const std::vector<uint8_t> &Conf,
                             const std::vector<uint8_t> &Bytes) {
  FfiResult R;
  R.Bytes = Bytes;

  auto Fail = [&R]() {
    R.Outcome = FfiOutcome::Fail;
    return R;
  };
  auto SetStatus = [&R](uint8_t Status) {
    assert(!R.Bytes.empty());
    R.Bytes[0] = Status;
  };

  if (Name == "read") {
    // Mirrors the paper's ffi_read: needs |conf| = 8 and at least four
    // header bytes; bytes[0..1] request a count no larger than the tail.
    if (Conf.size() != 8 || Bytes.size() < 4)
      return Fail();
    size_t MaxCount = bytesToU16(Bytes.data());
    if (Bytes.size() - 4 < MaxCount) {
      // The monadic assertion fails: ffi_read's `otherwise` branch
      // returns failure in byte 0 with the rest unchanged.
      SetStatus(1);
    } else {
      std::string Data;
      if (!Fs.read(bytesToU64(Conf), MaxCount, Data)) {
        SetStatus(1);
      } else {
        SetStatus(0);
        u16ToBytes(static_cast<uint16_t>(Data.size()), R.Bytes.data() + 1);
        for (size_t I = 0; I != Data.size(); ++I)
          R.Bytes[4 + I] = static_cast<uint8_t>(Data[I]);
      }
    }
  } else if (Name == "write") {
    if (Conf.size() != 8 || Bytes.size() < 4)
      return Fail();
    size_t Count = bytesToU16(Bytes.data());
    size_t Offset = bytesToU16(Bytes.data() + 2);
    if (Offset + Count > Bytes.size() - 4) {
      SetStatus(1);
    } else {
      std::string Data(Bytes.begin() + 4 + Offset,
                       Bytes.begin() + 4 + Offset + Count);
      if (!Fs.write(bytesToU64(Conf), Data)) {
        SetStatus(1);
      } else {
        SetStatus(0);
        u16ToBytes(static_cast<uint16_t>(Count), R.Bytes.data() + 1);
      }
    }
  } else if (Name == "get_arg_count") {
    if (Bytes.size() < 2)
      return Fail();
    u16ToBytes(static_cast<uint16_t>(CommandLine.size()), R.Bytes.data());
  } else if (Name == "get_arg_length") {
    if (Bytes.size() < 2)
      return Fail();
    size_t Index = bytesToU16(Bytes.data());
    if (Index >= CommandLine.size())
      return Fail();
    u16ToBytes(static_cast<uint16_t>(CommandLine[Index].size()),
               R.Bytes.data());
  } else if (Name == "get_arg") {
    if (Bytes.size() < 2)
      return Fail();
    size_t Index = bytesToU16(Bytes.data());
    if (Index >= CommandLine.size())
      return Fail();
    const std::string &Arg = CommandLine[Index];
    if (Bytes.size() < Arg.size())
      return Fail();
    for (size_t I = 0; I != Arg.size(); ++I)
      R.Bytes[I] = static_cast<uint8_t>(Arg[I]);
  } else if (Name == "open_in") {
    if (Bytes.size() < 3)
      return Fail();
    std::string FileName(Conf.begin(), Conf.end());
    uint64_t Fd = Fs.openIn(FileName);
    SetStatus(Fd == 0 ? 1 : 0);
    u16ToBytes(static_cast<uint16_t>(Fd), R.Bytes.data() + 1);
  } else if (Name == "open_out") {
    if (Bytes.size() < 3)
      return Fail();
    std::string FileName(Conf.begin(), Conf.end());
    uint64_t Fd = Fs.openOut(FileName);
    SetStatus(Fd == 0 ? 1 : 0);
    u16ToBytes(static_cast<uint16_t>(Fd), R.Bytes.data() + 1);
  } else if (Name == "close") {
    if (Conf.size() != 8 || Bytes.empty())
      return Fail();
    SetStatus(Fs.close(bytesToU64(Conf)) ? 0 : 1);
  } else if (Name == "exit") {
    if (Bytes.empty())
      return Fail();
    R.Outcome = FfiOutcome::Exit;
    R.ExitCode = Bytes[0];
    return R;
  } else {
    return Fail();
  }

  FfiIoEvent Event;
  Event.Name = Name;
  Event.Conf = Conf;
  Event.Bytes = R.Bytes;
  IoEvents.push_back(std::move(Event));
  return R;
}
