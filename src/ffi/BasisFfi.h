//===- ffi/BasisFfi.h - The CakeML basis FFI model --------------*- C++ -*-===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The basis FFI model (paper §5): a filesystem + command-line state and
/// the oracle function `basis_ffi_oracle` specifying the behaviour of each
/// foreign call the CakeML basis library makes ("read", "write",
/// "get_arg_count", "get_arg_length", "get_arg", "open_in", "open_out",
/// "close", "exit").  Each call receives an immutable configuration array
/// `conf` and a mutable byte array `bytes`; the oracle returns the updated
/// bytes and evolves the filesystem.  This model is the *specification*
/// the hand-written Silver system calls are checked against (§6,
/// theorem (13)) and the oracle the machine-sem layer consults.
///
/// Wire formats (following the paper's ffi_read excerpt):
///  - fds are 8-byte big-endian words in `conf` (the paper's w82n conf);
///  - 16-bit counts are 2-byte big-endian (w22n / n2w2);
///  - `read`:  in: bytes[0..1]=max count, bytes[2],bytes[3] ignored;
///             out on success: bytes[0]=0, bytes[1..2]=count read,
///             bytes[3] unchanged, bytes[4..] = data then unchanged tail;
///             out on failure: bytes[0]=1, rest unchanged.
///  - `write`: in: bytes[0..1]=count, bytes[2..3]=offset into payload,
///             payload = bytes[4..]; out: bytes[0]=0, bytes[1..2]=written
///             (or bytes[0]=1 on failure).
///  - `get_arg_count`: out: bytes[0..1]=argc.
///  - `get_arg_length`: in: bytes[0..1]=index; out: bytes[0..1]=length.
///  - `get_arg`: in: bytes[0..1]=index; out: argument copied to bytes[0..].
///  - `open_in`/`open_out`: filename in conf; out: bytes[0]=status,
///             bytes[1..2]=fd.
///  - `close`: fd in conf; out: bytes[0]=status.
///  - `exit`:  bytes[0]=exit code; terminates the program.
///
//===----------------------------------------------------------------------===//

#ifndef SILVER_FFI_BASISFFI_H
#define SILVER_FFI_BASISFFI_H

#include "obs/Observer.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace silver {
namespace ffi {

/// Standard stream descriptors.
inline constexpr uint64_t StdinFd = 0;
inline constexpr uint64_t StdoutFd = 1;
inline constexpr uint64_t StderrFd = 2;

/// The filesystem model.  The paper's bare-metal instantiation provides
/// only the standard streams (pre-filled stdin, collected stdout/stderr);
/// named files exist in the model so the machine-sem layer can also test
/// the open/close paths that the bare-metal syscalls reject.
class Filesystem {
public:
  /// Creates the paper's `fsin input` state: no files, \p Input on stdin.
  static Filesystem withStdin(std::string Input);

  std::string StdinData;
  size_t StdinOffset = 0;
  std::string StdoutData;
  std::string StderrData;
  std::map<std::string, std::string> Files;

  /// Opens a named file for reading; returns the new fd or 0 on failure.
  uint64_t openIn(const std::string &Name);
  /// Creates/truncates a named file for writing; returns fd or 0.
  uint64_t openOut(const std::string &Name);
  /// Closes a non-stream fd; returns false for unknown or stream fds.
  bool close(uint64_t Fd);

  /// Reads up to \p Count bytes from \p Fd.  Returns false for bad fds;
  /// at end of input it succeeds with an empty result (EOF).
  bool read(uint64_t Fd, size_t Count, std::string &OutData);
  /// Writes \p Data to \p Fd; returns false for bad fds.
  bool write(uint64_t Fd, const std::string &Data);

  bool operator==(const Filesystem &O) const;

private:
  struct OpenFile {
    std::string Name;
    size_t Offset = 0;
    bool Writable = false;
  };
  std::map<uint64_t, OpenFile> OpenFds;
  uint64_t NextFd = 3;
};

/// Outcome of one oracle call (the paper's Oracle_return / Oracle_final).
enum class FfiOutcome : uint8_t {
  Return,  ///< bytes updated, state evolved
  Fail,    ///< FFI_failed: malformed call (never happens for compiled code)
  Exit,    ///< the "exit" call: program terminates with ExitCode
};

struct FfiResult {
  FfiOutcome Outcome = FfiOutcome::Return;
  std::vector<uint8_t> Bytes; ///< updated byte array (Return only)
  uint8_t ExitCode = 0;       ///< Exit only
};

/// One recorded IO event, mirroring CakeML's io_events: the call name,
/// its configuration, and the byte array after the call.
struct FfiIoEvent {
  std::string Name;
  std::vector<uint8_t> Conf;
  std::vector<uint8_t> Bytes;
};

/// The basis_ffi oracle state: command line + filesystem, with the oracle
/// function as a method and the trace of IO events.
class BasisFfi {
public:
  BasisFfi() = default;
  BasisFfi(std::vector<std::string> CommandLine, Filesystem Fs)
      : CommandLine(std::move(CommandLine)), Fs(std::move(Fs)) {}

  std::vector<std::string> CommandLine;
  Filesystem Fs;
  std::vector<FfiIoEvent> IoEvents;

  /// The oracle: dispatches on \p Name, evolves the state, records the
  /// IO event, and returns the updated bytes (paper's call_FFI wrapper
  /// around basis_ffi_oracle).
  FfiResult call(const std::string &Name, const std::vector<uint8_t> &Conf,
                 const std::vector<uint8_t> &Bytes);

  /// Emits an obs::FfiEvent entry/exit pair around every oracle call (the
  /// machine level's FFI calls are instantaneous: the oracle replaces the
  /// system-call code).  Null detaches; not owned.
  void attachObserver(obs::Observer *O) { Obs = O; }

  /// All bytes written to stdout so far (the paper's get_stdout io).
  const std::string &getStdout() const { return Fs.StdoutData; }
  const std::string &getStderr() const { return Fs.StderrData; }

  /// True when \p Name is one of the recognised basis calls.
  static bool isKnownCall(const std::string &Name);

  /// The FFI names in their canonical index order (the syscall table
  /// order used by the Silver memory image).
  static const std::vector<std::string> &callNames();

private:
  FfiResult callImpl(const std::string &Name,
                     const std::vector<uint8_t> &Conf,
                     const std::vector<uint8_t> &Bytes);

  obs::Observer *Obs = nullptr;
};

// Big-endian helpers shared with the syscall implementation tests.
uint64_t bytesToU64(const std::vector<uint8_t> &Bytes);
uint16_t bytesToU16(const uint8_t *Bytes);
void u16ToBytes(uint16_t Value, uint8_t *Bytes);

} // namespace ffi
} // namespace silver

#endif // SILVER_FFI_BASISFFI_H
