//===- examples/proof_checker.cpp - A proof checker on Silver ------------------===//
//
// The paper runs an OpenTheory proof checker on the verified processor;
// this example runs the reproduction's Hilbert-style propositional
// checker on the Silver ISA, checking a valid derivation of p -> p and a
// bogus axiom instance.
//
//===----------------------------------------------------------------------===//

#include "stack/Apps.h"
#include "stack/Executor.h"

#include <cstdio>

using namespace silver;

int main() {
  // The checker compiles once; each proof re-runs the same machine code
  // with different pre-filled stdin.
  stack::RunSpec Spec;
  Spec.Source = stack::proofCheckerSource();
  Result<stack::Prepared> P = stack::prepare(Spec);
  if (!P) {
    std::fprintf(stderr, "compile: %s\n", P.error().str().c_str());
    return 1;
  }

  for (const std::string &Proof :
       {stack::sampleValidProof(), stack::sampleInvalidProof()}) {
    Spec.StdinData = Proof;
    stack::Prepared ForProof = *P;
    ForProof.Image.StdinData = Proof;
    stack::Executor Exec =
        stack::Executor::fromPrepared(Spec, std::move(ForProof));
    Result<stack::Outcome> R = Exec.run(stack::Level::Isa);
    if (!R) {
      std::fprintf(stderr, "error: %s\n", R.error().str().c_str());
      return 1;
    }
    const stack::Observed &O = R->Behaviour;
    std::string Expected = stack::proofSpec(Proof);
    std::printf("proof:\n%schecker: %sspec:    %s%s\n\n", Proof.c_str(),
                O.StdoutData.c_str(), Expected.c_str(),
                O.StdoutData == Expected ? "(agree)" : "(MISMATCH)");
    if (O.StdoutData != Expected)
      return 1;
  }
  return 0;
}
