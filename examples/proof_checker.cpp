//===- examples/proof_checker.cpp - A proof checker on Silver ------------------===//
//
// The paper runs an OpenTheory proof checker on the verified processor;
// this example runs the reproduction's Hilbert-style propositional
// checker on the Silver ISA, checking a valid derivation of p -> p and a
// bogus axiom instance.
//
//===----------------------------------------------------------------------===//

#include "stack/Apps.h"
#include "stack/Stack.h"

#include <cstdio>

using namespace silver;

int main() {
  for (const std::string &Proof :
       {stack::sampleValidProof(), stack::sampleInvalidProof()}) {
    stack::RunSpec Spec;
    Spec.Source = stack::proofCheckerSource();
    Spec.StdinData = Proof;
    Result<stack::Observed> R = stack::run(Spec, stack::Level::Isa);
    if (!R) {
      std::fprintf(stderr, "error: %s\n", R.error().str().c_str());
      return 1;
    }
    std::string Expected = stack::proofSpec(Proof);
    std::printf("proof:\n%schecker: %sspec:    %s%s\n\n", Proof.c_str(),
                R->StdoutData.c_str(), Expected.c_str(),
                R->StdoutData == Expected ? "(agree)" : "(MISMATCH)");
    if (R->StdoutData != Expected)
      return 1;
  }
  return 0;
}
