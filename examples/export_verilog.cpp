//===- examples/export_verilog.cpp - Print the synthesisable Silver core -------===//
//
// Builds the Silver core at the circuit level, runs the code generator to
// the deeply embedded Verilog AST, type-checks it (the vars_has_type
// obligation), and pretty-prints the synthesisable SystemVerilog — the
// artefact the paper feeds to Vivado for the PYNQ-Z1 board.  Writes
// silver_cpu.sv to the current directory and prints a summary.
//
//===----------------------------------------------------------------------===//

#include "analysis/VerilogLint.h"
#include "cpu/Core.h"
#include "hdl/Printer.h"
#include "hdl/Semantics.h"
#include "rtl/ToVerilog.h"

#include <cstdio>
#include <fstream>

using namespace silver;

int main() {
  cpu::SilverCore Core = cpu::buildSilverCore();
  if (Result<void> V = Core.Circuit.validate(); !V) {
    std::fprintf(stderr, "circuit invalid: %s\n", V.error().str().c_str());
    return 1;
  }
  Result<hdl::VModule> Module = rtl::toVerilog(Core.Circuit);
  if (!Module) {
    std::fprintf(stderr, "codegen failed: %s\n",
                 Module.error().str().c_str());
    return 1;
  }
  if (Result<void> T = hdl::typeCheck(*Module); !T) {
    std::fprintf(stderr, "vars_has_type failed: %s\n",
                 T.error().str().c_str());
    return 1;
  }
  std::vector<analysis::LintDiag> Diags = analysis::lintModule(*Module);
  if (!Diags.empty()) {
    for (const analysis::LintDiag &D : Diags)
      std::fprintf(stderr, "lint: %s\n", analysis::formatDiag(D).c_str());
    return 1;
  }
  std::string Text = hdl::printModule(*Module);
  std::ofstream Out("silver_cpu.sv");
  Out << Text;
  Out.close();

  std::printf("circuit: %zu nodes, %zu registers, %zu memories\n",
              Core.Circuit.Nodes.size(), Core.Circuit.Regs.size(),
              Core.Circuit.Mems.size());
  std::printf("module:  %zu declarations, %zu processes, lint clean, "
              "%zu bytes of SystemVerilog -> silver_cpu.sv\n",
              Module->Decls.size(), Module->Processes.size(), Text.size());
  // Show the first lines as a taste.
  size_t Shown = 0, Lines = 0;
  while (Shown < Text.size() && Lines < 12) {
    size_t End = Text.find('\n', Shown);
    std::printf("| %.*s\n", int(End - Shown), Text.c_str() + Shown);
    Shown = End + 1;
    ++Lines;
  }
  return 0;
}
