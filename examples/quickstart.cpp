//===- examples/quickstart.cpp - Hello, verified stack ------------------------===//
//
// Compiles a MiniCake program with the SilverStack compiler and runs it
// at every level of the paper's Figure 1: the reference semantics, the
// machine semantics with the FFI oracle, the Silver ISA with the real
// system-call code, the circuit-level Silver core, and the generated
// Verilog under the Verilog operational semantics.
//
//===----------------------------------------------------------------------===//

#include "stack/Stack.h"

#include <cstdio>

using namespace silver;

int main() {
  stack::RunSpec Spec;
  Spec.Source = R"(
    val _ = print "Hello from MiniCake on Silver!\n"
    fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2);
    val _ = print_line (int_to_string (fib 12))
  )";
  Spec.MaxSteps = 50'000'000;

  for (stack::Level L :
       {stack::Level::Spec, stack::Level::Machine, stack::Level::Isa,
        stack::Level::Rtl, stack::Level::Verilog}) {
    Result<stack::Observed> R = stack::run(Spec, L);
    if (!R) {
      std::fprintf(stderr, "%s: error: %s\n", stack::levelName(L),
                   R.error().str().c_str());
      return 1;
    }
    std::printf("[%-11s] exit=%d instructions=%llu cycles=%llu\n%s",
                stack::levelName(L), R->ExitCode,
                (unsigned long long)R->Instructions,
                (unsigned long long)R->Cycles, R->StdoutData.c_str());
  }

  // And the single end-to-end check, theorem (8) style.
  Result<std::vector<stack::Observed>> E2E = stack::checkEndToEnd(
      Spec, {stack::Level::Machine, stack::Level::Isa, stack::Level::Rtl,
             stack::Level::Verilog});
  std::printf("end-to-end agreement: %s\n",
              E2E ? "OK" : E2E.error().str().c_str());
  return E2E ? 0 : 1;
}
