//===- examples/quickstart.cpp - Hello, verified stack ------------------------===//
//
// Compiles a MiniCake program with the SilverStack compiler and runs it
// at every level of the paper's Figure 1: the reference semantics, the
// machine semantics with the FFI oracle, the Silver ISA with the real
// system-call code, the circuit-level Silver core, and the generated
// Verilog under the Verilog operational semantics.
//
// The program is compiled once into a stack::Executor, each level runs
// with an obs::Counters observer attached, and the per-level CPI comes
// straight from the unified event stream.
//
//===----------------------------------------------------------------------===//

#include "obs/Counters.h"
#include "stack/Executor.h"

#include <cstdio>

using namespace silver;

int main() {
  stack::RunSpec Spec;
  Spec.Source = R"(
    val _ = print "Hello from MiniCake on Silver!\n"
    fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2);
    val _ = print_line (int_to_string (fib 12))
  )";
  Spec.Exec.MaxSteps = 50'000'000;

  Result<stack::Executor> ExecOr = stack::Executor::create(Spec);
  if (!ExecOr) {
    std::fprintf(stderr, "error: %s\n", ExecOr.error().str().c_str());
    return 1;
  }
  stack::Executor Exec = ExecOr.take();
  Result<obs::RegionMap> Map = Exec.regionMap();
  if (!Map) {
    std::fprintf(stderr, "error: %s\n", Map.error().str().c_str());
    return 1;
  }

  for (stack::Level L :
       {stack::Level::Spec, stack::Level::Machine, stack::Level::Isa,
        stack::Level::Rtl, stack::Level::Verilog}) {
    obs::Counters Counters(*Map, stack::Executor::ffiNames());
    Exec.attach(&Counters);
    Result<stack::Outcome> R = Exec.run(L);
    if (!R) {
      std::fprintf(stderr, "%s: error: %s\n", stack::levelName(L),
                   R.error().str().c_str());
      return 1;
    }
    const stack::Observed &O = R->Behaviour;
    std::printf("[%-11s] %s exit=%d instructions=%llu cycles=%llu "
                "cpi=%.2f\n%s",
                stack::levelName(L), stack::runStatusName(R->Status),
                O.ExitCode, (unsigned long long)O.Instructions,
                (unsigned long long)O.Cycles, Counters.cpi(),
                O.StdoutData.c_str());
  }
  Exec.attach(nullptr);

  // And the single end-to-end check, theorem (8) style.
  Result<std::vector<stack::Observed>> E2E = stack::checkEndToEnd(
      Spec, {stack::Level::Machine, stack::Level::Isa, stack::Level::Rtl,
             stack::Level::Verilog});
  std::printf("end-to-end agreement: %s\n",
              E2E ? "OK" : E2E.error().str().c_str());
  return E2E ? 0 : 1;
}
