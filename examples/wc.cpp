//===- examples/wc.cpp - The paper's word-count application --------------------===//
//
// Runs wc (the paper's running example, §2) on generated input and checks
// the hardware-level output against wc_spec, i.e. theorem (8) as an
// executable statement: the circuit's stdout equals the specification of
// the word count of the pre-filled standard input.
//
//===----------------------------------------------------------------------===//

#include "stack/Apps.h"
#include "stack/Stack.h"

#include <cstdio>

using namespace silver;

int main() {
  std::string Input = stack::randomLines(/*LineCount=*/40, /*Seed=*/42);

  stack::RunSpec Spec;
  Spec.Source = stack::wcSource();
  Spec.CommandLine = {"wc"};
  Spec.StdinData = Input;

  std::string Expected = stack::wcSpec(Input);
  std::printf("wc_spec input = %s", Expected.c_str());

  for (stack::Level L : {stack::Level::Isa, stack::Level::Rtl}) {
    Result<stack::Observed> R = stack::run(Spec, L);
    if (!R) {
      std::fprintf(stderr, "%s: %s\n", stack::levelName(L),
                   R.error().str().c_str());
      return 1;
    }
    bool Match = R->StdoutData == Expected && R->ExitCode == 0;
    std::string CycleNote =
        R->Cycles ? ", " + std::to_string(R->Cycles) + " cycles" : "";
    std::printf("[%-3s] stdout = %s  (%s; %llu instructions%s)\n",
                stack::levelName(L), R->StdoutData.substr(0, 16).c_str(),
                Match ? "matches wc_spec" : "MISMATCH",
                (unsigned long long)R->Instructions, CycleNote.c_str());
    if (!Match)
      return 1;
  }
  return 0;
}
