//===- examples/wc.cpp - The paper's word-count application --------------------===//
//
// Runs wc (the paper's running example, §2) on generated input and checks
// the hardware-level output against wc_spec, i.e. theorem (8) as an
// executable statement: the circuit's stdout equals the specification of
// the word count of the pre-filled standard input.
//
//===----------------------------------------------------------------------===//

#include "stack/Apps.h"
#include "stack/Executor.h"

#include <cstdio>

using namespace silver;

int main() {
  std::string Input = stack::randomLines(/*LineCount=*/40, /*Seed=*/42);

  stack::RunSpec Spec;
  Spec.Source = stack::wcSource();
  Spec.CommandLine = {"wc"};
  Spec.StdinData = Input;

  std::string Expected = stack::wcSpec(Input);
  std::printf("wc_spec input = %s", Expected.c_str());

  // One Executor: wc compiles once, runs at both levels.
  Result<stack::Executor> ExecOr = stack::Executor::create(Spec);
  if (!ExecOr) {
    std::fprintf(stderr, "compile: %s\n", ExecOr.error().str().c_str());
    return 1;
  }
  stack::Executor Exec = ExecOr.take();

  for (stack::Level L : {stack::Level::Isa, stack::Level::Rtl}) {
    Result<stack::Outcome> R = Exec.run(L);
    if (!R) {
      std::fprintf(stderr, "%s: %s\n", stack::levelName(L),
                   R.error().str().c_str());
      return 1;
    }
    const stack::Observed &O = R->Behaviour;
    bool Match = O.StdoutData == Expected && O.ExitCode == 0;
    std::string CycleNote =
        O.Cycles ? ", " + std::to_string(O.Cycles) + " cycles" : "";
    std::printf("[%-3s] stdout = %s  (%s; %llu instructions%s)\n",
                stack::levelName(L), O.StdoutData.substr(0, 16).c_str(),
                Match ? "matches wc_spec" : "MISMATCH",
                (unsigned long long)O.Instructions, CycleNote.c_str());
    if (!Match)
      return 1;
  }
  return 0;
}
