//===- examples/silver_fuzz.cpp - Differential conformance fuzzer CLI -------===//
//
// Part of SilverStack, a C++ reproduction of "Verified Compilation on a
// Verified Processor" (PLDI 2019).
//
// silver-fuzz generates random well-formed Silver programs, runs each
// one at several Figure-1 levels (machine_sem's interference oracle,
// the ISA interpreter with real system calls, the circuit-level core,
// and optionally the generated Verilog), and reports any divergence as
// a minimized reproducer.  Exit code 0 = all levels agreed on every
// case, 1 = divergences found, 2 = usage or internal error.
//
//   silver-fuzz --seed=7 --max-cases=500 --jobs=4
//   silver-fuzz --levels=isa,rtl,verilog --shrink=0
//   silver-fuzz --corpus=tests/fuzz/corpus            # replay, then fuzz
//   silver-fuzz --time-budget=60 --corpus-out=findings/
//
//===----------------------------------------------------------------------===//

#include "fuzz/Containment.h"
#include "fuzz/Fuzzer.h"
#include "stack/Stack.h"

#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

using namespace silver;

namespace {

/// Formats N/Seconds with an SI suffix: "12.4M", "310.5k", "87.0".
std::string rate(uint64_t N, double Seconds) {
  double R = static_cast<double>(N) / Seconds;
  const char *Suffix = "";
  if (R >= 1e9) {
    R /= 1e9;
    Suffix = "G";
  } else if (R >= 1e6) {
    R /= 1e6;
    Suffix = "M";
  } else if (R >= 1e3) {
    R /= 1e3;
    Suffix = "k";
  }
  std::ostringstream Out;
  Out << std::fixed << std::setprecision(1) << R << Suffix;
  return Out.str();
}

int usage(const char *Argv0) {
  std::cerr
      << "usage: " << Argv0 << " [options]\n"
      << "  --seed=N          campaign seed (default 1)\n"
      << "  --jobs=N          worker threads (default: hardware threads)\n"
      << "  --max-cases=N     cases to generate (default 256)\n"
      << "  --time-budget=S   stop after S seconds (best-effort prefix)\n"
      << "  --levels=a,b,..   levels to compare against the ISA reference\n"
      << "                    (machine, isa, rtl, verilog; default\n"
      << "                    machine,rtl).  The token \"compiled\" adds\n"
      << "                    the Compiled-vs-Verilog differential level:\n"
      << "                    the generated Verilog stepped by the compiled\n"
      << "                    simulator (hdl/compile), compared exactly\n"
      << "                    against the AST interpreter\n"
      << "  --backend=B       interp (default) or jit: jit additionally\n"
      << "                    runs every case at the ISA level on the JIT\n"
      << "                    backend and compares it exactly against the\n"
      << "                    interpreter (the Jit-vs-Isa level)\n"
      << "  --profiles=a,b,.. program shapes (alu, branchy, loadstore,\n"
      << "                    ffi, mixed; default all)\n"
      << "  --max-steps=N     ISA instruction budget per case\n"
      << "  --shrink=0|1      minimize findings (default 1)\n"
      << "  --corpus=DIR      replay DIR/*.s as regression tests first;\n"
      << "                    replay failures fail the run\n"
      << "  --corpus-out=DIR  write minimized reproducers to DIR\n"
      << "  --containment=DIR check DIR/*.s against the symbolic block\n"
      << "                    summaries (analysis/BlockSummary.h) instead\n"
      << "                    of fuzzing; violations fail the run\n";
  return 2;
}

bool parseLevels(const std::string &Arg, std::vector<stack::Level> &Out,
                 bool &Jit, bool &Compiled) {
  Out.clear();
  std::istringstream In(Arg);
  std::string Name;
  while (std::getline(In, Name, ',')) {
    if (Name == "machine")
      Out.push_back(stack::Level::Machine);
    else if (Name == "isa")
      Out.push_back(stack::Level::Isa); // the reference; listing is harmless
    else if (Name == "rtl")
      Out.push_back(stack::Level::Rtl);
    else if (Name == "verilog")
      Out.push_back(stack::Level::Verilog);
    else if (Name == "compiled")
      Compiled = true; // Compiled-vs-Verilog; the oracle adds verilog itself
    else if (Name == "jit")
      Jit = true; // deprecated spelling of --backend=jit; the caller warns
    else
      return false;
  }
  return !Out.empty() || Jit || Compiled;
}

bool parseProfiles(const std::string &Arg, std::vector<fuzz::Profile> &Out) {
  Out.clear();
  std::istringstream In(Arg);
  std::string Name;
  while (std::getline(In, Name, ',')) {
    fuzz::Profile P;
    if (!fuzz::parseProfile(Name, P))
      return false;
    Out.push_back(P);
  }
  return !Out.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  fuzz::FuzzOptions Opt;
  Opt.Jobs = std::max(1u, std::thread::hardware_concurrency());
  Opt.Log = &std::cout;
  std::string ReplayDir;
  std::string ContainmentDir;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) == 0)
        return Arg.c_str() + Len;
      return nullptr;
    };
    try {
      if (const char *V = Value("--seed="))
        Opt.Seed = std::stoull(V, nullptr, 0);
      else if (const char *V = Value("--jobs="))
        Opt.Jobs = static_cast<unsigned>(std::stoul(V));
      else if (const char *V = Value("--max-cases="))
        Opt.MaxCases = std::stoull(V);
      else if (const char *V = Value("--time-budget="))
        Opt.TimeBudgetSeconds = std::stod(V);
      else if (const char *V = Value("--max-steps="))
        Opt.Oracle.MaxSteps = std::stoull(V);
      else if (const char *V = Value("--levels=")) {
        bool Jit = false;
        bool Compiled = false;
        if (!parseLevels(V, Opt.Oracle.Levels, Jit, Compiled))
          return usage(Argv[0]);
        Opt.Oracle.CompareCompiled = Compiled;
        if (Jit) {
          std::cerr << "silver-fuzz: warning: --levels=...,jit is "
                       "deprecated; use --backend=jit\n";
          Opt.Oracle.CompareJit = true;
        }
      } else if (const char *V = Value("--backend=")) {
        stack::BackendKind B;
        if (!stack::parseBackendKind(V, B))
          return usage(Argv[0]);
        Opt.Oracle.CompareJit = B == stack::BackendKind::Jit;
      } else if (const char *V = Value("--profiles=")) {
        if (!parseProfiles(V, Opt.Profiles))
          return usage(Argv[0]);
      } else if (const char *V = Value("--shrink="))
        Opt.Shrink = std::string(V) != "0";
      else if (const char *V = Value("--corpus="))
        ReplayDir = V;
      else if (const char *V = Value("--containment="))
        ContainmentDir = V;
      else if (const char *V = Value("--corpus-out="))
        Opt.CorpusDir = V;
      else
        return usage(Argv[0]);
    } catch (...) {
      return usage(Argv[0]);
    }
  }

  if (Opt.Oracle.CompareJit &&
      !stack::backendSupported(stack::BackendKind::Jit))
    std::cerr << "silver-fuzz: warning: the jit backend is not supported on "
                 "this host; the jit level runs on the interpreter\n";

  if (Opt.Oracle.CompareCompiled &&
      !stack::hdlBackendSupported(stack::HdlBackendKind::Compiled))
    std::cerr << "silver-fuzz: warning: the compiled simulator is not "
                 "available on this host (no usable C++ compiler); the "
                 "compiled level runs on the interpreter\n";

  if (!ContainmentDir.empty()) {
    fuzz::CorpusContainment C =
        fuzz::checkCorpusContainment(ContainmentDir, Opt.Oracle.MaxSteps);
    std::cout << "containment: " << C.Cases << " cases, "
              << C.Totals.BlocksChecked << " block executions checked ("
              << C.Totals.CheckedInstrs << " instrs), "
              << C.Totals.BlocksSkipped << " skipped, "
              << C.Totals.EntryMisses << " entry misses, "
              << C.Violations.size() << " violations\n";
    for (const auto &E : C.Errors)
      std::cout << "containment ERROR: " << E.first << ": " << E.second
                << "\n";
    for (const auto &V : C.Violations)
      std::cout << "containment VIOLATION: " << V.first << ": "
                << fuzz::formatViolation(V.second) << "\n";
    if (C.CaseErrors > 0)
      return 2;
    return C.ok() ? 0 : 1;
  }

  bool ReplayFailed = false;
  if (!ReplayDir.empty()) {
    std::vector<fuzz::ReplayFailure> Failures =
        fuzz::replayCorpus(ReplayDir, Opt.Oracle, &std::cout);
    for (const fuzz::ReplayFailure &F : Failures)
      std::cout << "replay FAILED: " << F.Path << ": " << F.Reason << "\n";
    ReplayFailed = !Failures.empty();
  }

  std::cout << "fuzzing: seed=" << Opt.Seed << " cases=" << Opt.MaxCases
            << " jobs=" << Opt.Jobs << "\n";
  fuzz::FuzzReport Report = fuzz::runFuzz(Opt);

  std::cout << "ran " << Report.CasesRun << " cases ("
            << Report.Inconclusive << " inconclusive, " << Report.CaseErrors
            << " errors): " << Report.Findings.size() << " divergences\n";
  if (Report.WallSeconds > 0) {
    std::cout << "throughput: " << std::fixed << std::setprecision(2)
              << Report.WallSeconds << " s, "
              << rate(Report.CasesRun, Report.WallSeconds) << " cases/s\n";
    for (const fuzz::LevelWork &W : Report.Work) {
      std::cout << "  "
                << (W.Compiled ? "verilog-compiled"
                    : W.Jit    ? "jit"
                               : stack::levelName(W.L))
                << ": "
                << W.Instructions
                << " instrs (" << rate(W.Instructions, Report.WallSeconds)
                << " instrs/s)";
      if (W.Cycles != 0)
        std::cout << ", " << W.Cycles << " cycles ("
                  << rate(W.Cycles, Report.WallSeconds) << " cycles/s)";
      std::cout << "\n";
    }
  }
  for (const fuzz::Finding &F : Report.Findings) {
    std::cout << "--- case " << F.Case.Index << " ("
              << fuzz::profileName(F.Case.P) << "), shrunk from "
              << F.Case.Items.size() << " to " << F.Shrunk.Items.size()
              << " items in " << F.ShrinkAttempts << " attempts\n"
              << fuzz::serializeCase(F.Shrunk, &F.ShrunkDiff);
  }
  if (!Opt.CorpusDir.empty() && !Report.Findings.empty())
    std::cout << "reproducers written to " << Opt.CorpusDir << "\n";

  if (Report.CaseErrors > 0)
    return 2;
  return (!Report.Findings.empty() || ReplayFailed) ? 1 : 0;
}
