//===- examples/bootstrap.cpp - A compiler on the verified processor -----------===//
//
// The paper's headline experiment (§7): the CakeML compiler itself runs
// on Silver — compiling hello-world takes 2-3 seconds natively and about
// four hours on the FPGA.  The reproduction's counterpart: the Tin
// compiler, written in MiniCake, is compiled by the SilverStack compiler
// and executed on the Silver ISA simulator, compiling a Tin program; the
// same compilation also runs natively.  The output must agree with
// tin_spec, and the instruction counts exhibit the paper's orders-of-
// magnitude slowdown shape.
//
//===----------------------------------------------------------------------===//

#include "stack/Apps.h"
#include "stack/Executor.h"

#include <chrono>
#include <cstdio>

using namespace silver;

int main() {
  std::string TinProgram = stack::sampleTinProgram(20);
  std::string Expected = stack::tinSpec(TinProgram);

  stack::RunSpec Spec;
  Spec.Source = stack::tinCompilerSource();
  Spec.StdinData = TinProgram;
  Spec.Exec.MaxSteps = 500'000'000;

  // Native path: the Tin compiler as a C++ function (tin_spec itself).
  auto T0 = std::chrono::steady_clock::now();
  std::string Native = stack::tinSpec(TinProgram);
  auto T1 = std::chrono::steady_clock::now();

  // On-Silver path (compile + run, like the native measurement).
  Result<stack::Executor> Exec = stack::Executor::create(Spec);
  if (!Exec) {
    std::fprintf(stderr, "error: %s\n", Exec.error().str().c_str());
    return 1;
  }
  Result<stack::Outcome> Out = Exec->run(stack::Level::Isa);
  auto T2 = std::chrono::steady_clock::now();
  if (!Out) {
    std::fprintf(stderr, "error: %s\n", Out.error().str().c_str());
    return 1;
  }
  const stack::Observed &OnSilver = Out->Behaviour;

  double NativeUs =
      std::chrono::duration<double, std::micro>(T1 - T0).count();
  double SilverUs =
      std::chrono::duration<double, std::micro>(T2 - T1).count();

  std::printf("Tin source (%zu bytes) compiles to %zu bytes of assembly\n",
              TinProgram.size(), Expected.size());
  std::printf("native:    %.1f us\n", NativeUs);
  std::printf("on Silver: %.1f us simulated-ISA time, %llu instructions\n",
              SilverUs, (unsigned long long)OnSilver.Instructions);
  std::printf("slowdown factor (wall clock): %.0fx\n",
              SilverUs / (NativeUs > 0 ? NativeUs : 1));
  bool Agree = OnSilver.StdoutData == Expected && Native == Expected;
  std::printf("outputs agree with tin_spec: %s\n", Agree ? "yes" : "NO");
  return Agree ? 0 : 1;
}
