//===- examples/silverc.cpp - the SilverStack compiler driver ------------------===//
//
// A command-line front end for the whole stack:
//
//   silverc prog.cml                      compile + run on the Silver ISA
//   silverc --level=rtl prog.cml          ... on the cycle-accurate core
//   silverc --level=verilog prog.cml      ... on the generated Verilog
//   silverc --level=spec prog.cml         ... in the reference semantics
//   silverc --backend=jit prog.cml        ... with the baseline JIT stepping
//                                         the ISA (degrades to the
//                                         interpreter where unsupported)
//   silverc --check prog.cml              run every level and compare
//   silverc --analyze prog.cml            static installed-image audit plus
//                                         block summaries and JIT readiness
//                                         (--json: machine-readable report)
//   silverc --builtin=hello ...           use a built-in app (hello, cat,
//                                         wc, sort, proof, tin) as FILE
//   silverc --emit=asm prog.cml           disassembled machine code
//   silverc --emit=flat prog.cml          the Flat IR after optimisation
//   silverc -O0 ... / -O1 ...             optimisation level (default -O1)
//   silverc --stdin-file=f --args="a b"   program world
//   silverc --trace=FILE prog.cml         write a Chrome trace_event file
//                                         (load in chrome://tracing)
//   silverc --trace-jsonl=FILE prog.cml   ... as JSONL (one event per line)
//   silverc --counters prog.cml           print performance counters
//   silverc --json prog.cml               machine-readable outcome on stdout
//                                         (same shape as silver-client --json)
//
// Reads the program from the named file, or from stdin when the file is
// "-".  Exit code: the program's exit code (run modes), or 1 on errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostic.h"
#include "analysis/ImageAudit.h"
#include "analysis/JitReadiness.h"
#include "asm/Disassembler.h"
#include "cml/CodeGen.h"
#include "cml/Flat.h"
#include "cml/Infer.h"
#include "cml/Lower.h"
#include "cml/Parser.h"
#include "obs/Counters.h"
#include "obs/TraceSink.h"
#include "stack/Apps.h"
#include "stack/Executor.h"
#include "stack/Stack.h"
#include "support/StringUtils.h"
#include "svc/Job.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace silver;

namespace {

std::string readAll(std::istream &In) {
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

int fail(const std::string &Message) {
  std::fprintf(stderr, "silverc: error: %s\n", Message.c_str());
  return 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: silverc [--level=spec|machine|isa|rtl|verilog]\n"
               "               [--backend=interp|jit] [--hdl=interp|compiled]\n"
               "               [--check] [--analyze] [--emit=asm|flat|core]\n"
               "               [-O0|-O1] [--stdin-file=FILE] [--args=\"...\"]\n"
               "               [--trace=FILE] [--trace-jsonl=FILE]\n"
               "               [--counters] [--json] FILE|--builtin=NAME\n");
  return 1;
}

/// Source text of a built-in app (stack/Apps.h), or null.
const char *builtinSource(const std::string &Name) {
  if (Name == "hello")
    return stack::helloSource();
  if (Name == "cat")
    return stack::catSource();
  if (Name == "wc")
    return stack::wcSource();
  if (Name == "sort")
    return stack::sortSource();
  if (Name == "proof")
    return stack::proofCheckerSource();
  if (Name == "tin")
    return stack::tinCompilerSource();
  return nullptr;
}

int emitStage(const std::string &Source, const std::string &What,
              const cml::OptOptions &Opt) {
  Result<cml::Program> Prog =
      cml::parseProgram(cml::withPrelude(Source));
  if (!Prog)
    return fail("parse: " + Prog.error().str());
  if (Result<std::map<std::string, cml::Scheme>> T =
          cml::inferProgram(*Prog);
      !T)
    return fail("type: " + T.error().str());
  Result<cml::CoreProgram> Core = cml::lowerProgram(*Prog);
  if (!Core)
    return fail(Core.error().str());
  cml::optimizeCore(*Core, Opt);
  if (What == "core") {
    std::printf("%s\n", cml::coreToString(*Core->Main).c_str());
    return 0;
  }
  cml::FlatProgram Flat = cml::flattenProgram(std::move(*Core));
  if (What == "flat") {
    std::printf("%s", cml::flatToString(Flat).c_str());
    return 0;
  }
  if (What == "asm") {
    cml::CompileOptions Options;
    Options.Opt = Opt;
    Result<cml::Compiled> Compiled = cml::compileProgram(Source, Options);
    if (!Compiled)
      return fail(Compiled.error().str());
    std::printf("%s",
                assembler::formatListing(
                    assembler::disassemble(Compiled->Program,
                                           Compiled->CodeBase))
                    .c_str());
    return 0;
  }
  return fail("unknown --emit kind '" + What + "'");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Level = "isa";
  std::string Backend;
  std::string Hdl;
  std::string Emit;
  std::string File;
  std::string Builtin;
  std::string StdinFile;
  std::string Args;
  std::string TraceFile;
  std::string TraceJsonlFile;
  bool Check = false;
  bool Analyze = false;
  bool ShowCounters = false;
  bool Json = false;
  cml::OptOptions Opt = cml::OptOptions::all();

  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (startsWith(A, "--level="))
      Level = A.substr(8);
    else if (startsWith(A, "--backend="))
      Backend = A.substr(10);
    else if (startsWith(A, "--hdl="))
      Hdl = A.substr(6);
    else if (startsWith(A, "--emit="))
      Emit = A.substr(7);
    else if (A == "--check")
      Check = true;
    else if (A == "--analyze")
      Analyze = true;
    else if (startsWith(A, "--trace="))
      TraceFile = A.substr(8);
    else if (startsWith(A, "--trace-jsonl="))
      TraceJsonlFile = A.substr(14);
    else if (A == "--counters")
      ShowCounters = true;
    else if (A == "--json")
      Json = true;
    else if (A == "-O0")
      Opt = cml::OptOptions::none();
    else if (A == "-O1")
      Opt = cml::OptOptions::all();
    else if (startsWith(A, "--stdin-file="))
      StdinFile = A.substr(13);
    else if (startsWith(A, "--args="))
      Args = A.substr(7);
    else if (startsWith(A, "--builtin="))
      Builtin = A.substr(10);
    else if (!A.empty() && A[0] == '-' && A != "-")
      return usage();
    else if (File.empty())
      File = A;
    else
      return usage();
  }
  if (File.empty() == Builtin.empty())
    return usage();

  // The one uniform backend spelling across the CLIs; "--level=jit" was
  // never a Figure-1 level, so the old spelling is a deprecated alias.
  if (Level == "jit") {
    std::fprintf(stderr, "silverc: warning: --level=jit is deprecated; use "
                         "--level=isa --backend=jit\n");
    Level = "isa";
    if (Backend.empty())
      Backend = "jit";
  }
  stack::BackendKind ExecBackend = stack::BackendKind::Interp;
  if (!Backend.empty() && !stack::parseBackendKind(Backend, ExecBackend))
    return usage();
  if (ExecBackend == stack::BackendKind::Jit &&
      !stack::backendSupported(ExecBackend))
    std::fprintf(stderr,
                 "silverc: warning: the jit backend is not supported on "
                 "this host; running on the interpreter\n");
  stack::HdlBackendKind HdlBackend = stack::HdlBackendKind::Interp;
  if (!Hdl.empty() && !stack::parseHdlBackendKind(Hdl, HdlBackend))
    return usage();
  if (HdlBackend == stack::HdlBackendKind::Compiled &&
      !stack::hdlBackendSupported(HdlBackend))
    std::fprintf(stderr,
                 "silverc: warning: the compiled simulator is not available "
                 "on this host (no usable C++ compiler); the verilog level "
                 "runs on the interpreter\n");

  std::string Source;
  if (!Builtin.empty()) {
    const char *Text = builtinSource(Builtin);
    if (!Text)
      return fail("unknown builtin '" + Builtin + "'");
    Source = Text;
    File = Builtin;
  } else if (File == "-") {
    Source = readAll(std::cin);
  } else {
    std::ifstream In(File);
    if (!In)
      return fail("cannot open '" + File + "'");
    Source = readAll(In);
  }

  if (!Emit.empty())
    return emitStage(Source, Emit, Opt);

  stack::RunSpec Spec;
  Spec.Source = Source;
  Spec.Compile.Opt = Opt;
  Spec.Exec.Backend = ExecBackend;
  Spec.Exec.Hdl = HdlBackend;
  Spec.CommandLine = {File == "-" ? "prog" : File};
  if (!Args.empty())
    for (const std::string &Arg : splitString(Args, ' '))
      if (!Arg.empty())
        Spec.CommandLine.push_back(Arg);
  if (!StdinFile.empty()) {
    std::ifstream In(StdinFile, std::ios::binary);
    if (!In)
      return fail("cannot open '" + StdinFile + "'");
    Spec.StdinData = readAll(In);
  }

  if (Analyze) {
    Result<stack::Prepared> P = stack::prepare(Spec);
    if (!P)
      return fail(P.error().str());
    Result<analysis::AuditReport> Report = stack::auditPrepared(*P);
    if (!Report)
      return fail(Report.error().str());
    analysis::ImageSummary Summary = analysis::summarizeImage(*Report);
    analysis::JitReadinessReport Readiness = analysis::jitReadiness(Summary);

    std::vector<analysis::Diagnostic> Diags =
        analysis::toDiagnostics(Report->Diags);
    for (analysis::Diagnostic &D : analysis::readinessDiagnostics(Summary))
      Diags.push_back(std::move(D));
    // Cross-check the static classification against the JIT's actual
    // block scan: a Translatable block the JIT still refuses becomes a
    // "jit-bailout" note (and lands in the committed gate reports).
    Result<sys::MemoryImage> Image = sys::buildImage(P->Image);
    if (!Image)
      return fail(Image.error().str());
    for (analysis::Diagnostic &D : analysis::jitBailoutDiagnostics(
             Summary, sys::initialState(*Image)))
      Diags.push_back(std::move(D));

    if (Json) {
      std::printf("{\n\"diagnostics\": %s,\n\"jit_readiness\": %s\n}\n",
                  analysis::diagnosticsJson(Diags).c_str(),
                  analysis::toJson(Readiness).c_str());
      return Report->ok() ? 0 : 1;
    }
    for (const analysis::Diagnostic &D : Diags)
      std::printf("%s\n", analysis::formatDiagnostic(D).c_str());
    std::fprintf(stderr,
                 "silverc: image audit: %zu diagnostic(s), %zu resolved "
                 "computed jumps; jit readiness: %zu/%zu blocks "
                 "translatable\n",
                 Report->Diags.size(),
                 Report->Startup.Resolved.size() +
                     Report->Syscall.Resolved.size() +
                     Report->Program.Resolved.size(),
                 Readiness.totalTranslatable(), Readiness.totalBlocks());
    return Report->ok() ? 0 : 1;
  }

  if (Check) {
    Result<std::vector<stack::Observed>> R = stack::checkEndToEnd(
        Spec, {stack::Level::Machine, stack::Level::Isa, stack::Level::Rtl,
               stack::Level::Verilog});
    if (!R)
      return fail(R.error().str());
    std::fprintf(stderr, "silverc: all levels agree\n");
    std::fwrite(R->back().StdoutData.data(), 1,
                R->back().StdoutData.size(), stdout);
    return R->back().ExitCode;
  }

  stack::Level L;
  if (Level == "spec")
    L = stack::Level::Spec;
  else if (Level == "machine")
    L = stack::Level::Machine;
  else if (Level == "isa")
    L = stack::Level::Isa;
  else if (Level == "rtl")
    L = stack::Level::Rtl;
  else if (Level == "verilog")
    L = stack::Level::Verilog;
  else
    return usage();

  bool WantObs = !TraceFile.empty() || !TraceJsonlFile.empty() || ShowCounters;
  if (!WantObs && L == stack::Level::Spec) {
    // The reference interpreter needs no compilation.
    Result<stack::Observed> R = stack::runSpecLevel(Spec);
    if (!R)
      return fail(R.error().str());
    if (Json) {
      std::printf("%s\n",
                  svc::outcomeJson(R->Terminated ? "completed" : "timeout",
                                   Level, *R)
                      .c_str());
      return R->Terminated ? R->ExitCode : 1;
    }
    std::fwrite(R->StdoutData.data(), 1, R->StdoutData.size(), stdout);
    std::fwrite(R->StderrData.data(), 1, R->StderrData.size(), stderr);
    std::fprintf(stderr, "silverc: [spec] %llu instructions, exit %d\n",
                 (unsigned long long)R->Instructions, R->ExitCode);
    return R->ExitCode;
  }

  Result<stack::Executor> ExecOr = stack::Executor::create(Spec);
  if (!ExecOr)
    return fail(ExecOr.error().str());
  stack::Executor Exec = ExecOr.take();

  obs::TraceSink Trace;
  Result<obs::RegionMap> Map = Exec.regionMap();
  if (!Map)
    return fail(Map.error().str());
  obs::Counters Counters(Map.take(), stack::Executor::ffiNames());
  obs::MultiObserver Multi;
  if (WantObs) {
    Trace.setFfiNames(stack::Executor::ffiNames());
    if (!TraceFile.empty() || !TraceJsonlFile.empty())
      Multi.add(&Trace);
    if (ShowCounters)
      Multi.add(&Counters);
    Exec.attach(&Multi);
  }

  Result<stack::Outcome> Out = Exec.run(L);
  if (!Out)
    return fail(Out.error().str());
  const stack::Observed &R = Out->Behaviour;

  auto WriteTraces = [&] {
    if (!TraceFile.empty()) {
      std::ofstream F(TraceFile, std::ios::binary);
      if (!F)
        return fail("cannot write '" + TraceFile + "'");
      Trace.writeChromeTrace(F);
      std::fprintf(stderr,
                   "silverc: wrote %zu trace events to %s (open in "
                   "chrome://tracing)\n",
                   Trace.size(), TraceFile.c_str());
    }
    if (!TraceJsonlFile.empty()) {
      std::ofstream F(TraceJsonlFile, std::ios::binary);
      if (!F)
        return fail("cannot write '" + TraceJsonlFile + "'");
      Trace.writeJsonl(F);
      std::fprintf(stderr, "silverc: wrote %zu trace events to %s\n",
                   Trace.size(), TraceJsonlFile.c_str());
    }
    return 0;
  };

  if (int E = WriteTraces())
    return E;
  if (ShowCounters)
    std::fputs(Counters.report().c_str(), stderr);

  if (Json) {
    // The one outcome shape shared with silver-client --json, so the
    // service smoke test parses both with the same code.
    const char *Status =
        Out->Status == stack::RunStatus::Completed ? "completed" : "timeout";
    std::printf("%s\n", svc::outcomeJson(Status, Level, R).c_str());
    return R.Terminated ? R.ExitCode : 1;
  }

  if (!R.Terminated)
    return fail("program did not terminate within the step budget");
  std::fwrite(R.StdoutData.data(), 1, R.StdoutData.size(), stdout);
  std::fwrite(R.StderrData.data(), 1, R.StderrData.size(), stderr);
  std::fprintf(stderr, "silverc: [%s] %llu instructions", Level.c_str(),
               (unsigned long long)R.Instructions);
  if (R.Cycles)
    std::fprintf(stderr, ", %llu cycles", (unsigned long long)R.Cycles);
  std::fprintf(stderr, ", exit %d\n", R.ExitCode);
  return R.ExitCode;
}
