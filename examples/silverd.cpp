//===- examples/silverd.cpp - the SilverStack batch execution daemon ----------===//
//
// Serves compile-and-run jobs over a Unix-domain socket (TCP on loopback
// behind --tcp):
//
//   silverd --socket=/tmp/silverd.sock                serve until SIGTERM
//   silverd --socket=S --workers=8 --queue-depth=128  sizing
//   silverd --tcp --port=0                            TCP; prints the port
//   silverd --instrument                              attach obs::Counters
//   silverd --idle-evict-ms=60000                     paused-session sweep
//   silverd --socket=S --journal=J                    write-ahead job journal:
//                                                     queued/paused jobs survive
//                                                     kill -9 and resume exactly
//   silverd --socket=S --client-share=0.25            per-client admission quota
//   silverd --socket=S --dispatch=4                   cluster mode: spawn 4 shard
//                                                     workers and route jobs to
//                                                     them by prepare key
//
// SIGTERM / SIGINT drain gracefully: admissions stop, every queued and
// running job finishes, paused sessions are parked, then the process
// exits 0.  Clients racing the shutdown get "service is draining"
// rejections, never a dropped response.
//
// In --dispatch mode this process owns the client socket and runs no
// jobs itself; each shard is a child silverd on a private socket
// (<socket>.shardK, pid in <socket>.shardK.pid) with its own journal
// (<journal>.shardK).  A shard that dies is detected, respawned, its
// journal replayed, and routing re-armed — in-flight pending work
// survives because the journals are per-shard, not dispatcher state.
//
//===----------------------------------------------------------------------===//

#include "stack/Stack.h"
#include "svc/Server.h"
#include "svc/Service.h"
#include "svc/cluster/Dispatcher.h"
#include "support/StringUtils.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace silver;

namespace {

volatile std::sig_atomic_t ShutdownRequested = 0;

void onSignal(int) { ShutdownRequested = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: silverd --socket=PATH [--workers=N] [--queue-depth=N]\n"
               "               [--max-steps=N] [--slice-chunk=N]\n"
               "               [--idle-evict-ms=N] [--instrument]\n"
               "               [--journal=PATH] [--journal-sync]\n"
               "               [--client-share=F] [--dispatch=N]\n"
               "       silverd --tcp [--port=N] ...\n");
  return 1;
}

bool parseUnsigned(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

bool parseShare(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  double V = std::strtod(Text.c_str(), &End);
  if (End != Text.c_str() + Text.size() || V <= 0.0 || V > 1.0)
    return false;
  Out = V;
  return true;
}

/// Shard bookkeeping for --dispatch mode.
struct ShardProc {
  pid_t Pid = -1;
  std::string Socket;
  std::string PidFile;
};

void writePidFile(const ShardProc &S) {
  if (std::FILE *F = std::fopen(S.PidFile.c_str(), "w")) {
    std::fprintf(F, "%ld\n", static_cast<long>(S.Pid));
    std::fclose(F);
  }
}

pid_t spawnShard(const char *Self, const std::vector<std::string> &Args) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid; // parent (or fork failure, -1)
  std::vector<char *> Argv;
  Argv.push_back(const_cast<char *>(Self));
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  ::execv(Self, Argv.data());
  std::perror("silverd: execv shard");
  _exit(127);
}

/// Probes \p Socket with a Stats round trip until it answers or the
/// budget runs out.
bool waitShardReady(const std::string &Socket, int BudgetMs) {
  for (int Waited = 0; Waited < BudgetMs; Waited += 100) {
    svc::Client C;
    if (C.connectUnix(Socket)) {
      svc::Request R;
      R.Kind = svc::RequestKind::Stats;
      if (C.roundTrip(R))
        return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

int runDispatcher(const char *Self, const svc::ServerOptions &SrvOpts,
                  unsigned NumShards,
                  const std::vector<std::string> &ShardFlags,
                  const std::string &JournalBase) {
  if (SrvOpts.Tcp || SrvOpts.SocketPath.empty()) {
    std::fprintf(stderr,
                 "silverd: --dispatch requires a --socket=PATH front end\n");
    return 1;
  }

  std::vector<ShardProc> Procs(NumShards);
  auto ShardArgs = [&](unsigned I) {
    std::vector<std::string> Args = ShardFlags;
    Args.push_back("--socket=" + Procs[I].Socket);
    if (!JournalBase.empty())
      Args.push_back("--journal=" + JournalBase + ".shard" +
                     std::to_string(I));
    return Args;
  };
  std::vector<std::string> Sockets;
  for (unsigned I = 0; I != NumShards; ++I) {
    Procs[I].Socket =
        SrvOpts.SocketPath + ".shard" + std::to_string(I);
    Procs[I].PidFile = Procs[I].Socket + ".pid";
    Sockets.push_back(Procs[I].Socket);
  }
  for (unsigned I = 0; I != NumShards; ++I) {
    Procs[I].Pid = spawnShard(Self, ShardArgs(I));
    if (Procs[I].Pid < 0) {
      std::fprintf(stderr, "silverd: could not fork shard %u\n", I);
      return 1;
    }
    writePidFile(Procs[I]);
  }
  for (unsigned I = 0; I != NumShards; ++I)
    if (!waitShardReady(Procs[I].Socket, 10'000))
      std::fprintf(stderr, "silverd: shard %u slow to start; routing will "
                           "re-arm when it answers\n",
                   I);

  svc::cluster::DispatcherOptions DOpts;
  DOpts.ShardSockets = Sockets;
  DOpts.OnShardDown = [](size_t I) {
    std::fprintf(stderr, "silverd: shard %zu stopped answering\n", I);
  };
  svc::cluster::Dispatcher Dispatch(DOpts);

  svc::Server Srv(Dispatch, SrvOpts);
  if (Result<void> S = Srv.start(); !S) {
    std::fprintf(stderr, "silverd: error: %s\n", S.error().str().c_str());
    return 1;
  }
  std::printf("silverd: dispatching on %s to %u shards\n",
              SrvOpts.SocketPath.c_str(), NumShards);
  std::fflush(stdout);

  // The monitor reaps dead shard workers and respawns them: their
  // journal replays on startup, so queued and paused jobs survive even
  // a kill -9 of the shard.
  std::atomic<bool> MonitorStop{false};
  std::thread Monitor([&] {
    while (!MonitorStop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      if (Dispatch.draining() || MonitorStop.load(std::memory_order_acquire))
        return;
      for (unsigned I = 0; I != NumShards; ++I) {
        int St = 0;
        if (::waitpid(Procs[I].Pid, &St, WNOHANG) != Procs[I].Pid)
          continue;
        if (Dispatch.draining())
          return; // died because the cluster is draining: let it rest
        std::fprintf(stderr, "silverd: shard %u (pid %ld) died; respawning\n",
                     I, static_cast<long>(Procs[I].Pid));
        Procs[I].Pid = spawnShard(Self, ShardArgs(I));
        writePidFile(Procs[I]);
        if (waitShardReady(Procs[I].Socket, 10'000))
          Dispatch.markHealthy(I);
      }
      Dispatch.checkHealth();
    }
  });

  while (!ShutdownRequested && !Srv.stopped())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  MonitorStop.store(true, std::memory_order_release);
  Monitor.join();

  std::fprintf(stderr, "silverd: draining cluster...\n");
  if (!Dispatch.draining()) // SIGTERM path; a client Drain already did this
    std::fputs(Dispatch.mergedStatsJson(/*Drain=*/true).c_str(), stderr);
  std::fputc('\n', stderr);
  Srv.stop();

  for (ShardProc &P : Procs) {
    // Shards exit by themselves once drained; escalate if one wedges.
    int St = 0;
    for (int Waited = 0; Waited < 10'000; Waited += 100) {
      if (::waitpid(P.Pid, &St, WNOHANG) == P.Pid) {
        P.Pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (P.Pid != -1) {
      ::kill(P.Pid, SIGKILL);
      ::waitpid(P.Pid, &St, 0);
    }
    ::unlink(P.PidFile.c_str());
  }
  std::fprintf(stderr, "silverd: cluster drained, exiting\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  svc::ServiceOptions SvcOpts;
  svc::ServerOptions SrvOpts;
  uint64_t DispatchShards = 0;
  std::string JournalPath;
  // Flags forwarded verbatim to shard workers in --dispatch mode
  // (everything that shapes a shard, minus the per-shard socket and
  // journal paths, which the dispatcher derives).
  std::vector<std::string> ShardFlags;

  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    uint64_t V = 0;
    double F = 0;
    if (startsWith(A, "--socket="))
      SrvOpts.SocketPath = A.substr(9);
    else if (A == "--tcp")
      SrvOpts.Tcp = true;
    else if (startsWith(A, "--port=") && parseUnsigned(A.substr(7), V))
      SrvOpts.TcpPort = static_cast<uint16_t>(V);
    else if (startsWith(A, "--dispatch=") && parseUnsigned(A.substr(11), V))
      DispatchShards = V;
    else if (startsWith(A, "--journal="))
      JournalPath = A.substr(10);
    else if (A == "--journal-sync") {
      SvcOpts.JournalSync = true;
      ShardFlags.push_back(A);
    } else if (startsWith(A, "--client-share=") &&
               parseShare(A.substr(15), F)) {
      SvcOpts.MaxClientShare = F;
      ShardFlags.push_back(A);
    } else if (startsWith(A, "--workers=") && parseUnsigned(A.substr(10), V)) {
      SvcOpts.Workers = static_cast<unsigned>(V);
      ShardFlags.push_back(A);
    } else if (startsWith(A, "--queue-depth=") &&
               parseUnsigned(A.substr(14), V)) {
      SvcOpts.QueueDepth = static_cast<size_t>(V);
      ShardFlags.push_back(A);
    } else if (startsWith(A, "--max-steps=") &&
               parseUnsigned(A.substr(12), V)) {
      SvcOpts.DefaultMaxSteps = V;
      ShardFlags.push_back(A);
    } else if (startsWith(A, "--slice-chunk=") &&
               parseUnsigned(A.substr(14), V)) {
      SvcOpts.ChunkInstructions = V;
      ShardFlags.push_back(A);
    } else if (startsWith(A, "--idle-evict-ms=") &&
               parseUnsigned(A.substr(16), V)) {
      SvcOpts.IdleEvictMs = V;
      ShardFlags.push_back(A);
    } else if (A == "--instrument") {
      SvcOpts.Instrument = true;
      ShardFlags.push_back(A);
    } else
      return usage();
  }
  if (!SrvOpts.Tcp && SrvOpts.SocketPath.empty())
    return usage();

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN); // client hangups surface as write errors

  if (DispatchShards)
    return runDispatcher(Argv[0], SrvOpts,
                         static_cast<unsigned>(DispatchShards), ShardFlags,
                         JournalPath);

  SvcOpts.JournalPath = JournalPath;
  svc::Service Svc(SvcOpts);
  svc::Server Srv(Svc, SrvOpts);
  if (Result<void> S = Srv.start(); !S) {
    std::fprintf(stderr, "silverd: error: %s\n", S.error().str().c_str());
    return 1;
  }
  if (SrvOpts.Tcp)
    std::printf("silverd: listening on 127.0.0.1:%u\n", Srv.boundPort());
  else
    std::printf("silverd: listening on %s\n", SrvOpts.SocketPath.c_str());
  std::printf("silverd: %u workers, queue depth %zu\n", SvcOpts.Workers,
              SvcOpts.QueueDepth);
  if (!JournalPath.empty()) {
    svc::Service::JournalStats JS = Svc.journalStats();
    std::printf("silverd: journal %s (%llu records replayed, %llu jobs "
                "recovered)\n",
                JournalPath.c_str(),
                static_cast<unsigned long long>(JS.ReplayedRecords),
                static_cast<unsigned long long>(JS.RecoveredJobs));
  }
  if (!stack::backendSupported(stack::BackendKind::Jit))
    std::printf("silverd: jit backend unsupported on this host; jit jobs "
                "run on the interpreter\n");
  if (!stack::hdlBackendSupported(stack::HdlBackendKind::Compiled))
    std::printf("silverd: compiled simulator unavailable on this host; "
                "hdl=compiled jobs run on the interpreter\n");
  std::fflush(stdout);

  // The server runs on its own threads; this loop only watches for the
  // two shutdown signals: a POSIX signal, or a Drain request having
  // stopped the server from within.
  while (!ShutdownRequested && !Srv.stopped())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::fprintf(stderr, "silverd: draining...\n");
  Svc.drain(); // in-flight jobs finish; admissions already rejected
  Srv.stop();  // then tear down the socket
  std::fprintf(stderr, "silverd: drained, exiting\n");
  std::fputs(Svc.statsJson().c_str(), stderr);
  std::fputc('\n', stderr);
  return 0;
}
