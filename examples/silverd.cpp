//===- examples/silverd.cpp - the SilverStack batch execution daemon ----------===//
//
// Serves compile-and-run jobs over a Unix-domain socket (TCP on loopback
// behind --tcp):
//
//   silverd --socket=/tmp/silverd.sock                serve until SIGTERM
//   silverd --socket=S --workers=8 --queue-depth=128  sizing
//   silverd --tcp --port=0                            TCP; prints the port
//   silverd --instrument                              attach obs::Counters
//   silverd --idle-evict-ms=60000                     paused-session sweep
//
// SIGTERM / SIGINT drain gracefully: admissions stop, every queued and
// running job finishes, paused sessions are parked, then the process
// exits 0.  Clients racing the shutdown get "service is draining"
// rejections, never a dropped response.
//
//===----------------------------------------------------------------------===//

#include "stack/Stack.h"
#include "svc/Server.h"
#include "svc/Service.h"
#include "support/StringUtils.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace silver;

namespace {

volatile std::sig_atomic_t ShutdownRequested = 0;

void onSignal(int) { ShutdownRequested = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: silverd --socket=PATH [--workers=N] [--queue-depth=N]\n"
               "               [--max-steps=N] [--slice-chunk=N]\n"
               "               [--idle-evict-ms=N] [--instrument]\n"
               "       silverd --tcp [--port=N] ...\n");
  return 1;
}

bool parseUnsigned(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  svc::ServiceOptions SvcOpts;
  svc::ServerOptions SrvOpts;

  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    uint64_t V = 0;
    if (startsWith(A, "--socket="))
      SrvOpts.SocketPath = A.substr(9);
    else if (A == "--tcp")
      SrvOpts.Tcp = true;
    else if (startsWith(A, "--port=") && parseUnsigned(A.substr(7), V))
      SrvOpts.TcpPort = static_cast<uint16_t>(V);
    else if (startsWith(A, "--workers=") && parseUnsigned(A.substr(10), V))
      SvcOpts.Workers = static_cast<unsigned>(V);
    else if (startsWith(A, "--queue-depth=") &&
             parseUnsigned(A.substr(14), V))
      SvcOpts.QueueDepth = static_cast<size_t>(V);
    else if (startsWith(A, "--max-steps=") && parseUnsigned(A.substr(12), V))
      SvcOpts.DefaultMaxSteps = V;
    else if (startsWith(A, "--slice-chunk=") &&
             parseUnsigned(A.substr(14), V))
      SvcOpts.ChunkInstructions = V;
    else if (startsWith(A, "--idle-evict-ms=") &&
             parseUnsigned(A.substr(16), V))
      SvcOpts.IdleEvictMs = V;
    else if (A == "--instrument")
      SvcOpts.Instrument = true;
    else
      return usage();
  }
  if (!SrvOpts.Tcp && SrvOpts.SocketPath.empty())
    return usage();

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN); // client hangups surface as write errors

  svc::Service Svc(SvcOpts);
  svc::Server Srv(Svc, SrvOpts);
  if (Result<void> S = Srv.start(); !S) {
    std::fprintf(stderr, "silverd: error: %s\n", S.error().str().c_str());
    return 1;
  }
  if (SrvOpts.Tcp)
    std::printf("silverd: listening on 127.0.0.1:%u\n", Srv.boundPort());
  else
    std::printf("silverd: listening on %s\n", SrvOpts.SocketPath.c_str());
  std::printf("silverd: %u workers, queue depth %zu\n", SvcOpts.Workers,
              SvcOpts.QueueDepth);
  if (!stack::backendSupported(stack::BackendKind::Jit))
    std::printf("silverd: jit backend unsupported on this host; jit jobs "
                "run on the interpreter\n");
  if (!stack::hdlBackendSupported(stack::HdlBackendKind::Compiled))
    std::printf("silverd: compiled simulator unavailable on this host; "
                "hdl=compiled jobs run on the interpreter\n");
  std::fflush(stdout);

  // The server runs on its own threads; this loop only watches for the
  // two shutdown signals: a POSIX signal, or a Drain request having
  // stopped the server from within.
  while (!ShutdownRequested && !Srv.stopped())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::fprintf(stderr, "silverd: draining...\n");
  Svc.drain(); // in-flight jobs finish; admissions already rejected
  Srv.stop();  // then tear down the socket
  std::fprintf(stderr, "silverd: drained, exiting\n");
  std::fputs(Svc.statsJson().c_str(), stderr);
  std::fputc('\n', stderr);
  return 0;
}
