//===- examples/silver_client.cpp - silverd command-line client ----------------===//
//
// Talks the svc wire protocol to a running silverd:
//
//   silver-client --socket=S submit prog.cml --args="a b" --wait-ms=60000
//   silver-client --socket=S submit --builtin=wc --stdin-file=f --level=rtl
//   silver-client --socket=S submit --builtin=hello --slice=100000
//   silver-client --socket=S status 7 [--wait-ms=N]
//   silver-client --socket=S resume 7 [--slice=N] [--wait-ms=N]
//   silver-client --socket=S cancel 7
//   silver-client --socket=S stats
//   silver-client --socket=S drain
//   silver-client --tcp=127.0.0.1:4100 ...
//
// submit blocks for the job by default (--wait-ms=60000); --wait-ms=0
// submits asynchronously and prints the job id for later status calls.
// With --json, submit/status/resume print the job outcome in the same
// one-line shape as silverc --json, so scripts parse both identically.
//
// Exit code: the job's exit code when it completed; 1 on any error,
// rejection, or non-completed state.
//
//===----------------------------------------------------------------------===//

#include "stack/Apps.h"
#include "stack/Stack.h"
#include "support/StringUtils.h"
#include "svc/Client.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace silver;

namespace {

int fail(const std::string &Message) {
  std::fprintf(stderr, "silver-client: error: %s\n", Message.c_str());
  return 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: silver-client --socket=PATH|--tcp=HOST:PORT COMMAND ...\n"
      "  submit FILE|--builtin=hello|cat|wc|sort|proof\n"
      "         [--level=spec|machine|isa|rtl|verilog]\n"
      "         [--backend=interp|jit] [--hdl=interp|compiled]\n"
      "         [--args=\"...\"]\n"
      "         [--stdin-file=FILE] [--priority=N] [--slice=N]\n"
      "         [--max-steps=N] [--wall-ms=N] [--wait-ms=N] [--json]\n"
      "         [--client=ID] [--live]\n"
      "  status JOBID [--wait-ms=N] [--json] [--digest]\n"
      "  resume JOBID [--slice=N] [--wait-ms=N] [--json] [--digest]\n"
      "  cancel JOBID\n"
      "  stream JOBID [--from=N]\n"
      "  stats\n"
      "  drain\n"
      "  --client=ID   fairness tenant (per-client queue quota)\n"
      "  --live        publish stdout incrementally for stream\n"
      "  --digest      print the job's StateDigest as one canonical line\n");
  return 1;
}

std::string readAll(std::istream &In) {
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

bool parseUnsigned(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

const char *builtinSource(const std::string &Name) {
  if (Name == "hello")
    return stack::helloSource();
  if (Name == "cat")
    return stack::catSource();
  if (Name == "wc")
    return stack::wcSource();
  if (Name == "sort")
    return stack::sortSource();
  if (Name == "proof")
    return stack::proofCheckerSource();
  return nullptr;
}

bool parseLevel(const std::string &Name, stack::Level &Out) {
  if (Name == "spec")
    Out = stack::Level::Spec;
  else if (Name == "machine")
    Out = stack::Level::Machine;
  else if (Name == "isa")
    Out = stack::Level::Isa;
  else if (Name == "rtl")
    Out = stack::Level::Rtl;
  else if (Name == "verilog")
    Out = stack::Level::Verilog;
  else
    return false;
  return true;
}

/// Prints a settled job the way scripts and humans want it, returns the
/// process exit code.
int reportJob(const svc::JobInfo &Info, const std::string &LevelName,
              bool Json) {
  const stack::Observed &B = Info.Outcome.Behaviour;
  if (Json) {
    std::printf("%s\n",
                svc::outcomeJson(svc::jobStateName(Info.State), LevelName, B)
                    .c_str());
    return Info.State == svc::JobState::Completed ? B.ExitCode : 1;
  }
  switch (Info.State) {
  case svc::JobState::Completed:
    std::fwrite(B.StdoutData.data(), 1, B.StdoutData.size(), stdout);
    std::fwrite(B.StderrData.data(), 1, B.StderrData.size(), stderr);
    std::fprintf(stderr,
                 "silver-client: job %llu [%s] completed: %llu instructions, "
                 "exit %d\n",
                 (unsigned long long)Info.Id, LevelName.c_str(),
                 (unsigned long long)B.Instructions, B.ExitCode);
    return B.ExitCode;
  case svc::JobState::Queued:
  case svc::JobState::Running:
  case svc::JobState::Paused:
    std::printf("job %llu %s (%llu instructions so far, %llu slices)\n",
                (unsigned long long)Info.Id, svc::jobStateName(Info.State),
                (unsigned long long)B.Instructions,
                (unsigned long long)Info.SlicesRun);
    // An async submit or a still-running wait is not a failure.
    return 0;
  default:
    std::fprintf(stderr, "silver-client: job %llu %s%s%s\n",
                 (unsigned long long)Info.Id, svc::jobStateName(Info.State),
                 Info.Outcome.Error.empty() ? "" : ": ",
                 Info.Outcome.Error.c_str());
    return 1;
  }
}

std::string levelNameOf(stack::Level L) { return stack::levelName(L); }

/// Prints the job's architectural StateDigest as one canonical line, so
/// scripts can compare pre-crash and post-recovery machine states with a
/// plain string equality (tests/svc/cluster_smoke.sh does exactly that).
int reportDigest(const svc::JobInfo &Info) {
  if (!Info.Outcome.HasDigest) {
    std::fprintf(stderr, "silver-client: job %llu [%s] has no state digest\n",
                 (unsigned long long)Info.Id, svc::jobStateName(Info.State));
    return 1;
  }
  const stack::StateDigest &D = Info.Outcome.Digest;
  std::printf("digest pc=%08x carry=%d overflow=%d regs=",
              (unsigned)D.Pc, D.Carry ? 1 : 0, D.Overflow ? 1 : 0);
  for (Word R : D.Regs)
    std::printf("%08x", (unsigned)R);
  std::printf(" memhash=%016llx membytes=%llu\n",
              (unsigned long long)D.MemoryHash,
              (unsigned long long)D.MemoryBytes);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  std::string TcpTarget;
  std::string Command;
  std::string File;
  std::string Builtin;
  std::string StdinFile;
  std::string Args;
  uint64_t JobId = 0;
  bool HaveJobId = false;
  bool Json = false;
  bool Digest = false;
  uint64_t StreamFrom = 0;
  svc::JobSpec Spec;
  uint64_t WaitMs = 60'000; // submit/status/resume block by default
  uint64_t ResumeSlice = 0;

  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    uint64_t V = 0;
    if (startsWith(A, "--socket="))
      SocketPath = A.substr(9);
    else if (startsWith(A, "--tcp="))
      TcpTarget = A.substr(6);
    else if (startsWith(A, "--builtin="))
      Builtin = A.substr(10);
    else if (startsWith(A, "--level=")) {
      std::string Name = A.substr(8);
      if (Name == "jit") {
        // The old ad-hoc spelling, before --backend= was uniform
        // across the CLIs; jit is a backend, not a Figure-1 level.
        std::fprintf(stderr,
                     "silver-client: warning: --level=jit is deprecated; "
                     "use --level=isa --backend=jit\n");
        Spec.Level = stack::Level::Isa;
        Spec.Backend = stack::BackendKind::Jit;
      } else if (!parseLevel(Name, Spec.Level))
        return usage();
    } else if (startsWith(A, "--backend=")) {
      if (!stack::parseBackendKind(A.substr(10), Spec.Backend))
        return usage();
    } else if (startsWith(A, "--hdl=")) {
      if (!stack::parseHdlBackendKind(A.substr(6), Spec.Hdl))
        return usage();
    } else if (startsWith(A, "--args="))
      Args = A.substr(7);
    else if (startsWith(A, "--stdin-file="))
      StdinFile = A.substr(13);
    else if (startsWith(A, "--priority=") && parseUnsigned(A.substr(11), V))
      Spec.Priority = static_cast<uint8_t>(V);
    else if (startsWith(A, "--slice=") && parseUnsigned(A.substr(8), V)) {
      Spec.SliceInstructions = V;
      ResumeSlice = V;
    } else if (startsWith(A, "--max-steps=") &&
               parseUnsigned(A.substr(12), V))
      Spec.MaxSteps = V;
    else if (startsWith(A, "--wall-ms=") && parseUnsigned(A.substr(10), V))
      Spec.WallMsBudget = V;
    else if (startsWith(A, "--wait-ms=") && parseUnsigned(A.substr(10), V))
      WaitMs = V;
    else if (startsWith(A, "--from=") && parseUnsigned(A.substr(7), V))
      StreamFrom = V;
    else if (startsWith(A, "--client="))
      Spec.ClientId = A.substr(9);
    else if (A == "--live")
      Spec.LiveOutput = true;
    else if (A == "--json")
      Json = true;
    else if (A == "--digest")
      Digest = true;
    else if (!A.empty() && A[0] == '-' && A != "-")
      return usage();
    else if (Command.empty())
      Command = A;
    else if ((Command == "status" || Command == "resume" ||
              Command == "cancel" || Command == "stream") &&
             !HaveJobId && parseUnsigned(A, JobId))
      HaveJobId = true;
    else if (Command == "submit" && File.empty())
      File = A;
    else
      return usage();
  }

  if (Command.empty())
    return usage();
  if (SocketPath.empty() == TcpTarget.empty())
    return usage(); // exactly one transport

  svc::Client C;
  if (!SocketPath.empty()) {
    if (Result<void> R = C.connectUnix(SocketPath); !R)
      return fail(R.error().str());
  } else {
    size_t Colon = TcpTarget.rfind(':');
    uint64_t Port = 0;
    if (Colon == std::string::npos ||
        !parseUnsigned(TcpTarget.substr(Colon + 1), Port) || Port > 65535)
      return fail("bad --tcp target '" + TcpTarget + "' (want HOST:PORT)");
    if (Result<void> R = C.connectTcp(TcpTarget.substr(0, Colon),
                                      static_cast<uint16_t>(Port));
        !R)
      return fail(R.error().str());
  }

  if (Command == "submit") {
    if (!Builtin.empty()) {
      const char *Source = builtinSource(Builtin);
      if (!Source)
        return fail("unknown builtin '" + Builtin + "'");
      Spec.Source = Source;
      Spec.CommandLine = {Builtin};
    } else if (!File.empty()) {
      if (File == "-") {
        Spec.Source = readAll(std::cin);
      } else {
        std::ifstream In(File);
        if (!In)
          return fail("cannot open '" + File + "'");
        Spec.Source = readAll(In);
      }
      Spec.CommandLine = {File == "-" ? "prog" : File};
    } else {
      return usage();
    }
    if (!Args.empty())
      for (const std::string &Arg : splitString(Args, ' '))
        if (!Arg.empty())
          Spec.CommandLine.push_back(Arg);
    if (!StdinFile.empty()) {
      std::ifstream In(StdinFile, std::ios::binary);
      if (!In)
        return fail("cannot open '" + StdinFile + "'");
      Spec.StdinData = readAll(In);
    }
    Result<svc::Response> R = C.submit(Spec, WaitMs);
    if (!R)
      return fail(R.error().str());
    if (!R->Ok)
      return fail(R->Error);
    if (Digest)
      return reportDigest(R->Info);
    return reportJob(R->Info, levelNameOf(Spec.Level), Json);
  }

  if (Command == "status" || Command == "resume" || Command == "cancel") {
    if (!HaveJobId)
      return usage();
    Result<svc::Response> R =
        Command == "status"   ? C.status(JobId, WaitMs)
        : Command == "resume" ? C.resume(JobId, ResumeSlice, WaitMs)
                              : C.cancel(JobId);
    if (!R)
      return fail(R.error().str());
    if (!R->Ok)
      return fail(R->Error);
    if (Digest)
      return reportDigest(R->Info);
    return reportJob(R->Info, levelNameOf(R->Info.Level), Json);
  }

  if (Command == "stream") {
    if (!HaveJobId)
      return usage();
    Result<svc::Response> R =
        C.stream(JobId, StreamFrom, [](uint64_t, const std::string &Data) {
          std::fwrite(Data.data(), 1, Data.size(), stdout);
          std::fflush(stdout);
        });
    if (!R)
      return fail(R.error().str());
    if (!R->Ok)
      return fail(R->Error);
    std::fprintf(stderr, "silver-client: job %llu %s after stream\n",
                 (unsigned long long)R->Info.Id,
                 svc::jobStateName(R->Info.State));
    if (R->Info.State == svc::JobState::Completed)
      return R->Info.Outcome.Behaviour.ExitCode;
    // Paused streams are a clean handoff point (resume continues them),
    // not a failure.
    return R->Info.State == svc::JobState::Paused ? 0 : 1;
  }

  if (Command == "stats" || Command == "drain") {
    Result<svc::Response> R = Command == "stats" ? C.stats() : C.drain();
    if (!R)
      return fail(R.error().str());
    if (!R->Ok)
      return fail(R->Error);
    std::printf("%s\n", R->StatsJson.c_str());
    return 0;
  }

  return usage();
}
