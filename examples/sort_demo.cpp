//===- examples/sort_demo.cpp - sort on the verified stack ---------------------===//
//
// The paper reports that sort on a 1000-line file completes in a few
// seconds on the FPGA.  This example sorts generated lines on the Silver
// ISA simulator and at the cycle-accurate circuit level (on a smaller
// input), reporting instruction and cycle counts and the projected
// wall-clock time at a nominal 32 MHz FPGA clock.
//
//===----------------------------------------------------------------------===//

#include "stack/Apps.h"
#include "stack/Executor.h"

#include <cstdio>

using namespace silver;

static Result<stack::Observed> runOnce(const stack::RunSpec &Spec,
                                       stack::Level L) {
  Result<stack::Executor> Exec = stack::Executor::create(Spec);
  if (!Exec)
    return Exec.error();
  Result<stack::Outcome> Out = Exec->run(L);
  if (!Out)
    return Out.error();
  return Out->Behaviour;
}

int main() {
  // ISA level: the paper's 1000-line workload.
  {
    std::string Input = stack::randomLines(1000, 1);
    stack::RunSpec Spec;
    Spec.Source = stack::sortSource();
    Spec.StdinData = Input;
    Spec.Compile.Layout.MemSize = 16u << 20;
    Spec.Compile.Layout.StdinCap = 1u << 20;
    Spec.Exec.MaxSteps = 3'000'000'000ull;
    Result<stack::Observed> R = runOnce(Spec, stack::Level::Isa);
    if (!R) {
      std::fprintf(stderr, "isa: %s\n", R.error().str().c_str());
      return 1;
    }
    bool Ok = R->StdoutData == stack::sortSpec(Input);
    std::printf("[isa] 1000 lines: %llu instructions, output %s\n",
                (unsigned long long)R->Instructions,
                Ok ? "matches sort_spec" : "MISMATCH");
    if (!Ok)
      return 1;
  }
  // Circuit level: a smaller input, with the cycle count and the
  // projected FPGA time.
  {
    std::string Input = stack::randomLines(20, 2);
    stack::RunSpec Spec;
    Spec.Source = stack::sortSource();
    Spec.StdinData = Input;
    Spec.Exec.MaxSteps = 400'000'000ull;
    Result<stack::Observed> R = runOnce(Spec, stack::Level::Rtl);
    if (!R) {
      std::fprintf(stderr, "rtl: %s\n", R.error().str().c_str());
      return 1;
    }
    bool Ok = R->StdoutData == stack::sortSpec(Input);
    std::printf("[rtl] 20 lines: %llu cycles (%0.2f ms at 32 MHz), "
                "%.2f cycles/instruction, output %s\n",
                (unsigned long long)R->Cycles,
                double(R->Cycles) / 32e6 * 1e3,
                double(R->Cycles) / double(R->Instructions),
                Ok ? "matches sort_spec" : "MISMATCH");
    if (!Ok)
      return 1;
  }
  return 0;
}
