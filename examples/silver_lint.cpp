//===- examples/silver_lint.cpp - static verification front end ----------------===//
//
// The silver-lint tool runs the static-analysis subsystem:
//
//   silver-lint --hdl                  lint the generated Silver core Verilog
//   silver-lint prog.cml [...]         compile each program, build its
//                                      bare-metal image, and run the
//                                      installed-image audit on it
//   silver-lint --hdl prog.cml         both
//
// Prints one line per diagnostic plus a per-subject summary.  Exit code 0
// when every subject is clean, 1 on any diagnostic or build error.
//
//===----------------------------------------------------------------------===//

#include "analysis/ImageAudit.h"
#include "analysis/VerilogLint.h"
#include "cpu/Core.h"
#include "rtl/ToVerilog.h"
#include "stack/Stack.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace silver;

namespace {

int usage() {
  std::fprintf(stderr, "usage: silver-lint [--hdl] [FILE.cml ...]\n");
  return 1;
}

/// Lints the generated core module; returns the diagnostic count.
size_t lintCoreHdl() {
  cpu::SilverCore Core = cpu::buildSilverCore();
  Result<hdl::VModule> Module = rtl::toVerilog(Core.Circuit);
  if (!Module) {
    std::fprintf(stderr, "silver-lint: hdl: %s\n",
                 Module.error().str().c_str());
    return 1;
  }
  std::vector<analysis::LintDiag> Diags = analysis::lintModule(*Module);
  for (const analysis::LintDiag &D : Diags)
    std::printf("hdl: %s\n", analysis::formatDiag(D).c_str());
  std::printf("hdl: silver core (%zu decls, %zu processes): %zu "
              "diagnostic(s)\n",
              Module->Decls.size(), Module->Processes.size(), Diags.size());
  return Diags.size();
}

/// Audits one compiled program's image; returns the diagnostic count.
size_t auditProgram(const std::string &File) {
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "silver-lint: cannot open '%s'\n", File.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  stack::RunSpec Spec;
  Spec.Source = Buf.str();
  Spec.CommandLine = {File};
  Result<stack::Prepared> P = stack::prepare(Spec);
  if (!P) {
    std::fprintf(stderr, "silver-lint: %s: %s\n", File.c_str(),
                 P.error().str().c_str());
    return 1;
  }
  Result<analysis::AuditReport> Report = stack::auditPrepared(*P);
  if (!Report) {
    std::fprintf(stderr, "silver-lint: %s: %s\n", File.c_str(),
                 Report.error().str().c_str());
    return 1;
  }
  for (const analysis::AuditDiag &D : Report->Diags)
    std::printf("%s: %s\n", File.c_str(), analysis::formatDiag(D).c_str());
  size_t Reachable = 0;
  for (const analysis::RegionAnalysis *A :
       {&Report->Startup, &Report->Syscall, &Report->Program})
    for (size_t I = 0, E = A->G.Instrs.size(); I != E; ++I)
      if (A->instrReachable(I))
        ++Reachable;
  std::printf("%s: %zu reachable instructions, %zu resolved computed "
              "jumps, %zu diagnostic(s)\n",
              File.c_str(), Reachable,
              Report->Startup.Resolved.size() +
                  Report->Syscall.Resolved.size() +
                  Report->Program.Resolved.size(),
              Report->Diags.size());
  return Report->Diags.size();
}

} // namespace

int main(int Argc, char **Argv) {
  bool Hdl = false;
  std::vector<std::string> Files;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--hdl")
      Hdl = true;
    else if (!A.empty() && A[0] == '-')
      return usage();
    else
      Files.push_back(A);
  }
  if (!Hdl && Files.empty())
    Hdl = true; // no subject given: lint the core

  size_t Total = 0;
  if (Hdl)
    Total += lintCoreHdl();
  for (const std::string &File : Files)
    Total += auditProgram(File);
  return Total == 0 ? 0 : 1;
}
