//===- examples/silver_lint.cpp - static verification front end ----------------===//
//
// The silver-lint tool runs the static-analysis subsystem:
//
//   silver-lint --hdl                  lint the generated Silver core Verilog
//   silver-lint prog.cml [...]         compile each program, build its
//                                      bare-metal image, run the
//                                      installed-image audit and the
//                                      block-summary JIT-readiness pass
//   silver-lint --hdl prog.cml         both
//   silver-lint --json ...             one JSON object on stdout
//
// All findings are reported in the unified analysis::Diagnostic shape
// (shared with silverc --analyze): errors are audit/lint rule violations
// and fail the run; notes (e.g. "jit-interpreter-only") are advisory.
// Exit code 0 when every subject is free of errors, 1 on any error
// diagnostic or build failure.
//
//===----------------------------------------------------------------------===//

#include "analysis/BlockSummary.h"
#include "analysis/Diagnostic.h"
#include "analysis/JitReadiness.h"
#include "analysis/VerilogLint.h"
#include "cpu/Core.h"
#include "rtl/ToVerilog.h"
#include "stack/Stack.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace silver;

namespace {

int usage() {
  std::fprintf(stderr, "usage: silver-lint [--hdl] [--json] [FILE.cml ...]\n");
  return 1;
}

/// Prefixes \p Subject with the subject context (file name, "hdl").
void setSubject(analysis::Diagnostic &D, const std::string &Context) {
  D.Subject = D.Subject.empty() ? Context : Context + " " + D.Subject;
}

/// Lints the generated core module into \p Out; returns false on a
/// build failure (reported on stderr).
bool lintCoreHdl(std::vector<analysis::Diagnostic> &Out, bool Json) {
  cpu::SilverCore Core = cpu::buildSilverCore();
  Result<hdl::VModule> Module = rtl::toVerilog(Core.Circuit);
  if (!Module) {
    std::fprintf(stderr, "silver-lint: hdl: %s\n",
                 Module.error().str().c_str());
    return false;
  }
  std::vector<analysis::LintDiag> Diags = analysis::lintModule(*Module);
  for (analysis::Diagnostic &D : analysis::toDiagnostics(Diags)) {
    setSubject(D, "hdl");
    Out.push_back(std::move(D));
  }
  if (!Json)
    std::fprintf(stderr,
                 "hdl: silver core (%zu decls, %zu processes): %zu "
                 "diagnostic(s)\n",
                 Module->Decls.size(), Module->Processes.size(),
                 Diags.size());
  return true;
}

/// Audits one compiled program's image into \p Out; returns false on a
/// compile/build failure.
bool auditProgram(const std::string &File,
                  std::vector<analysis::Diagnostic> &Out, bool Json) {
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "silver-lint: cannot open '%s'\n", File.c_str());
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  stack::RunSpec Spec;
  Spec.Source = Buf.str();
  Spec.CommandLine = {File};
  Result<stack::Prepared> P = stack::prepare(Spec);
  if (!P) {
    std::fprintf(stderr, "silver-lint: %s: %s\n", File.c_str(),
                 P.error().str().c_str());
    return false;
  }
  Result<analysis::AuditReport> Report = stack::auditPrepared(*P);
  if (!Report) {
    std::fprintf(stderr, "silver-lint: %s: %s\n", File.c_str(),
                 Report.error().str().c_str());
    return false;
  }

  analysis::ImageSummary Summary = analysis::summarizeImage(*Report);
  analysis::JitReadinessReport Readiness = analysis::jitReadiness(Summary);

  std::vector<analysis::Diagnostic> Diags =
      analysis::toDiagnostics(Report->Diags);
  for (analysis::Diagnostic &D : analysis::readinessDiagnostics(Summary))
    Diags.push_back(std::move(D));
  for (analysis::Diagnostic &D : Diags) {
    setSubject(D, File);
    Out.push_back(std::move(D));
  }

  if (!Json) {
    size_t Reachable = 0;
    for (const analysis::RegionAnalysis *A :
         {&Report->Startup, &Report->Syscall, &Report->Program})
      for (size_t I = 0, E = A->G.Instrs.size(); I != E; ++I)
        if (A->instrReachable(I))
          ++Reachable;
    std::fprintf(stderr,
                 "%s: %zu reachable instructions, %zu diagnostic(s), jit "
                 "readiness %zu/%zu blocks\n",
                 File.c_str(), Reachable, Report->Diags.size(),
                 Readiness.totalTranslatable(), Readiness.totalBlocks());
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Hdl = false;
  bool Json = false;
  std::vector<std::string> Files;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--hdl")
      Hdl = true;
    else if (A == "--json")
      Json = true;
    else if (!A.empty() && A[0] == '-')
      return usage();
    else
      Files.push_back(A);
  }
  if (!Hdl && Files.empty())
    Hdl = true; // no subject given: lint the core

  std::vector<analysis::Diagnostic> Diags;
  bool BuildFailed = false;
  if (Hdl)
    BuildFailed |= !lintCoreHdl(Diags, Json);
  for (const std::string &File : Files)
    BuildFailed |= !auditProgram(File, Diags, Json);

  if (Json) {
    std::printf("{\"diagnostics\": %s}\n",
                analysis::diagnosticsJson(Diags).c_str());
  } else {
    for (const analysis::Diagnostic &D : Diags)
      std::printf("%s\n", analysis::formatDiagnostic(D).c_str());
  }

  size_t Errors = 0;
  for (const analysis::Diagnostic &D : Diags)
    if (D.Severity == analysis::Diagnostic::Level::Error)
      ++Errors;
  return (Errors == 0 && !BuildFailed) ? 0 : 1;
}
