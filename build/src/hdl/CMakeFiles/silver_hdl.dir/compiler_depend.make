# Empty compiler generated dependencies file for silver_hdl.
# This may be replaced when dependencies are built.
