file(REMOVE_RECURSE
  "CMakeFiles/silver_hdl.dir/FastSim.cpp.o"
  "CMakeFiles/silver_hdl.dir/FastSim.cpp.o.d"
  "CMakeFiles/silver_hdl.dir/Printer.cpp.o"
  "CMakeFiles/silver_hdl.dir/Printer.cpp.o.d"
  "CMakeFiles/silver_hdl.dir/Semantics.cpp.o"
  "CMakeFiles/silver_hdl.dir/Semantics.cpp.o.d"
  "CMakeFiles/silver_hdl.dir/Verilog.cpp.o"
  "CMakeFiles/silver_hdl.dir/Verilog.cpp.o.d"
  "libsilver_hdl.a"
  "libsilver_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
