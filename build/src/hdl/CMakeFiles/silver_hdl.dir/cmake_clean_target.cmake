file(REMOVE_RECURSE
  "libsilver_hdl.a"
)
