
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdl/FastSim.cpp" "src/hdl/CMakeFiles/silver_hdl.dir/FastSim.cpp.o" "gcc" "src/hdl/CMakeFiles/silver_hdl.dir/FastSim.cpp.o.d"
  "/root/repo/src/hdl/Printer.cpp" "src/hdl/CMakeFiles/silver_hdl.dir/Printer.cpp.o" "gcc" "src/hdl/CMakeFiles/silver_hdl.dir/Printer.cpp.o.d"
  "/root/repo/src/hdl/Semantics.cpp" "src/hdl/CMakeFiles/silver_hdl.dir/Semantics.cpp.o" "gcc" "src/hdl/CMakeFiles/silver_hdl.dir/Semantics.cpp.o.d"
  "/root/repo/src/hdl/Verilog.cpp" "src/hdl/CMakeFiles/silver_hdl.dir/Verilog.cpp.o" "gcc" "src/hdl/CMakeFiles/silver_hdl.dir/Verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/silver_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
