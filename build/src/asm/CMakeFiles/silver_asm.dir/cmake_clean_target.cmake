file(REMOVE_RECURSE
  "libsilver_asm.a"
)
