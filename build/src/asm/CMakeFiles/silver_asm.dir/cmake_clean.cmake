file(REMOVE_RECURSE
  "CMakeFiles/silver_asm.dir/Assembler.cpp.o"
  "CMakeFiles/silver_asm.dir/Assembler.cpp.o.d"
  "CMakeFiles/silver_asm.dir/Disassembler.cpp.o"
  "CMakeFiles/silver_asm.dir/Disassembler.cpp.o.d"
  "libsilver_asm.a"
  "libsilver_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
