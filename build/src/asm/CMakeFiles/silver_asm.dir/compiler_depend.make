# Empty compiler generated dependencies file for silver_asm.
# This may be replaced when dependencies are built.
