file(REMOVE_RECURSE
  "CMakeFiles/silver_rtl.dir/Circuit.cpp.o"
  "CMakeFiles/silver_rtl.dir/Circuit.cpp.o.d"
  "CMakeFiles/silver_rtl.dir/Equivalence.cpp.o"
  "CMakeFiles/silver_rtl.dir/Equivalence.cpp.o.d"
  "CMakeFiles/silver_rtl.dir/ToVerilog.cpp.o"
  "CMakeFiles/silver_rtl.dir/ToVerilog.cpp.o.d"
  "libsilver_rtl.a"
  "libsilver_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
