
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/Circuit.cpp" "src/rtl/CMakeFiles/silver_rtl.dir/Circuit.cpp.o" "gcc" "src/rtl/CMakeFiles/silver_rtl.dir/Circuit.cpp.o.d"
  "/root/repo/src/rtl/Equivalence.cpp" "src/rtl/CMakeFiles/silver_rtl.dir/Equivalence.cpp.o" "gcc" "src/rtl/CMakeFiles/silver_rtl.dir/Equivalence.cpp.o.d"
  "/root/repo/src/rtl/ToVerilog.cpp" "src/rtl/CMakeFiles/silver_rtl.dir/ToVerilog.cpp.o" "gcc" "src/rtl/CMakeFiles/silver_rtl.dir/ToVerilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdl/CMakeFiles/silver_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/silver_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
