file(REMOVE_RECURSE
  "libsilver_rtl.a"
)
