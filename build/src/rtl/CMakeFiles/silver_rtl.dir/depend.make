# Empty dependencies file for silver_rtl.
# This may be replaced when dependencies are built.
