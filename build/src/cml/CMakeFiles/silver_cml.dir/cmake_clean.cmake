file(REMOVE_RECURSE
  "CMakeFiles/silver_cml.dir/CodeGen.cpp.o"
  "CMakeFiles/silver_cml.dir/CodeGen.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Compiler.cpp.o"
  "CMakeFiles/silver_cml.dir/Compiler.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Core.cpp.o"
  "CMakeFiles/silver_cml.dir/Core.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Flatten.cpp.o"
  "CMakeFiles/silver_cml.dir/Flatten.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Infer.cpp.o"
  "CMakeFiles/silver_cml.dir/Infer.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Interp.cpp.o"
  "CMakeFiles/silver_cml.dir/Interp.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Lexer.cpp.o"
  "CMakeFiles/silver_cml.dir/Lexer.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Lower.cpp.o"
  "CMakeFiles/silver_cml.dir/Lower.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Opt.cpp.o"
  "CMakeFiles/silver_cml.dir/Opt.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Parser.cpp.o"
  "CMakeFiles/silver_cml.dir/Parser.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Prelude.cpp.o"
  "CMakeFiles/silver_cml.dir/Prelude.cpp.o.d"
  "CMakeFiles/silver_cml.dir/Runtime.cpp.o"
  "CMakeFiles/silver_cml.dir/Runtime.cpp.o.d"
  "libsilver_cml.a"
  "libsilver_cml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_cml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
