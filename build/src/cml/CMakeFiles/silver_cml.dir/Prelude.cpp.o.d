src/cml/CMakeFiles/silver_cml.dir/Prelude.cpp.o: \
 /root/repo/src/cml/Prelude.cpp /usr/include/stdc-predef.h \
 /root/repo/src/cml/Prelude.h
