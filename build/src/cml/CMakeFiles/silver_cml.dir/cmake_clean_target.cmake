file(REMOVE_RECURSE
  "libsilver_cml.a"
)
