
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cml/CodeGen.cpp" "src/cml/CMakeFiles/silver_cml.dir/CodeGen.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/CodeGen.cpp.o.d"
  "/root/repo/src/cml/Compiler.cpp" "src/cml/CMakeFiles/silver_cml.dir/Compiler.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Compiler.cpp.o.d"
  "/root/repo/src/cml/Core.cpp" "src/cml/CMakeFiles/silver_cml.dir/Core.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Core.cpp.o.d"
  "/root/repo/src/cml/Flatten.cpp" "src/cml/CMakeFiles/silver_cml.dir/Flatten.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Flatten.cpp.o.d"
  "/root/repo/src/cml/Infer.cpp" "src/cml/CMakeFiles/silver_cml.dir/Infer.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Infer.cpp.o.d"
  "/root/repo/src/cml/Interp.cpp" "src/cml/CMakeFiles/silver_cml.dir/Interp.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Interp.cpp.o.d"
  "/root/repo/src/cml/Lexer.cpp" "src/cml/CMakeFiles/silver_cml.dir/Lexer.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Lexer.cpp.o.d"
  "/root/repo/src/cml/Lower.cpp" "src/cml/CMakeFiles/silver_cml.dir/Lower.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Lower.cpp.o.d"
  "/root/repo/src/cml/Opt.cpp" "src/cml/CMakeFiles/silver_cml.dir/Opt.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Opt.cpp.o.d"
  "/root/repo/src/cml/Parser.cpp" "src/cml/CMakeFiles/silver_cml.dir/Parser.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Parser.cpp.o.d"
  "/root/repo/src/cml/Prelude.cpp" "src/cml/CMakeFiles/silver_cml.dir/Prelude.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Prelude.cpp.o.d"
  "/root/repo/src/cml/Runtime.cpp" "src/cml/CMakeFiles/silver_cml.dir/Runtime.cpp.o" "gcc" "src/cml/CMakeFiles/silver_cml.dir/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/silver_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/silver_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/silver_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/silver_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/silver_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ffi/CMakeFiles/silver_ffi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
