# Empty compiler generated dependencies file for silver_cml.
# This may be replaced when dependencies are built.
