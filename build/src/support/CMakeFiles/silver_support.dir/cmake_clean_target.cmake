file(REMOVE_RECURSE
  "libsilver_support.a"
)
