file(REMOVE_RECURSE
  "CMakeFiles/silver_support.dir/StringUtils.cpp.o"
  "CMakeFiles/silver_support.dir/StringUtils.cpp.o.d"
  "libsilver_support.a"
  "libsilver_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
