# Empty dependencies file for silver_support.
# This may be replaced when dependencies are built.
