# Empty compiler generated dependencies file for silver_isa.
# This may be replaced when dependencies are built.
