file(REMOVE_RECURSE
  "libsilver_isa.a"
)
