file(REMOVE_RECURSE
  "CMakeFiles/silver_isa.dir/Encoding.cpp.o"
  "CMakeFiles/silver_isa.dir/Encoding.cpp.o.d"
  "CMakeFiles/silver_isa.dir/Instruction.cpp.o"
  "CMakeFiles/silver_isa.dir/Instruction.cpp.o.d"
  "CMakeFiles/silver_isa.dir/Interp.cpp.o"
  "CMakeFiles/silver_isa.dir/Interp.cpp.o.d"
  "libsilver_isa.a"
  "libsilver_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
