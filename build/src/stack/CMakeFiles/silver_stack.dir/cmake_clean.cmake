file(REMOVE_RECURSE
  "CMakeFiles/silver_stack.dir/Apps.cpp.o"
  "CMakeFiles/silver_stack.dir/Apps.cpp.o.d"
  "CMakeFiles/silver_stack.dir/HardwareLevels.cpp.o"
  "CMakeFiles/silver_stack.dir/HardwareLevels.cpp.o.d"
  "CMakeFiles/silver_stack.dir/Stack.cpp.o"
  "CMakeFiles/silver_stack.dir/Stack.cpp.o.d"
  "libsilver_stack.a"
  "libsilver_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
