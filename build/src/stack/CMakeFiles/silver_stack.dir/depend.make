# Empty dependencies file for silver_stack.
# This may be replaced when dependencies are built.
