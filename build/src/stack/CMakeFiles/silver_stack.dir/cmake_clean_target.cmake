file(REMOVE_RECURSE
  "libsilver_stack.a"
)
