file(REMOVE_RECURSE
  "libsilver_sys.a"
)
