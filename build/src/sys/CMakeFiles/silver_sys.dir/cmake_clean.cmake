file(REMOVE_RECURSE
  "CMakeFiles/silver_sys.dir/Image.cpp.o"
  "CMakeFiles/silver_sys.dir/Image.cpp.o.d"
  "CMakeFiles/silver_sys.dir/Layout.cpp.o"
  "CMakeFiles/silver_sys.dir/Layout.cpp.o.d"
  "CMakeFiles/silver_sys.dir/Syscalls.cpp.o"
  "CMakeFiles/silver_sys.dir/Syscalls.cpp.o.d"
  "libsilver_sys.a"
  "libsilver_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
