# Empty compiler generated dependencies file for silver_sys.
# This may be replaced when dependencies are built.
