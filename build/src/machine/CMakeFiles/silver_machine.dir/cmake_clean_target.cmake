file(REMOVE_RECURSE
  "libsilver_machine.a"
)
