
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/InterferenceCheck.cpp" "src/machine/CMakeFiles/silver_machine.dir/InterferenceCheck.cpp.o" "gcc" "src/machine/CMakeFiles/silver_machine.dir/InterferenceCheck.cpp.o.d"
  "/root/repo/src/machine/MachineSem.cpp" "src/machine/CMakeFiles/silver_machine.dir/MachineSem.cpp.o" "gcc" "src/machine/CMakeFiles/silver_machine.dir/MachineSem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sys/CMakeFiles/silver_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/ffi/CMakeFiles/silver_ffi.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/silver_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/silver_support.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/silver_asm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
