# Empty compiler generated dependencies file for silver_machine.
# This may be replaced when dependencies are built.
