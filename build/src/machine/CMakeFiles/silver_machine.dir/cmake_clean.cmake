file(REMOVE_RECURSE
  "CMakeFiles/silver_machine.dir/InterferenceCheck.cpp.o"
  "CMakeFiles/silver_machine.dir/InterferenceCheck.cpp.o.d"
  "CMakeFiles/silver_machine.dir/MachineSem.cpp.o"
  "CMakeFiles/silver_machine.dir/MachineSem.cpp.o.d"
  "libsilver_machine.a"
  "libsilver_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
