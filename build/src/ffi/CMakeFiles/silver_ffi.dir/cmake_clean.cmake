file(REMOVE_RECURSE
  "CMakeFiles/silver_ffi.dir/BasisFfi.cpp.o"
  "CMakeFiles/silver_ffi.dir/BasisFfi.cpp.o.d"
  "libsilver_ffi.a"
  "libsilver_ffi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_ffi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
