file(REMOVE_RECURSE
  "libsilver_ffi.a"
)
