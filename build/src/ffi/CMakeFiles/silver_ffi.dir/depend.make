# Empty dependencies file for silver_ffi.
# This may be replaced when dependencies are built.
