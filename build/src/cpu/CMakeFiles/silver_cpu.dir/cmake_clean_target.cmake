file(REMOVE_RECURSE
  "libsilver_cpu.a"
)
