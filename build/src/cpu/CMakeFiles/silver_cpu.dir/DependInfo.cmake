
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/Check.cpp" "src/cpu/CMakeFiles/silver_cpu.dir/Check.cpp.o" "gcc" "src/cpu/CMakeFiles/silver_cpu.dir/Check.cpp.o.d"
  "/root/repo/src/cpu/Core.cpp" "src/cpu/CMakeFiles/silver_cpu.dir/Core.cpp.o" "gcc" "src/cpu/CMakeFiles/silver_cpu.dir/Core.cpp.o.d"
  "/root/repo/src/cpu/LabEnv.cpp" "src/cpu/CMakeFiles/silver_cpu.dir/LabEnv.cpp.o" "gcc" "src/cpu/CMakeFiles/silver_cpu.dir/LabEnv.cpp.o.d"
  "/root/repo/src/cpu/Sim.cpp" "src/cpu/CMakeFiles/silver_cpu.dir/Sim.cpp.o" "gcc" "src/cpu/CMakeFiles/silver_cpu.dir/Sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/silver_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/silver_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/silver_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/silver_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/silver_support.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/silver_asm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
