file(REMOVE_RECURSE
  "CMakeFiles/silver_cpu.dir/Check.cpp.o"
  "CMakeFiles/silver_cpu.dir/Check.cpp.o.d"
  "CMakeFiles/silver_cpu.dir/Core.cpp.o"
  "CMakeFiles/silver_cpu.dir/Core.cpp.o.d"
  "CMakeFiles/silver_cpu.dir/LabEnv.cpp.o"
  "CMakeFiles/silver_cpu.dir/LabEnv.cpp.o.d"
  "CMakeFiles/silver_cpu.dir/Sim.cpp.o"
  "CMakeFiles/silver_cpu.dir/Sim.cpp.o.d"
  "libsilver_cpu.a"
  "libsilver_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silver_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
