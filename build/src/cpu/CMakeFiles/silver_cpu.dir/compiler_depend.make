# Empty compiler generated dependencies file for silver_cpu.
# This may be replaced when dependencies are built.
