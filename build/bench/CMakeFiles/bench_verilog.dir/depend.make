# Empty dependencies file for bench_verilog.
# This may be replaced when dependencies are built.
