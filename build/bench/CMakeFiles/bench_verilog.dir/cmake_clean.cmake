file(REMOVE_RECURSE
  "CMakeFiles/bench_verilog.dir/bench_verilog.cpp.o"
  "CMakeFiles/bench_verilog.dir/bench_verilog.cpp.o.d"
  "bench_verilog"
  "bench_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
