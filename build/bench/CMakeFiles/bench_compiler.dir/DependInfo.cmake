
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_compiler.cpp" "bench/CMakeFiles/bench_compiler.dir/bench_compiler.cpp.o" "gcc" "bench/CMakeFiles/bench_compiler.dir/bench_compiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stack/CMakeFiles/silver_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/silver_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cml/CMakeFiles/silver_cml.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/silver_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/silver_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/silver_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/silver_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/ffi/CMakeFiles/silver_ffi.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/silver_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/silver_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/silver_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
