# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/ffi_test[1]_include.cmake")
include("/root/repo/build/tests/sys_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/cml_frontend_test[1]_include.cmake")
include("/root/repo/build/tests/cml_interp_test[1]_include.cmake")
include("/root/repo/build/tests/cml_middle_test[1]_include.cmake")
include("/root/repo/build/tests/cml_compiler_test[1]_include.cmake")
include("/root/repo/build/tests/cml_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/hdl_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/stack_test[1]_include.cmake")
