file(REMOVE_RECURSE
  "CMakeFiles/ffi_test.dir/ffi/BasisFfiTest.cpp.o"
  "CMakeFiles/ffi_test.dir/ffi/BasisFfiTest.cpp.o.d"
  "ffi_test"
  "ffi_test.pdb"
  "ffi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
