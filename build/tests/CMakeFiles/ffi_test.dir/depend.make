# Empty dependencies file for ffi_test.
# This may be replaced when dependencies are built.
