# Empty compiler generated dependencies file for ffi_test.
# This may be replaced when dependencies are built.
