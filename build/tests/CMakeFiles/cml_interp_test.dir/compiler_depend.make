# Empty compiler generated dependencies file for cml_interp_test.
# This may be replaced when dependencies are built.
