file(REMOVE_RECURSE
  "CMakeFiles/cml_interp_test.dir/cml/InterpTest.cpp.o"
  "CMakeFiles/cml_interp_test.dir/cml/InterpTest.cpp.o.d"
  "cml_interp_test"
  "cml_interp_test.pdb"
  "cml_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cml_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
