# Empty dependencies file for cml_middle_test.
# This may be replaced when dependencies are built.
