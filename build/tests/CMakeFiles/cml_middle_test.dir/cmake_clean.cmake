file(REMOVE_RECURSE
  "CMakeFiles/cml_middle_test.dir/cml/MiddleEndTest.cpp.o"
  "CMakeFiles/cml_middle_test.dir/cml/MiddleEndTest.cpp.o.d"
  "cml_middle_test"
  "cml_middle_test.pdb"
  "cml_middle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cml_middle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
