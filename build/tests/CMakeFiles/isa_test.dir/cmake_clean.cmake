file(REMOVE_RECURSE
  "CMakeFiles/isa_test.dir/isa/EncodingTest.cpp.o"
  "CMakeFiles/isa_test.dir/isa/EncodingTest.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/InterpTest.cpp.o"
  "CMakeFiles/isa_test.dir/isa/InterpTest.cpp.o.d"
  "isa_test"
  "isa_test.pdb"
  "isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
