file(REMOVE_RECURSE
  "CMakeFiles/cml_fuzz_test.dir/cml/FuzzDifferentialTest.cpp.o"
  "CMakeFiles/cml_fuzz_test.dir/cml/FuzzDifferentialTest.cpp.o.d"
  "cml_fuzz_test"
  "cml_fuzz_test.pdb"
  "cml_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cml_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
