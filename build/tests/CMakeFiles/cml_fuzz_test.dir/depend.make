# Empty dependencies file for cml_fuzz_test.
# This may be replaced when dependencies are built.
