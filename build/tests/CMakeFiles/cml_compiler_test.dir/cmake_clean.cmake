file(REMOVE_RECURSE
  "CMakeFiles/cml_compiler_test.dir/cml/CompilerTest.cpp.o"
  "CMakeFiles/cml_compiler_test.dir/cml/CompilerTest.cpp.o.d"
  "cml_compiler_test"
  "cml_compiler_test.pdb"
  "cml_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cml_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
