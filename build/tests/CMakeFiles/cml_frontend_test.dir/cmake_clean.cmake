file(REMOVE_RECURSE
  "CMakeFiles/cml_frontend_test.dir/cml/FrontendTest.cpp.o"
  "CMakeFiles/cml_frontend_test.dir/cml/FrontendTest.cpp.o.d"
  "cml_frontend_test"
  "cml_frontend_test.pdb"
  "cml_frontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cml_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
