# Empty dependencies file for cml_frontend_test.
# This may be replaced when dependencies are built.
