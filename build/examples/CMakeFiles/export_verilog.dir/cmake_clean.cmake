file(REMOVE_RECURSE
  "CMakeFiles/export_verilog.dir/export_verilog.cpp.o"
  "CMakeFiles/export_verilog.dir/export_verilog.cpp.o.d"
  "export_verilog"
  "export_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
