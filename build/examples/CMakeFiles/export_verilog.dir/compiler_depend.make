# Empty compiler generated dependencies file for export_verilog.
# This may be replaced when dependencies are built.
