# Empty compiler generated dependencies file for proof_checker.
# This may be replaced when dependencies are built.
