file(REMOVE_RECURSE
  "CMakeFiles/proof_checker.dir/proof_checker.cpp.o"
  "CMakeFiles/proof_checker.dir/proof_checker.cpp.o.d"
  "proof_checker"
  "proof_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
