# Empty compiler generated dependencies file for bootstrap.
# This may be replaced when dependencies are built.
