# Empty dependencies file for bootstrap.
# This may be replaced when dependencies are built.
