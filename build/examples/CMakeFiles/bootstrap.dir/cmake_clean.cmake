file(REMOVE_RECURSE
  "CMakeFiles/bootstrap.dir/bootstrap.cpp.o"
  "CMakeFiles/bootstrap.dir/bootstrap.cpp.o.d"
  "bootstrap"
  "bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
