file(REMOVE_RECURSE
  "CMakeFiles/wc.dir/wc.cpp.o"
  "CMakeFiles/wc.dir/wc.cpp.o.d"
  "wc"
  "wc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
