# Empty compiler generated dependencies file for wc.
# This may be replaced when dependencies are built.
