file(REMOVE_RECURSE
  "CMakeFiles/silverc.dir/silverc.cpp.o"
  "CMakeFiles/silverc.dir/silverc.cpp.o.d"
  "silverc"
  "silverc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silverc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
