# Empty compiler generated dependencies file for silverc.
# This may be replaced when dependencies are built.
