# Empty dependencies file for sort_demo.
# This may be replaced when dependencies are built.
