file(REMOVE_RECURSE
  "CMakeFiles/sort_demo.dir/sort_demo.cpp.o"
  "CMakeFiles/sort_demo.dir/sort_demo.cpp.o.d"
  "sort_demo"
  "sort_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
